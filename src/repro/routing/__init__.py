"""Pluggable request routing: load-balancing policies as a first-class layer.

Where requests land shapes SLO violations as much as how replicas are
sized (cf. the Distributed Join-the-Idle-Queue results in PAPERS.md:
routing policy alone moves tail latency by integer factors at high load).
This package turns the cluster's formerly hardwired ``min(in_flight)``
balancer into a subsystem mirroring the controller registry:

* :mod:`repro.routing.base` — the :class:`RoutingPolicy` ABC, the
  ``@register_policy`` registry, and the determinism contract (sim RNG
  substreams only; live replica sets only);
* :mod:`repro.routing.policies` — the built-in policies:
  ``least_in_flight`` (the default, bit-identical to the pre-subsystem
  behaviour), ``round_robin``, ``random``, ``power_of_two_choices``,
  ``ewma_latency``, and ``join_the_idle_queue``;
* :mod:`repro.routing.dispatchers` — :class:`DispatcherSet`: N
  dispatchers with bounded-staleness partial views behind one policy
  (``stale_jiq`` private I-queues, ``stale_ewma``, ``stale_p2c``), the
  distributed-dispatch regime where JIQ differentiates from P2C/EWMA;
* :mod:`repro.routing.router` — the per-cluster :class:`RequestRouter`
  resolving service → policy (per-service override, then tenant default,
  then cluster default) and stamping each decision into span tags.

Selecting a policy is declarative: set ``routing="p2c"`` on a
:class:`~repro.experiments.scenario.ScenarioSpec` (cluster-wide) or a
:class:`~repro.experiments.scenario.TenantSpec` (that tenant only), or
imperatively via ``cluster.set_routing_policy(...)``.  Adding a policy is
one class::

    from repro.routing import RoutingPolicy, register_policy

    @register_policy("shortest_queue")
    class ShortestQueuePolicy(RoutingPolicy):
        def select(self, replicas):
            return min(replicas, key=lambda i: (i.queue_length, i.replica_index))
"""

from repro.routing.base import (
    DEFAULT_POLICY,
    RoutingPolicy,
    available_policies,
    create_policy,
    register_policy,
    resolve_policy_name,
)
from repro.routing.dispatchers import DISPATCH_VARIANTS, DispatcherSet
from repro.routing.router import RequestRouter, RoutingDecision

__all__ = [
    "DEFAULT_POLICY",
    "DISPATCH_VARIANTS",
    "DispatcherSet",
    "RoutingPolicy",
    "RequestRouter",
    "RoutingDecision",
    "available_policies",
    "create_policy",
    "register_policy",
    "resolve_policy_name",
]
