"""Routing-policy scaffolding: the ABC and the policy registry.

Every load-balancing policy in the reproduction — the default
least-in-flight balancer, classic stateless policies (round-robin,
random), and the load-aware family (power-of-two-choices, latency-EWMA,
join-the-idle-queue) — is a :class:`RoutingPolicy`: a per-service object
that picks which replica serves the next span.  Policies self-register
under a name with :func:`register_policy`, and the
:class:`~repro.routing.router.RequestRouter` instantiates them by name
through :func:`create_policy`, so new policies plug into the cluster, the
harness, and the sweep runner without touching any of them.

Determinism contract
--------------------
A policy may hold whatever per-service state it likes (counters, EWMA
tables, idle queues), but all randomness **must** come from the
:class:`~repro.sim.rng.SeededRNG` family it is constructed with — never
from :mod:`random`, :func:`numpy.random.default_rng`, or wall-clock time.
Streams are namespaced ``routing:<policy>:<service>`` so adding a policy
draw never perturbs arrivals, service times, or anomaly schedules, and
serial sweeps stay bit-identical to parallel ones.

Policies also must not cache the replica set: :meth:`RoutingPolicy.select`
receives the *live* replica list on every call (the router re-reads it
from the cluster), so scale-outs become routable and scaled-in replicas
stop receiving traffic immediately.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, List, Sequence

from repro.sim.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.instance import MicroserviceInstance

#: Registry name of the policy preserving the pre-subsystem behaviour.
DEFAULT_POLICY = "least_in_flight"


class RoutingPolicy(abc.ABC):
    """Base class: one load-balancing policy scoped to one service.

    Parameters
    ----------
    service_name:
        The (possibly tenant-namespaced) service whose replicas this
        policy balances over.  One policy instance never routes for more
        than one service, so per-service state (round-robin cursors, EWMA
        tables, idle queues) needs no keying.
    rng:
        Seeded RNG family; randomized policies draw exclusively from the
        substream named by :meth:`stream_name`.
    """

    #: Canonical registry name; set by :func:`register_policy`.
    name: str = "?"

    def __init__(self, service_name: str, rng: SeededRNG) -> None:
        self.service_name = service_name
        self.rng = rng

    def stream_name(self) -> str:
        """The RNG substream this policy's draws come from."""
        return f"routing:{self.name}:{self.service_name}"

    @abc.abstractmethod
    def select(
        self, replicas: Sequence["MicroserviceInstance"]
    ) -> "MicroserviceInstance":
        """Pick the replica that serves the next span.

        ``replicas`` is the live, non-empty replica list in deployment
        order (``replica_index`` ascending for orchestrator-managed
        services); implementations must not retain it across calls.
        """

    def observe_completion(
        self, instance: "MicroserviceInstance", latency_ms: float
    ) -> None:
        """Feedback hook: one span finished at ``instance``.

        Invoked through the instance's completion listeners after the
        instance's own state is updated, so ``instance.in_flight`` is the
        post-completion load.  Stateless policies ignore it; JIQ maintains
        its idle queue here and EWMA updates its latency table.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(service={self.service_name!r})"


# ---------------------------------------------------------------------------
# Policy registry
# ---------------------------------------------------------------------------

#: A factory takes ``(service_name, rng, **kwargs)`` and returns the policy.
PolicyFactory = Callable[..., RoutingPolicy]

_FACTORIES: Dict[str, PolicyFactory] = {}
_ALIASES: Dict[str, str] = {}


def register_policy(name: str, *, aliases: Sequence[str] = ()) -> Callable:
    """Class/function decorator registering a routing policy by name.

    The decorated callable must accept ``(service_name, rng, **kwargs)``
    and return a :class:`RoutingPolicy`.  When decorating a class, its
    ``name`` attribute is set to the canonical registry name.
    """

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        # Validate everything before touching the registry so a conflict
        # cannot leave a partial registration behind.
        if name in _FACTORIES or name in _ALIASES:
            raise ValueError(f"routing policy {name!r} is already registered")
        for alias in aliases:
            if alias == name or alias in _FACTORIES or alias in _ALIASES:
                raise ValueError(f"routing alias {alias!r} is already registered")
        _FACTORIES[name] = factory
        for alias in aliases:
            _ALIASES[alias] = name
        if isinstance(factory, type) and issubclass(factory, RoutingPolicy):
            factory.name = name
        return factory

    return decorator


def _ensure_builtin_policies() -> None:
    """Import the modules whose imports register the built-in policies."""
    import repro.routing.dispatchers  # noqa: F401
    import repro.routing.policies  # noqa: F401


def available_policies() -> List[str]:
    """Registered policy names (aliases excluded), sorted."""
    _ensure_builtin_policies()
    return sorted(_FACTORIES)


def resolve_policy_name(name: str) -> str:
    """Resolve ``name`` (possibly an alias) to its canonical registry name."""
    _ensure_builtin_policies()
    canonical = _ALIASES.get(name, name)
    if canonical not in _FACTORIES:
        known = ", ".join(sorted(set(_FACTORIES) | set(_ALIASES)))
        raise ValueError(f"unknown routing policy {name!r}; registered: {known}")
    return canonical


def create_policy(
    name: str, service_name: str, rng: SeededRNG, **kwargs
) -> RoutingPolicy:
    """Instantiate the policy registered under ``name`` (or an alias)."""
    factory = _FACTORIES[resolve_policy_name(name)]
    return factory(service_name, rng, **kwargs)
