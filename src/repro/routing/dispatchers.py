"""Distributed dispatchers with stale partial views (:class:`DispatcherSet`).

The classic :class:`~repro.routing.router.RequestRouter` is *omniscient*:
every decision reads the live replica set, so ``least_in_flight`` always
sees the true queue depths.  Real front-end fleets are not like that — a
service is fronted by N dispatchers, each holding a *partial, stale* view
of the replica pool, refreshed on a bounded-staleness schedule.  The JIQ
line of work in PAPERS.md (Wang, Feng & Cheng, "Distributed
Join-the-Idle-Queue for Low Latency Cloud Services") only differentiates
from P2C/EWMA in exactly this regime, which is why this module exists.

:class:`DispatcherSet` is one :class:`~repro.routing.base.RoutingPolicy`
that internally models N dispatchers:

* arrivals are assigned to dispatchers by deterministic rotation (real
  deployments hash or DNS-round-robin clients over dispatchers; rotation
  is the seed-stable equivalent);
* each dispatcher owns a :class:`DispatcherView` — a snapshot of
  per-replica in-flight counts (and, per variant, an EWMA table copy or a
  private JIQ I-queue) refreshed only when older than ``staleness_s``
  simulated seconds, plus *optimistic local increments* for the spans it
  dispatched since the last refresh (a dispatcher knows what it sent,
  even if it cannot see what the others sent);
* three selection variants share the machinery: ``stale_jiq`` (private
  FIFO I-queues; idle replicas enroll with exactly one dispatcher by
  rotation; uniform-random fallback under saturation), ``stale_ewma``
  (peak-EWMA scoring over the stale snapshot), and ``stale_p2c`` (two
  random probes compared on stale in-flight counts).

Because a ``DispatcherSet`` *is* a routing policy, it resolves through the
existing per-service → tenant → cluster policy chain untouched, and the
determinism contract holds: all randomness comes from the policy's
``routing:<name>:<service>`` substream, and virtual time is read from the
live replicas' shared engine (never wall clock).  ``dispatchers=1`` on a
:class:`~repro.experiments.scenario.ScenarioSpec` never instantiates this
class at all — the classic omniscient router runs byte-identically.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.routing.base import RoutingPolicy, register_policy
from repro.routing.policies import EWMALatencyPolicy
from repro.sim.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.instance import MicroserviceInstance

__all__ = [
    "DISPATCH_VARIANTS",
    "DispatcherSet",
    "DispatcherView",
    "StaleEWMAPolicy",
    "StaleJIQPolicy",
    "StaleP2CPolicy",
]

#: The selection variants a :class:`DispatcherSet` can run.
DISPATCH_VARIANTS = ("jiq", "ewma", "p2c")


class DispatcherView:
    """One dispatcher's stale partial view of a service's replica pool.

    ``in_flight`` is the per-replica load *as of the last refresh* plus
    the optimistic increments for spans this dispatcher routed since;
    ``ewma_ms`` is a point-in-time copy of the shared latency table; and
    ``idle`` is this dispatcher's private JIQ I-queue (replicas that
    reported idle to *this* dispatcher, FIFO by enrollment).  Keys are
    instance identities, never names: ``service#index`` names are reused
    across scale-in/scale-out, and a fresh replica is a different server.
    """

    __slots__ = ("index", "last_refresh_s", "in_flight", "ewma_ms", "idle")

    def __init__(self, index: int) -> None:
        self.index = index
        #: Virtual time of the last refresh (None = never refreshed).
        self.last_refresh_s: Optional[float] = None
        self.in_flight: Dict["MicroserviceInstance", int] = {}
        self.ewma_ms: Dict["MicroserviceInstance", float] = {}
        self.idle: "OrderedDict[MicroserviceInstance, None]" = OrderedDict()

    def stale_load(self, instance: "MicroserviceInstance") -> int:
        """The load this dispatcher believes ``instance`` carries."""
        return self.in_flight.get(instance, 0)

    def refresh(
        self,
        now: float,
        replicas: Sequence["MicroserviceInstance"],
        ewma_source: Dict["MicroserviceInstance", float],
    ) -> None:
        """Re-snapshot the live pool state (the bounded-staleness poll)."""
        self.last_refresh_s = now
        self.in_flight = {instance: instance.in_flight for instance in replicas}
        self.ewma_ms = dict(ewma_source)
        # The I-queue is push-maintained (idle replicas enroll as they
        # idle); a refresh only evicts entries the poll proves busy, so a
        # stale-but-now-busy replica cannot linger a full staleness
        # window beyond the next refresh.
        for instance in [i for i in self.idle if self.in_flight.get(i, 0) > 0]:
            del self.idle[instance]


class DispatcherSet(RoutingPolicy):
    """N dispatchers with bounded-staleness views behind one policy.

    Parameters
    ----------
    service_name / rng:
        Standard :class:`~repro.routing.base.RoutingPolicy` wiring.
    dispatchers:
        Dispatcher count N (>= 1).  Arrivals rotate over dispatchers
        deterministically.
    staleness_s:
        Maximum view age in simulated seconds.  ``0`` refreshes on every
        arrival (an omniscient dispatcher set — useful as the staleness
        grid's control point).
    variant:
        Selection rule: ``"jiq"``, ``"ewma"``, or ``"p2c"`` (subclasses
        pin it; see :data:`DISPATCH_VARIANTS`).
    alpha:
        EWMA smoothing factor for the shared latency table (``ewma``
        variant).
    """

    variant = "jiq"

    def __init__(
        self,
        service_name: str,
        rng: SeededRNG,
        dispatchers: int = 2,
        staleness_s: float = 0.25,
        alpha: float = 0.3,
    ) -> None:
        super().__init__(service_name, rng)
        if int(dispatchers) < 1:
            raise ValueError(f"dispatchers must be >= 1, got {dispatchers}")
        if float(staleness_s) < 0.0:
            raise ValueError(f"staleness_s must be >= 0, got {staleness_s}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.dispatchers = int(dispatchers)
        self.staleness_s = float(staleness_s)
        self.alpha = float(alpha)
        self._views: List[DispatcherView] = [
            DispatcherView(i) for i in range(self.dispatchers)
        ]
        #: Arrival counter; ``arrivals % N`` is the serving dispatcher.
        self._arrivals = 0
        #: Idle-enrollment counter; idling replicas join one I-queue each.
        self._enrollments = 0
        #: The shared (true) latency EWMA table, fed by completions.  The
        #: dispatchers only ever see their refresh-time *copies* of it.
        self._ewma_ms: "weakref.WeakKeyDictionary[MicroserviceInstance, float]" = (
            weakref.WeakKeyDictionary()
        )
        #: Replicas ever observed (first sight seeds the I-queues).
        self._known: "weakref.WeakSet[MicroserviceInstance]" = weakref.WeakSet()

    # ----------------------------------------------------------- feedback
    def observe_completion(
        self, instance: "MicroserviceInstance", latency_ms: float
    ) -> None:
        """Maintain the shared EWMA table and the JIQ idle enrollment.

        An idling replica announces itself to exactly *one* dispatcher
        (rotation), the defining partial-view property of distributed
        JIQ: the other N-1 dispatchers stay ignorant of the idle token
        until their own views refresh.
        """
        previous = self._ewma_ms.get(instance)
        if previous is None:
            self._ewma_ms[instance] = float(latency_ms)
        else:
            self._ewma_ms[instance] = (
                self.alpha * float(latency_ms) + (1.0 - self.alpha) * previous
            )
        self._known.add(instance)
        if instance.in_flight == 0:
            self._enroll_idle(instance)

    def _enroll_idle(self, instance: "MicroserviceInstance") -> None:
        """Move ``instance``'s idle token to the next dispatcher's I-queue."""
        for view in self._views:
            view.idle.pop(instance, None)
        view = self._views[self._enrollments % self.dispatchers]
        self._enrollments += 1
        view.idle[instance] = None

    # ---------------------------------------------------------- selection
    def select(
        self, replicas: Sequence["MicroserviceInstance"]
    ) -> "MicroserviceInstance":
        now = replicas[0].engine.now
        for instance in replicas:
            if instance not in self._known:
                self._known.add(instance)
                if instance.in_flight == 0:
                    self._enroll_idle(instance)
        view = self._views[self._arrivals % self.dispatchers]
        self._arrivals += 1
        if (
            view.last_refresh_s is None
            or now - view.last_refresh_s >= self.staleness_s
        ):
            view.refresh(now, replicas, self._ewma_ms)
        choice = self._select_from_view(view, replicas)
        # Optimistic local increment: the dispatcher knows what *it* just
        # sent, even though the other dispatchers' spans stay invisible
        # until the next refresh.
        view.in_flight[choice] = view.stale_load(choice) + 1
        return choice

    def _select_from_view(
        self, view: DispatcherView, replicas: Sequence["MicroserviceInstance"]
    ) -> "MicroserviceInstance":
        if self.variant == "jiq":
            return self._select_jiq(view, replicas)
        if self.variant == "ewma":
            return self._select_ewma(view, replicas)
        return self._select_p2c(view, replicas)

    def _select_jiq(
        self, view: DispatcherView, replicas: Sequence["MicroserviceInstance"]
    ) -> "MicroserviceInstance":
        live = set(replicas)
        while view.idle:
            candidate, _ = view.idle.popitem(last=False)
            # Liveness is the only fresh fact consulted: a scaled-in
            # replica is unroutable, but a replica that merely got busy
            # since enrolling is still dispatched to — the JIQ staleness
            # artifact this policy exists to model.
            if candidate in live:
                return candidate
        stream = self.rng.stream(self.stream_name())
        return replicas[int(stream.integers(0, len(replicas)))]

    def _select_ewma(
        self, view: DispatcherView, replicas: Sequence["MicroserviceInstance"]
    ) -> "MicroserviceInstance":
        cold = EWMALatencyPolicy.COLD_EWMA_MS
        return min(
            replicas,
            key=lambda instance: (
                view.ewma_ms.get(instance, cold) * (view.stale_load(instance) + 1),
                instance.replica_index,
            ),
        )

    def _select_p2c(
        self, view: DispatcherView, replicas: Sequence["MicroserviceInstance"]
    ) -> "MicroserviceInstance":
        count = len(replicas)
        if count == 1:
            return replicas[0]
        stream = self.rng.stream(self.stream_name())
        first = int(stream.integers(0, count))
        second = int(stream.integers(0, count - 1))
        if second >= first:
            second += 1
        pair = (replicas[first], replicas[second])
        return min(
            pair,
            key=lambda instance: (view.stale_load(instance), instance.replica_index),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(service={self.service_name!r}, "
            f"dispatchers={self.dispatchers}, staleness_s={self.staleness_s})"
        )


@register_policy("stale_jiq", aliases=("dispatchers",))
class StaleJIQPolicy(DispatcherSet):
    """N JIQ dispatchers with private I-queues and stale fallback views."""

    variant = "jiq"


@register_policy("stale_ewma")
class StaleEWMAPolicy(DispatcherSet):
    """N peak-EWMA dispatchers scoring over bounded-staleness snapshots."""

    variant = "ewma"


@register_policy("stale_p2c")
class StaleP2CPolicy(DispatcherSet):
    """N power-of-two-choices dispatchers probing stale in-flight counts."""

    variant = "p2c"
