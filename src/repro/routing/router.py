"""The request router: per-service policy instances over one cluster.

The :class:`RequestRouter` is the cluster-side half of the routing
subsystem: it owns one lazily created :class:`~repro.routing.base.RoutingPolicy`
instance per deployed service and answers every "which replica serves
this span?" query with a :class:`RoutingDecision`.

Policy resolution is scoped, most specific first:

1. an explicit **per-service** policy (:meth:`RequestRouter.set_service_policy`),
2. the **tenant default** of the tenant owning the service
   (:meth:`RequestRouter.set_tenant_policy` — how two tenants sharing one
   cluster run different balancers),
3. the **cluster default** (:meth:`RequestRouter.set_default_policy`,
   ``least_in_flight`` unless configured otherwise).

The router re-reads the live replica set from the cluster on every
decision, so orchestrator actions are reflected immediately: a scaled-in
replica can never be selected again and a fresh scale-out is routable as
soon as its container is placed.  It also installs the instance
completion listeners that feed stateful policies (JIQ idle queues, EWMA
latency tables) and keeps per-replica decision counts for telemetry and
experiments.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from repro.routing.base import (
    DEFAULT_POLICY,
    RoutingPolicy,
    create_policy,
    resolve_policy_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.instance import MicroserviceInstance


#: Shared cache of small-integer strings for span tags.  Queue depths and
#: in-flight counts repeat constantly across spans; reusing one interned
#: string per value keeps every span's tag dict pointing at shared objects
#: instead of allocating fresh ``str(int)`` results per decision.
_INT_STR_CACHE: Dict[int, str] = {}


def _int_str(value: int) -> str:
    cached = _INT_STR_CACHE.get(value)
    if cached is None:
        cached = sys.intern(str(value))
        _INT_STR_CACHE[value] = cached
    return cached


@dataclass(slots=True)
class RoutingDecision:
    """One routing decision: where a span was sent and why.

    ``queue_depth`` and ``in_flight`` are the selected replica's load *at
    decision time* (before the routed span is enqueued), so spans tagged
    with a decision record the congestion the balancer actually saw.

    One decision is allocated per routed span, so the dataclass is slotted
    and the tag values are interned.
    """

    service: str
    instance: "MicroserviceInstance"
    policy: str
    queue_depth: int
    in_flight: int

    def span_tags(self) -> Dict[str, str]:
        """The tags stamped onto the span this decision routed."""
        return {
            "routing.policy": self.policy,
            "routing.queue_depth": _int_str(self.queue_depth),
            "routing.in_flight": _int_str(self.in_flight),
        }


class RequestRouter:
    """Routes spans to replicas through per-service policy instances.

    Parameters
    ----------
    cluster:
        The cluster whose replica sets are routed over (always the shared
        cluster — tenant scoping happens in
        :class:`~repro.cluster.cluster.TenantClusterView`, which validates
        ownership before delegating here).
    default_policy:
        Cluster-wide default policy name (default: ``least_in_flight``,
        the pre-subsystem behaviour).
    """

    def __init__(self, cluster: "Cluster", default_policy: str = DEFAULT_POLICY) -> None:
        self.cluster = cluster
        self._default = resolve_policy_name(default_policy)
        self._default_kwargs: Dict = {}
        #: Explicit per-service policy names (+ factory kwargs).
        self._service_policies: Dict[str, Tuple[str, Dict]] = {}
        #: Per-tenant default policy names (+ factory kwargs).
        self._tenant_policies: Dict[str, Tuple[str, Dict]] = {}
        #: Instantiated policies: service -> (resolved name, policy).
        self._policies: Dict[str, Tuple[str, RoutingPolicy]] = {}
        #: Decisions per service per replica name (for tests/experiments).
        self.decision_counts: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        #: Observability (enabled by the harness; None keeps the hot path
        #: untouched).
        self._obs = None
        self._obs_engine = None
        self._obs_sample_every = 1
        #: (service, policy) -> cached registry counter, so the hot path
        #: never re-resolves the interned series.
        self._obs_counters: Dict[Tuple[str, str], object] = {}
        self._obs_picks = 0

    def enable_observability(self, obs, engine, sample_every: int = 128) -> None:
        """Record routing picks into ``obs`` (counters + sampled journal).

        Every pick increments a ``routing_picks_total{service,policy}``
        counter; one pick in ``sample_every`` is also journalled as a
        ``routing_pick`` record.  Sampling keeps the journal ring from
        being flooded by the one per-span event kind (which would evict
        the rare records — anomaly injections, scale decisions — the
        inspector needs most).
        """
        self._obs = obs
        self._obs_engine = engine
        self._obs_sample_every = max(1, int(sample_every))

    # -------------------------------------------------------- configuration
    @property
    def default_policy(self) -> str:
        """The cluster-wide default policy name."""
        return self._default

    def set_default_policy(self, name: str, **kwargs) -> None:
        """Set the cluster-wide default policy.

        Only services actually resolving to the default are re-created;
        services pinned explicitly or covered by a tenant default keep
        their policy instances (and their learned state: EWMA tables,
        idle queues, cursors)."""
        self._default = resolve_policy_name(name)
        self._default_kwargs = dict(kwargs)
        self._invalidate(
            lambda service: service not in self._service_policies
            and self.cluster.tenant_of(service) not in self._tenant_policies
        )

    def set_tenant_policy(self, tenant: str, name: str, **kwargs) -> None:
        """Set the default policy for every service owned by ``tenant``.

        Other tenants' (and explicitly pinned services') policy instances
        are untouched, so reconfiguring one tenant mid-run never wipes a
        neighbour's learned routing state."""
        self._tenant_policies[tenant] = (resolve_policy_name(name), dict(kwargs))
        self._invalidate(
            lambda service: service not in self._service_policies
            and self.cluster.tenant_of(service) == tenant
        )

    def set_service_policy(self, service_name: str, name: str, **kwargs) -> None:
        """Pin one service to a policy (overrides tenant/cluster defaults)."""
        self._service_policies[service_name] = (resolve_policy_name(name), dict(kwargs))
        self._policies.pop(service_name, None)

    def _invalidate(self, affected) -> None:
        """Drop cached policy instances for services matching ``affected``."""
        for service in [s for s in self._policies if affected(s)]:
            del self._policies[service]

    def policy_name_for(self, service_name: str) -> str:
        """The canonical policy name ``service_name`` resolves to."""
        return self._configured(service_name)[0]

    def policy_for(self, service_name: str) -> RoutingPolicy:
        """The (lazily created) policy instance routing ``service_name``."""
        return self._entry(service_name)[1]

    def _configured(self, service_name: str) -> Tuple[str, Dict]:
        explicit = self._service_policies.get(service_name)
        if explicit is not None:
            return explicit
        tenant = self.cluster.tenant_of(service_name)
        if tenant is not None and tenant in self._tenant_policies:
            return self._tenant_policies[tenant]
        return self._default, self._default_kwargs

    def _entry(self, service_name: str) -> Tuple[str, RoutingPolicy]:
        name, kwargs = self._configured(service_name)
        cached = self._policies.get(service_name)
        if cached is None or cached[0] != name:
            cached = (
                name,
                create_policy(name, service_name, self.cluster.rng, **kwargs),
            )
            self._policies[service_name] = cached
        return cached

    # --------------------------------------------------------------- routing
    def route(self, service_name: str) -> RoutingDecision:
        """Pick the replica serving the next span of ``service_name``.

        Reads the live replica set from the cluster (so scale events take
        effect immediately), ensures completion feedback is wired, and
        records the decision.
        """
        # The live replica list, not the defensive copy `replicas_of`
        # returns: routing runs once per span and policies only read the
        # sequence (see RoutingPolicy.select's contract), so the copy
        # would be pure allocation churn.
        replicas = self.cluster.live_replicas(service_name)
        if not replicas:
            raise KeyError(f"service {service_name!r} is not deployed")
        name, policy = self._entry(service_name)
        instance = policy.select(replicas)
        self.decision_counts[service_name][instance.name] += 1
        if self._obs is not None:
            counter = self._obs_counters.get((service_name, name))
            if counter is None:
                counter = self._obs.registry.counter(
                    "routing_picks_total", service=service_name, policy=name
                )
                self._obs_counters[(service_name, name)] = counter
            counter.inc()
            self._obs_picks += 1
            if (self._obs_picks - 1) % self._obs_sample_every == 0:
                self._obs.journal.record(
                    self._obs_engine.now,
                    "routing_pick",
                    service_name,
                    policy=name,
                    instance=instance.name,
                )
        return RoutingDecision(
            service=service_name,
            instance=instance,
            policy=name,
            queue_depth=instance.queue_length,
            in_flight=instance.in_flight,
        )

    def instrument(self, instance: "MicroserviceInstance") -> None:
        """Install the completion-feedback listener on one replica.

        Called by the cluster as each replica is deployed (initial deploys
        and scale-outs alike), so stateful policies receive feedback from
        every span — including spans completed before the first routing
        decision — without the routing hot path re-checking listeners."""
        if self._dispatch_completion not in instance.completion_listeners:
            instance.completion_listeners.append(self._dispatch_completion)

    def _dispatch_completion(
        self, instance: "MicroserviceInstance", latency_ms: float
    ) -> None:
        """Feed one span completion to the owning service's policy."""
        cached = self._policies.get(instance.profile.name)
        if cached is not None:
            cached[1].observe_completion(instance, latency_ms)

    # --------------------------------------------------------------- queries
    def decisions_for(self, service_name: str) -> Dict[str, int]:
        """Decision counts per replica name for one service."""
        return dict(self.decision_counts.get(service_name, {}))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        overrides = {s: n for s, (n, _) in self._service_policies.items()}
        return (
            f"RequestRouter(default={self._default!r}, "
            f"tenants={ {t: n for t, (n, _) in self._tenant_policies.items()} }, "
            f"services={overrides})"
        )
