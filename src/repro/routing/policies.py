"""The built-in load-balancing policies.

Six policies spanning the classic design space (cf. the Distributed
Join-the-Idle-Queue line of work in PAPERS.md):

* :class:`LeastInFlightPolicy` — the pre-subsystem default: route to the
  replica with the fewest in-flight spans, ties broken by lowest replica
  index (deterministic, no randomness);
* :class:`RoundRobinPolicy` — cycle through replicas in index order;
* :class:`RandomPolicy` — uniform random replica, drawn from the sim RNG;
* :class:`PowerOfTwoChoicesPolicy` — sample two distinct replicas, route
  to the less loaded one (the "power of d choices" result: most of the
  benefit of global knowledge at two probes' cost);
* :class:`EWMALatencyPolicy` — per-replica latency EWMA fed from span
  completions, scored ``ewma * (in_flight + 1)`` (peak-EWMA style, so a
  slow *or* busy replica is avoided);
* :class:`JoinTheIdleQueuePolicy` — a FIFO idle queue maintained through
  instance completion hooks; idle replicas are preferred in the order
  they became idle, with a uniform-random fallback under saturation
  (classic JIQ dispatch).

All randomness is drawn from named :mod:`repro.sim.rng` substreams (see
the determinism contract in :mod:`repro.routing.base`); no policy touches
:mod:`random` or wall-clock time, so routing sweeps are bit-identical
between serial and parallel execution.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, Sequence

from repro.routing.base import RoutingPolicy, register_policy
from repro.sim.rng import SeededRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.instance import MicroserviceInstance


def _least_loaded(
    replicas: Sequence["MicroserviceInstance"],
) -> "MicroserviceInstance":
    """Fewest in-flight spans; equal loads resolve to the lowest index."""
    return min(replicas, key=lambda instance: (instance.in_flight, instance.replica_index))


@register_policy("least_in_flight", aliases=("least_loaded", "default"))
class LeastInFlightPolicy(RoutingPolicy):
    """Route to the replica with the fewest in-flight spans.

    This is the pre-subsystem hardwired behaviour and stays the default;
    ties are broken by lowest replica index so the decision never depends
    on the replica list's internal ordering.
    """

    def select(self, replicas: Sequence["MicroserviceInstance"]) -> "MicroserviceInstance":
        return _least_loaded(replicas)


@register_policy("round_robin", aliases=("rr",))
class RoundRobinPolicy(RoutingPolicy):
    """Cycle through the replicas in replica-index order.

    The cursor survives scale events: replicas are re-sorted by index on
    every call and the cursor is taken modulo the current set size, so a
    scale-in simply shortens the cycle.
    """

    def __init__(self, service_name: str, rng: SeededRNG) -> None:
        super().__init__(service_name, rng)
        self._cursor = 0

    def select(self, replicas: Sequence["MicroserviceInstance"]) -> "MicroserviceInstance":
        ordered = sorted(replicas, key=lambda instance: instance.replica_index)
        choice = ordered[self._cursor % len(ordered)]
        self._cursor += 1
        return choice


@register_policy("random", aliases=("uniform_random",))
class RandomPolicy(RoutingPolicy):
    """Uniform random replica, drawn from the seeded sim RNG."""

    def select(self, replicas: Sequence["MicroserviceInstance"]) -> "MicroserviceInstance":
        stream = self.rng.stream(self.stream_name())
        return replicas[int(stream.integers(0, len(replicas)))]


@register_policy("power_of_two_choices", aliases=("p2c", "power_of_two"))
class PowerOfTwoChoicesPolicy(RoutingPolicy):
    """Sample two distinct replicas, route to the less loaded one.

    Ties between the two probes resolve to the lower replica index, so
    the only randomness is the pair of probes themselves.
    """

    def select(self, replicas: Sequence["MicroserviceInstance"]) -> "MicroserviceInstance":
        count = len(replicas)
        if count == 1:
            return replicas[0]
        stream = self.rng.stream(self.stream_name())
        first = int(stream.integers(0, count))
        second = int(stream.integers(0, count - 1))
        if second >= first:
            second += 1
        return _least_loaded((replicas[first], replicas[second]))


@register_policy("ewma_latency", aliases=("ewma",))
class EWMALatencyPolicy(RoutingPolicy):
    """Route by per-replica latency EWMA weighted by outstanding load.

    Each replica's span latencies (fed through the instance completion
    hooks) update an exponentially weighted moving average; the routing
    score is ``ewma_ms * (in_flight + 1)`` — the peak-EWMA shape used by
    production balancers — so both a chronically slow replica and a
    momentarily swamped one are avoided.  Replicas with no observations
    yet score with a tiny optimistic prior instead of their (unknown)
    EWMA: cold replicas — fresh scale-outs included — are still explored
    ahead of observed ones, but remain ranked among themselves by
    outstanding load, so a burst of decisions cannot all pile onto one
    unproven replica before its first completion lands.
    """

    #: Optimistic EWMA (ms) assumed for replicas with no observations:
    #: small enough to lose to any real latency, non-zero so the
    #: ``in_flight`` factor still spreads load across cold replicas.
    COLD_EWMA_MS = 1e-3

    def __init__(self, service_name: str, rng: SeededRNG, alpha: float = 0.3) -> None:
        super().__init__(service_name, rng)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        #: Latency EWMA (ms) per replica, keyed by identity (not name:
        #: ``service#index`` names are reused after a scale-in followed by
        #: a scale-out, and a fresh replica must not inherit the dead
        #: replica's latency history).  Weak keys let scaled-in replicas'
        #: entries vanish with the instance.
        self._ewma_ms: "weakref.WeakKeyDictionary[MicroserviceInstance, float]" = (
            weakref.WeakKeyDictionary()
        )

    def observe_completion(
        self, instance: "MicroserviceInstance", latency_ms: float
    ) -> None:
        previous = self._ewma_ms.get(instance)
        if previous is None:
            self._ewma_ms[instance] = float(latency_ms)
        else:
            self._ewma_ms[instance] = (
                self.alpha * float(latency_ms) + (1.0 - self.alpha) * previous
            )

    def score(self, instance: "MicroserviceInstance") -> float:
        """The routing score (lower is better) of one replica."""
        return self._ewma_ms.get(instance, self.COLD_EWMA_MS) * (instance.in_flight + 1)

    def select(self, replicas: Sequence["MicroserviceInstance"]) -> "MicroserviceInstance":
        return min(
            replicas, key=lambda instance: (self.score(instance), instance.replica_index)
        )


@register_policy("join_the_idle_queue", aliases=("jiq",))
class JoinTheIdleQueuePolicy(RoutingPolicy):
    """Join-the-Idle-Queue: prefer replicas that reported themselves idle.

    Replicas enter a FIFO idle queue when a completion leaves them with
    zero in-flight spans (via the instance completion hooks); routing pops
    the head of the queue.  Replicas the policy has never seen (initial
    deployment, fresh scale-outs) are enqueued as idle on first sight.
    When no queued replica is actually idle any more, the policy falls
    back to a uniform-random replica from the sim RNG — the classic JIQ
    behaviour under saturation, which is exactly where its tail-latency
    behaviour diverges from least-loaded routing.
    """

    def __init__(self, service_name: str, rng: SeededRNG) -> None:
        super().__init__(service_name, rng)
        #: FIFO of replicas believed idle (ordered by when they idled).
        #: Keyed by identity, not name: replica names are reused across
        #: scale-in/scale-out, and a fresh replica is a different server.
        self._idle: "OrderedDict[MicroserviceInstance, None]" = OrderedDict()
        #: Replicas ever observed (so fresh replicas seed the queue).
        self._known: "weakref.WeakSet[MicroserviceInstance]" = weakref.WeakSet()

    def observe_completion(
        self, instance: "MicroserviceInstance", latency_ms: float
    ) -> None:
        self._known.add(instance)
        if instance.in_flight == 0:
            self._idle.pop(instance, None)
            self._idle[instance] = None

    def select(self, replicas: Sequence["MicroserviceInstance"]) -> "MicroserviceInstance":
        live = set(replicas)
        # First sight of a replica: treat it as idle (it has served nothing).
        for instance in replicas:
            if instance not in self._known:
                self._known.add(instance)
                if instance.in_flight == 0:
                    self._idle[instance] = None
        while self._idle:
            candidate, _ = self._idle.popitem(last=False)
            # Stale entries (scaled-in replicas, replicas that picked up
            # work since idling) are discarded, never routed to.
            if candidate in live and candidate.in_flight == 0:
                return candidate
        stream = self.rng.stream(self.stream_name())
        return replicas[int(stream.integers(0, len(replicas)))]
