"""Fig. 5 — scale-up vs scale-out trade-off across load and resource type.

Insight 3 of the paper: the better mitigation (scale up = more resources to
the existing container, vs scale out = another replica) depends jointly on
the offered load, the contended resource (CPU- vs memory-bound), and the
application.  At low load scale-up wins; at high load scale-out wins for
CPU-bound contention while scale-up keeps winning for memory-bound
contention, with application-dependent crossover points.

The experiment sweeps offered load for Social Network and Train-Ticket
under CPU-bound and memory-bound contention of a hot service, measuring the
median end-to-end latency after applying each mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.anomaly.anomalies import AnomalySpec, AnomalyType
from repro.anomaly.campaigns import AnomalyCampaign
from repro.cluster.resources import ResourceVector
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scenario import ScenarioSpec
from repro.metrics.latency import LatencyStats

#: Which service is stressed per application and bound type.
TARGETS: Dict[str, Dict[str, str]] = {
    "social_network": {"cpu": "composePost", "memory": "post-storage-memcached"},
    "train_ticket": {"cpu": "preserve", "memory": "order-store-memcached"},
}


@dataclass
class Fig5Point:
    """One (application, bound, load, mitigation) measurement."""

    application: str
    bound: str
    load_rps: float
    mitigation: str
    latency: LatencyStats


@dataclass
class Fig5Result:
    """All points of the Fig. 5 sweep."""

    points: List[Fig5Point] = field(default_factory=list)

    def series(self, application: str, bound: str, mitigation: str) -> List[Tuple[float, float]]:
        """(load, median latency) series for one curve of the figure."""
        selected = [
            (point.load_rps, point.latency.median)
            for point in self.points
            if point.application == application
            and point.bound == bound
            and point.mitigation == mitigation
        ]
        return sorted(selected)

    def winner(self, application: str, bound: str, load_rps: float) -> str:
        """Which mitigation gives the lower median latency at one load point."""
        candidates = {
            point.mitigation: point.latency.median
            for point in self.points
            if point.application == application
            and point.bound == bound
            and point.load_rps == load_rps
        }
        if not candidates:
            raise KeyError(f"no data for {application}/{bound}@{load_rps}")
        return min(candidates, key=lambda key: candidates[key])


def _run_point(
    application: str,
    bound: str,
    load_rps: float,
    mitigation: str,
    duration_s: float,
    intensity: float,
    seed: int,
) -> Fig5Point:
    """Run one configuration of the sweep."""
    target = TARGETS[application][bound]
    anomaly_type = (
        AnomalyType.CPU_UTILIZATION if bound == "cpu" else AnomalyType.MEMORY_BANDWIDTH
    )
    campaign = AnomalyCampaign(f"fig5:{application}:{bound}")
    campaign.add(
        AnomalySpec(
            anomaly_type=anomaly_type,
            target_service=target,
            start_s=5.0,
            duration_s=duration_s - 5.0,
            intensity=intensity,
        )
    )
    harness = ExperimentHarness.from_spec(
        ScenarioSpec(
            application=application,
            seed=seed,
            duration_s=duration_s,
            load_rps=load_rps,
            controller="none",
            campaign=campaign,
        )
    )

    # Apply the mitigation up front (the figure studies steady-state payoff).
    replicas = harness.cluster.replicas_of(target)
    if mitigation == "scale_up" and replicas:
        instance = replicas[0]
        boosted = instance.container.limits * 2.0
        harness.orchestrator.set_resource_limits(instance, ResourceVector(dict(boosted.values)))
    elif mitigation == "scale_out":
        harness.orchestrator.scale_out(target)

    harness.run(duration_s=duration_s, load_rps=load_rps)
    latencies = [
        trace.end_to_end_latency_ms
        for trace in harness.coordinator.store.completed_traces()
        if (trace.arrival_time or 0.0) >= 10.0
    ]
    return Fig5Point(
        application=application,
        bound=bound,
        load_rps=load_rps,
        mitigation=mitigation,
        latency=LatencyStats.from_samples(latencies),
    )


def run_fig5(
    applications: Tuple[str, ...] = ("social_network", "train_ticket"),
    loads_rps: Tuple[float, ...] = (50.0, 150.0, 300.0),
    bounds: Tuple[str, ...] = ("cpu", "memory"),
    duration_s: float = 45.0,
    intensity: float = 0.7,
    seed: int = 13,
) -> Fig5Result:
    """Reproduce the Fig. 5 sweep (scaled-down load axis for simulation)."""
    result = Fig5Result()
    for application in applications:
        for bound in bounds:
            for load in loads_rps:
                for mitigation in ("scale_up", "scale_out"):
                    result.points.append(
                        _run_point(
                            application, bound, load, mitigation,
                            duration_s=duration_s, intensity=intensity, seed=seed,
                        )
                    )
    return result
