"""Sharded scenario execution: one event shard per tenant subset.

The classic harness runs every tenant of a multi-tenant scenario on one
shared :class:`~repro.sim.engine.SimulationEngine`.  This module splits
the scenario into *shards* — disjoint tenant subsets, each with its own
engine, heap, RNG family, and cluster replica — and advances them under
the conservative time-window barrier of
:mod:`repro.sim.sync`.  Tenants never call each other's services, so the
only cross-shard coupling is node-level resource contention; at every
window barrier each shard publishes its per-node demand digest and
absorbs the other shards' summed demand as remote node pressure
(:meth:`repro.cluster.cluster.Cluster.apply_remote_pressure`).

Determinism contract (two tiers)
--------------------------------
* ``shards == 1`` **bypasses** this module entirely
  (:func:`run_sharded_scenario` calls
  :func:`~repro.experiments.scenario.run_scenario`), so the unsharded
  path stays byte-identical to the classic engine.
* ``shards >= 2`` pins its own contract: same seed + same shard count
  gives identical results, whether shards run serially in one process
  (``mode="inprocess"``) or across spawned worker processes
  (``mode="process"``).  Everything order-dependent is fixed: the
  round-robin tenant partition, the barrier schedule, the ascending
  shard-index digest merge, and per-shard request-id counters (so an
  in-process shard numbers requests exactly like a fresh process would).

Sharded results are *not* byte-identical to the unsharded run of the
same spec: remote demand is exchanged at window granularity instead of
instantaneously.  The window is sized by
:func:`~repro.sim.shard.conservative_window_s` so the approximation
stays within the fidelity the unsharded engine itself offers (contention
already feeds a slow queueing-delay term sampled at telemetry cadence).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.catalog import build_application
from repro.cluster.resources import Resource
from repro.experiments.harness import ExperimentResult, RunSession
from repro.experiments.scenario import ScenarioSpec, run_scenario
from repro.experiments.sweep import WorkerTeam
from repro.metrics.latency import LatencyStats
from repro.metrics.slo import MitigationTracker, merge_slo_trackers
from repro.obs.journal import EventJournal, merge_journal_records
from repro.obs.registry import merge_registries
from repro.sim.shard import (
    ShardDigest,
    conservative_window_s,
    merge_telemetry_digests,
    partition_round_robin,
)
from repro.sim.sync import ConservativeWindowSync, SyncStats


# --------------------------------------------------------------------- plan
@dataclass
class ShardPlan:
    """The deterministic decomposition of one scenario into shards.

    Attributes
    ----------
    spec:
        The full (multi-tenant) scenario.
    shards:
        Shard count (>= 2; ``shards == 1`` never builds a plan).
    window_s:
        Conservative barrier spacing shared by every shard.
    sub_specs:
        One :class:`ScenarioSpec` per shard: the full spec with
        ``tenants`` narrowed to that shard's round-robin subset.  Seed,
        duration, topology, and routing stay scenario-wide, so a tenant's
        RNG family (spawned as ``tenant:<name>`` from the master seed) is
        identical to its unsharded one.
    """

    spec: ScenarioSpec
    shards: int
    window_s: float
    sub_specs: List[ScenarioSpec] = field(default_factory=list)

    @property
    def tenant_names(self) -> List[str]:
        """Tenant names in global (spec) order — the merge order."""
        return [tenant.name for tenant in self.spec.tenants]


def _min_service_time_s(spec: ScenarioSpec) -> float:
    """Smallest base service time across every tenant's application."""
    minimum_ms: Optional[float] = None
    for tenant in spec.tenants:
        app = build_application(tenant.application)
        for node in app.services.values():
            base_ms = node.profile.base_service_time_ms
            if minimum_ms is None or base_ms < minimum_ms:
                minimum_ms = base_ms
    if minimum_ms is None or minimum_ms <= 0:
        return 0.001
    return minimum_ms / 1000.0


def plan_shards(spec: ScenarioSpec, shards: int) -> ShardPlan:
    """Partition ``spec`` into a :class:`ShardPlan` (requires tenants).

    Raises
    ------
    ValueError
        For non-multi-tenant specs (there is nothing to shard: the
        decomposition unit is the tenant), ``shards < 2``, or more shards
        than tenants.
    """
    if not spec.tenants:
        raise ValueError(
            "sharded execution requires a multi-tenant scenario "
            "(the shard unit is the tenant); run shards=1 instead"
        )
    if shards < 2:
        raise ValueError(f"plan_shards needs shards >= 2, got {shards}")
    partition = partition_round_robin(list(spec.tenants), shards)
    window_s = conservative_window_s(
        _min_service_time_s(spec), sample_period_s=spec.sample_period_s
    )
    sub_specs = [spec.with_overrides(tenants=subset) for subset in partition]
    return ShardPlan(spec=spec, shards=shards, window_s=window_s, sub_specs=sub_specs)


# ------------------------------------------------------------------- worker
@dataclass
class ShardOutcome:
    """Picklable result of one shard's finished run."""

    shard_index: int
    result: ExperimentResult
    violation_samples: List[Tuple[float, bool]]
    processed_events: int


class ShardWorker:
    """The actor driving one shard — in-process or inside a team member.

    Lifecycle: :meth:`prepare` (build harness, start the run session),
    then alternating :meth:`advance` / :meth:`apply_remote` under the
    window synchronizer, then :meth:`finish`.
    """

    def __init__(self, sub_spec: ScenarioSpec, shard_index: int) -> None:
        self.sub_spec = sub_spec
        self.shard_index = shard_index
        self._session: Optional[RunSession] = None
        self._harness = None

    def prepare(self) -> None:
        """Build the shard's harness and set its run session up."""
        from repro.experiments.harness import ExperimentHarness

        # A per-shard request-id counter: ids never influence results, but
        # this makes in-process shard sessions indistinguishable from
        # freshly spawned worker processes (whose module-global counter
        # starts at 1), keeping the two execution modes identical.
        self._harness = ExperimentHarness.from_spec(
            self.sub_spec, request_counter=itertools.count(1)
        )
        if self._harness.obs is not None:
            # Stamp the shard identity on exported journal records so the
            # driver's (t, shard, seq) merge is deterministic.
            self._harness.obs.journal.shard_index = self.shard_index
        self._session = self._harness.begin_run(
            duration_s=self.sub_spec.duration_s,
            sample_period_s=self.sub_spec.sample_period_s,
            warmup_s=self.sub_spec.warmup_s,
        )

    def advance(self, barrier_time: float) -> ShardDigest:
        """Run this shard's events up to the barrier; publish its digest."""
        session = self._require_session()
        session.advance_to(barrier_time)
        harness = self._harness
        return ShardDigest(
            shard_index=self.shard_index,
            time=harness.engine.now,
            node_pressure=harness.cluster.node_demand_snapshot(),
            next_event_time=harness.engine.next_event_time(),
            processed_events=harness.engine.processed_events,
        )

    def apply_remote(self, pressure: Dict[str, Dict[Resource, float]]) -> None:
        """Install the other shards' merged demand as remote node pressure."""
        self._harness.cluster.apply_remote_pressure(pressure)

    def finish(self) -> ShardOutcome:
        """Close the shard's accounting and return its picklable outcome."""
        session = self._require_session()
        result = session.finish()
        return ShardOutcome(
            shard_index=self.shard_index,
            result=result,
            violation_samples=list(session.violation_samples),
            processed_events=self._harness.engine.processed_events,
        )

    def abort(self) -> None:
        """Tear down without results (driver-side failure path)."""
        if self._session is not None:
            self._session.abort()

    def _require_session(self) -> RunSession:
        if self._session is None:
            raise RuntimeError("ShardWorker.prepare() has not been called")
        return self._session


def _shard_worker_factory(sub_specs: List[ScenarioSpec], index: int) -> ShardWorker:
    """Module-level (picklable) actor factory for :class:`WorkerTeam`."""
    return ShardWorker(sub_specs[index], index)


# ----------------------------------------------------------------- channels
class InProcessShardChannel:
    """Shard channel over a :class:`ShardWorker` living in this process.

    ``begin_*`` records the request and ``collect_*`` performs it, so the
    two-phase synchronizer drives in-process shards strictly serially —
    slower than processes on multi-core hosts but identical in results,
    which is exactly what the determinism tests exercise.
    """

    def __init__(self, worker: ShardWorker) -> None:
        self.worker = worker
        self._pending_barrier: Optional[float] = None
        self._pending_pressure: Optional[Dict[str, Dict[Resource, float]]] = None

    def begin_advance(self, barrier_time: float) -> None:
        self._pending_barrier = barrier_time

    def collect_digest(self) -> ShardDigest:
        barrier_time = self._pending_barrier
        self._pending_barrier = None
        return self.worker.advance(barrier_time)

    def begin_apply(self, pressure: Dict[str, Dict[Resource, float]]) -> None:
        self._pending_pressure = pressure

    def collect_apply(self) -> None:
        pressure = self._pending_pressure
        self._pending_pressure = None
        self.worker.apply_remote(pressure)


class TeamShardChannel:
    """Shard channel over one :class:`WorkerTeam` member.

    ``begin_*`` sends the method call down the member's pipe and returns
    immediately, so every shard process advances its window concurrently;
    ``collect_*`` blocks on the reply.
    """

    def __init__(self, team: WorkerTeam, member: int) -> None:
        self.team = team
        self.member = member

    def begin_advance(self, barrier_time: float) -> None:
        self.team.send(self.member, "advance", barrier_time)

    def collect_digest(self) -> ShardDigest:
        return self.team.recv(self.member)

    def begin_apply(self, pressure: Dict[str, Dict[Resource, float]]) -> None:
        self.team.send(self.member, "apply_remote", pressure)

    def collect_apply(self) -> None:
        self.team.recv(self.member)


# -------------------------------------------------------------------- merge
def _merge_cluster_mitigation(
    outcomes: Sequence[ShardOutcome], end_time: float
) -> MitigationTracker:
    """Rebuild the cluster-level mitigation timeline across shards.

    Every shard samples at the same cadence (the scenario-wide sample
    period, scheduled identically from t=0), so tick ``k`` has the same
    timestamp in every shard; the cluster is violating at a tick when
    *any* shard's tenants are — the same OR the unsharded harness folds
    over its tenants.
    """
    tracker = MitigationTracker()
    tick_count = max((len(o.violation_samples) for o in outcomes), default=0)
    for tick in range(tick_count):
        time_s: Optional[float] = None
        violating = False
        for outcome in outcomes:
            samples = outcome.violation_samples
            if tick < len(samples):
                sample_time, sample_violating = samples[tick]
                time_s = sample_time if time_s is None else time_s
                violating = violating or sample_violating
        if time_s is not None:
            tracker.update(time_s, violating)
    tracker.close(end_time)
    return tracker


def _sum_elementwise(series: Sequence[List[float]]) -> List[float]:
    """Element-wise sum of per-shard sample series (ragged-tail safe)."""
    length = max((len(samples) for samples in series), default=0)
    totals = [0.0] * length
    for samples in series:
        for index, value in enumerate(samples):
            totals[index] += value
    return totals


def _mean_elementwise(series: Sequence[List[float]]) -> List[float]:
    """Element-wise mean of per-shard sample series (ragged-tail safe)."""
    length = max((len(samples) for samples in series), default=0)
    totals = [0.0] * length
    counts = [0] * length
    for samples in series:
        for index, value in enumerate(samples):
            totals[index] += value
            counts[index] += 1
    return [
        totals[index] / counts[index] if counts[index] else 0.0
        for index in range(length)
    ]


def merge_shard_results(plan: ShardPlan, outcomes: Sequence[ShardOutcome]) -> ExperimentResult:
    """Fold per-shard outcomes into one cluster-level result.

    Per-tenant results are taken verbatim from the owning shard and
    re-ordered into the *global* tenant order, so every order-sensitive
    aggregate (merged SLO counts, concatenated latency samples, the
    ``app+app`` labels) matches what the unsharded harness would produce
    for the same per-tenant data.
    """
    by_index = {outcome.shard_index: outcome for outcome in outcomes}
    ordered_outcomes = [by_index[index] for index in range(plan.shards)]

    tenant_results = {}
    for name in plan.tenant_names:
        for outcome in ordered_outcomes:
            if name in outcome.result.tenant_results:
                tenant_results[name] = outcome.result.tenant_results[name]
                break
        else:
            raise RuntimeError(f"tenant {name!r} missing from every shard outcome")

    merged_slo = merge_slo_trackers([tenant_results[n].slo for n in plan.tenant_names])
    end_time = plan.spec.duration_s
    result = ExperimentResult(
        application="+".join(tenant_results[n].application for n in plan.tenant_names),
        controller="+".join(tenant_results[n].controller for n in plan.tenant_names),
        duration_s=plan.spec.duration_s,
        slo=merged_slo,
        latency=LatencyStats.from_samples(merged_slo.latencies_ms),
        mitigation=_merge_cluster_mitigation(ordered_outcomes, end_time),
        requested_cpu_samples=_sum_elementwise(
            [o.result.requested_cpu_samples for o in ordered_outcomes]
        ),
        cluster_cpu_utilization_samples=_mean_elementwise(
            [o.result.cluster_cpu_utilization_samples for o in ordered_outcomes]
        ),
        dropped_requests=sum(o.result.dropped_requests for o in ordered_outcomes),
    )
    result.tenant_results = tenant_results
    # Per-shard telemetry digests fold in ascending shard order; the bins
    # merge by integer addition, so the merged sketch is independent of the
    # shard grouping (and None when the run used raw telemetry mode).
    result.telemetry_digest = merge_telemetry_digests(
        [o.result.telemetry_digest for o in ordered_outcomes]
    )
    # Observability state folds the same way: journals merge by
    # (t, shard, seq) and registries in ascending shard order, so the
    # merged run record is identical for inprocess and process modes.
    shard_journals = [getattr(o.result, "journal", None) for o in ordered_outcomes]
    if any(journal is not None for journal in shard_journals):
        result.journal = merge_journal_records(shard_journals)
    result.metrics = merge_registries(
        getattr(o.result, "metrics", None) for o in ordered_outcomes
    )
    return result


# ------------------------------------------------------------------- driver
class ShardedScenarioRunner:
    """Drive one sharded scenario with an explicit prepare/execute split.

    The perf harness times :meth:`execute` alone, so process spawn and
    harness construction (pure setup, amortized across long runs) stay
    out of the measured window — mirroring how the unsharded macro times
    ``harness.run()`` but not ``from_spec()``.

    Parameters
    ----------
    spec:
        Multi-tenant scenario to run.
    shards:
        Shard count (>= 2; use :func:`run_sharded_scenario` for the
        transparent ``shards=1`` bypass).
    mode:
        ``"process"`` fans shards across spawned worker processes via
        :class:`~repro.experiments.sweep.WorkerTeam`; ``"inprocess"``
        runs them serially in this process (identical results, used by
        the determinism tests and useful under debuggers).
    """

    def __init__(self, spec: ScenarioSpec, shards: int, mode: str = "process") -> None:
        if mode not in ("process", "inprocess"):
            raise ValueError(f"unknown sharded execution mode {mode!r}")
        self.plan = plan_shards(spec, shards)
        self.mode = mode
        self.sync_stats: Optional[SyncStats] = None
        self.processed_events = 0
        self._team: Optional[WorkerTeam] = None
        self._workers: Optional[List[ShardWorker]] = None
        self._channels = None

    def prepare(self) -> None:
        """Spawn/build every shard worker and its run session (untimed)."""
        plan = self.plan
        if self.mode == "process":
            self._team = WorkerTeam(
                partial(_shard_worker_factory, plan.sub_specs), size=plan.shards
            )
            self._channels = [
                TeamShardChannel(self._team, member) for member in range(plan.shards)
            ]
            self._team.call_all("prepare")
        else:
            self._workers = [
                _shard_worker_factory(plan.sub_specs, index)
                for index in range(plan.shards)
            ]
            for worker in self._workers:
                worker.prepare()
            self._channels = [InProcessShardChannel(worker) for worker in self._workers]

    def execute(self) -> ExperimentResult:
        """Run the window-barrier loop to completion and merge results."""
        if self._channels is None:
            self.prepare()
        # With observability on, the driver keeps its own journal of
        # barrier advances (shard_index -1, so at equal times its records
        # sort ahead of shard records) and folds it into the merged
        # journal — identical for inprocess and process modes.
        driver_journal: Optional[EventJournal] = None
        observer = None
        if self.plan.spec.observability:
            driver_journal = EventJournal(shard_index=-1)

            def observer(index: int, target: float, stats: SyncStats) -> None:
                driver_journal.record(
                    target,
                    "shard_barrier",
                    "sync",
                    barrier=index,
                    skipped_windows=stats.skipped_windows,
                )

        sync = ConservativeWindowSync(
            self._channels,
            start_time=0.0,
            end_time=self.plan.spec.duration_s,
            window_s=self.plan.window_s,
            observer=observer,
        )
        self.sync_stats = sync.run()
        if driver_journal is not None:
            driver_journal.record(
                self.plan.spec.duration_s,
                "sync_stats",
                "sync",
                barriers=self.sync_stats.barriers,
                skipped_windows=self.sync_stats.skipped_windows,
                window_s=self.sync_stats.window_s,
            )
        if self._team is not None:
            outcomes = self._team.call_all("finish")
        else:
            outcomes = [worker.finish() for worker in self._workers]
        self.processed_events = sum(o.processed_events for o in outcomes)
        merged = merge_shard_results(self.plan, outcomes)
        if driver_journal is not None:
            merged.journal = merge_journal_records(
                [merged.journal, driver_journal.as_dicts()]
            )
        return merged

    def close(self) -> None:
        """Release worker processes (idempotent; in-process mode is a no-op)."""
        if self._team is not None:
            self._team.close()
            self._team = None
        self._workers = None
        self._channels = None


def run_sharded_scenario(
    spec: ScenarioSpec, shards: int = 1, mode: str = "process"
) -> ExperimentResult:
    """Run ``spec`` across ``shards`` event shards.

    ``shards == 1`` falls through to the classic
    :func:`~repro.experiments.scenario.run_scenario` — byte-identical to
    the unsharded engine.  ``shards >= 2`` requires a multi-tenant spec
    and runs the conservative window loop (see the module docstring for
    the determinism contract).
    """
    if shards <= 1:
        return run_scenario(spec)
    runner = ShardedScenarioRunner(spec, shards, mode=mode)
    try:
        runner.prepare()
        return runner.execute()
    finally:
        runner.close()


__all__ = [
    "InProcessShardChannel",
    "ShardOutcome",
    "ShardPlan",
    "ShardWorker",
    "ShardedScenarioRunner",
    "TeamShardChannel",
    "merge_shard_results",
    "plan_shards",
    "run_sharded_scenario",
]
