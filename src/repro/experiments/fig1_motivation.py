"""Fig. 1 — motivation: latency spikes under memory-bandwidth contention.

The paper's opening figure shows a 99th-percentile latency spike caused by
memory-bandwidth contention that the Kubernetes autoscaler cannot mitigate
(its heuristics only watch CPU utilization, which does not change), while
FIRM scales the right fine-grained resource and keeps the tail flat.

The experiment injects a memory-bandwidth anomaly against a
cache-tier service in Social Network while recording a per-interval
99th-percentile latency timeline with and without FIRM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.anomaly.anomalies import AnomalySpec, AnomalyType
from repro.anomaly.campaigns import AnomalyCampaign
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scenario import ScenarioSpec


@dataclass
class Fig1Result:
    """Timeline of tail latency with and without FIRM."""

    times_s: List[float]
    p99_without_firm_ms: List[float]
    p99_with_firm_ms: List[float]
    anomaly_start_s: float
    anomaly_end_s: float
    slo_ms: float

    def peak_without_firm(self) -> float:
        """Highest tail latency observed without FIRM during the anomaly."""
        return max(self._during(self.p99_without_firm_ms), default=0.0)

    def peak_with_firm(self) -> float:
        """Highest tail latency observed with FIRM during the anomaly."""
        return max(self._during(self.p99_with_firm_ms), default=0.0)

    def _during(self, series: List[float]) -> List[float]:
        return [
            value
            for time, value in zip(self.times_s, series)
            # Allow detection/actuation lag: look slightly past the window.
            if self.anomaly_start_s <= time <= self.anomaly_end_s + 20.0
        ]

    def improvement_factor(self) -> float:
        """Peak tail latency without FIRM divided by peak with FIRM."""
        with_firm = self.peak_with_firm()
        if with_firm <= 0:
            return 0.0
        return self.peak_without_firm() / with_firm

    def rows(self) -> List[Dict[str, float]]:
        """Timeline rows for reports (one per sampling interval)."""
        return [
            {
                "time_s": time,
                "p99_without_firm_ms": without,
                "p99_with_firm_ms": with_firm,
            }
            for time, without, with_firm in zip(
                self.times_s, self.p99_without_firm_ms, self.p99_with_firm_ms
            )
        ]


def _run_timeline(
    with_firm: bool,
    duration_s: float,
    load_rps: float,
    anomaly_start_s: float,
    anomaly_duration_s: float,
    intensity: float,
    target_service: str,
    seed: int,
    sample_period_s: float,
) -> List[float]:
    """Run one scenario and return the per-interval p99 latency series."""
    campaign = AnomalyCampaign("fig1")
    # The paper's Fig. 1 stresses memory bandwidth on the server hosting the
    # cache tier; we hit the nodes hosting the read-path caches so that the
    # contention is visible end-to-end.
    for target in (target_service, "user-timeline-memcached", "user-memcached"):
        campaign.add(
            AnomalySpec(
                anomaly_type=AnomalyType.MEMORY_BANDWIDTH,
                target_service=target,
                start_s=anomaly_start_s,
                duration_s=anomaly_duration_s,
                intensity=intensity,
            )
        )
    spec = ScenarioSpec(
        application="social_network",
        seed=seed,
        duration_s=duration_s,
        load_rps=load_rps,
        controller="firm" if with_firm else "none",
        campaign=campaign,
    )
    harness = ExperimentHarness.from_spec(spec)

    p99_series: List[float] = []

    def _sample(engine) -> None:
        p99_series.append(
            harness.coordinator.latency_percentile_ms(99.0, sample_period_s)
        )

    harness.engine.schedule_recurring(sample_period_s, _sample, name="fig1-sample")
    harness.run(duration_s=duration_s, load_rps=load_rps)
    return p99_series


def run_fig1(
    duration_s: float = 120.0,
    load_rps: float = 60.0,
    anomaly_start_s: float = 40.0,
    anomaly_duration_s: float = 40.0,
    intensity: float = 0.95,
    target_service: str = "post-storage-memcached",
    seed: int = 7,
    sample_period_s: float = 5.0,
) -> Fig1Result:
    """Reproduce Fig. 1: the same anomaly with and without FIRM."""
    without = _run_timeline(
        False, duration_s, load_rps, anomaly_start_s, anomaly_duration_s,
        intensity, target_service, seed, sample_period_s,
    )
    with_firm = _run_timeline(
        True, duration_s, load_rps, anomaly_start_s, anomaly_duration_s,
        intensity, target_service, seed, sample_period_s,
    )
    length = min(len(without), len(with_firm))
    times = [sample_period_s * (index + 1) for index in range(length)]
    slo = 150.0
    return Fig1Result(
        times_s=times,
        p99_without_firm_ms=without[:length],
        p99_with_firm_ms=with_firm[:length],
        anomaly_start_s=anomaly_start_s,
        anomaly_end_s=anomaly_start_s + anomaly_duration_s,
        slo_ms=slo,
    )
