"""Experiment harness: builds and runs full end-to-end scenarios.

The harness wires together one benchmark application, the simulated
cluster, tracing, telemetry, workload generation, anomaly injection, and a
resource-management controller (looked up by name in the controller
registry), and runs the scenario for a configured duration while
collecting SLO statistics and mitigation times.  Scenarios are described
declaratively by :class:`~repro.experiments.scenario.ScenarioSpec` and
built with :meth:`ExperimentHarness.from_spec`; every per-figure
experiment module is a thin layer over this harness.

SLO accounting is streaming: the harness observes each trace through a
tracing-coordinator completion hook the moment the request finishes, so
heavy-traffic runs do not need to retain every trace until the end and
traces evicted from the bounded :class:`~repro.tracing.store.TraceStore`
are still counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.anomaly.campaigns import AnomalyCampaign
from repro.anomaly.injector import PerformanceAnomalyInjector
from repro.apps.catalog import build_application
from repro.apps.graph import ServiceGraph
from repro.apps.runtime import ApplicationRuntime
from repro.baselines.base import ResourceController, create_controller
from repro.cluster.cluster import Cluster
from repro.cluster.orchestrator import Orchestrator
from repro.cluster.telemetry import TelemetryCollector
from repro.core.firm import FIRMConfig, FIRMController
from repro.experiments.scenario import ScenarioSpec, run_scenario
from repro.metrics.latency import LatencyStats
from repro.metrics.slo import MitigationTracker, SLOTracker
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG
from repro.tracing.coordinator import TracingCoordinator
from repro.tracing.trace import Trace
from repro.workload.generators import WorkloadGenerator
from repro.workload.patterns import ArrivalPattern, ConstantPattern


@dataclass
class ExperimentResult:
    """Aggregate outcome of one harness run."""

    application: str
    controller: str
    duration_s: float
    slo: SLOTracker
    latency: LatencyStats
    mitigation: MitigationTracker
    requested_cpu_samples: List[float] = field(default_factory=list)
    cluster_cpu_utilization_samples: List[float] = field(default_factory=list)
    dropped_requests: int = 0

    @property
    def mean_requested_cpu(self) -> float:
        """Mean total requested CPU limit over the run (Fig. 10(b))."""
        if not self.requested_cpu_samples:
            return 0.0
        return float(sum(self.requested_cpu_samples) / len(self.requested_cpu_samples))

    @property
    def mean_cluster_cpu_utilization(self) -> float:
        """Mean cluster-level CPU utilization over the run."""
        if not self.cluster_cpu_utilization_samples:
            return 0.0
        return float(
            sum(self.cluster_cpu_utilization_samples)
            / len(self.cluster_cpu_utilization_samples)
        )

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports.

        ``dropped`` comes from the streaming SLO tracker so it covers the
        same accounting window as ``completed``/``violations``
        (``dropped_requests`` stays the runtime's cumulative counter).
        """
        return {
            "completed": float(self.slo.completed),
            "violations": float(self.slo.violations),
            "violation_rate": self.slo.violation_rate,
            "dropped": float(self.slo.dropped),
            "p50_ms": self.latency.median,
            "p99_ms": self.latency.p99,
            "mean_requested_cpu": self.mean_requested_cpu,
            "mean_mitigation_time_s": self.mitigation.mean_mitigation_time_s(),
        }


class ExperimentHarness:
    """One fully wired scenario: app + cluster + workload + controller."""

    def __init__(
        self,
        app: ServiceGraph,
        engine: SimulationEngine,
        rng: SeededRNG,
    ) -> None:
        self.app = app
        self.engine = engine
        self.rng = rng
        self.cluster = Cluster(engine, rng)
        self.telemetry = TelemetryCollector(self.cluster, engine)
        self.coordinator = TracingCoordinator(engine, telemetry=self.telemetry)
        self.runtime = ApplicationRuntime(app, self.cluster, self.coordinator, engine)
        self.orchestrator = Orchestrator(self.cluster, engine, rng)
        self.workload: Optional[WorkloadGenerator] = None
        self.injector: Optional[PerformanceAnomalyInjector] = None
        self.campaign: Optional[AnomalyCampaign] = None
        self.controller: Optional[ResourceController] = None
        self.controller_name = "none"
        self.firm: Optional[FIRMController] = None
        self.spec: Optional[ScenarioSpec] = None

    # ----------------------------------------------------------------- build
    @classmethod
    def build(cls, application: str = "social_network", seed: int = 0) -> "ExperimentHarness":
        """Build a harness for one of the four benchmark applications."""
        engine = SimulationEngine()
        rng = SeededRNG(seed)
        app = build_application(application)
        harness = cls(app, engine, rng)
        harness.runtime.deploy()
        harness.telemetry.start()
        return harness

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "ExperimentHarness":
        """Build the fully wired harness described by ``spec``.

        Wires, in order: application + cluster, workload (explicit pattern
        or constant ``load_rps``), anomaly campaign (pre-built or realized
        through ``spec.campaign_builder``), and the controller looked up in
        the registry.  The realized campaign is kept on ``harness.campaign``
        for experiments that need its schedule (e.g. its end time).
        """
        harness = cls.build(application=spec.application, seed=spec.seed)
        harness.spec = spec
        if spec.pattern is not None:
            harness.attach_workload(pattern=spec.pattern, request_mix=spec.request_mix)
        else:
            harness.attach_workload(load_rps=spec.load_rps, request_mix=spec.request_mix)
        campaign = spec.campaign
        if campaign is None and spec.campaign_builder is not None:
            campaign = spec.campaign_builder(harness)
        if campaign is not None:
            harness.attach_injector(campaign)
        harness.attach_controller(spec.controller, **spec.controller_kwargs)
        return harness

    # ------------------------------------------------------------ controllers
    def attach_controller(self, name: str, **kwargs) -> Optional[ResourceController]:
        """Attach the controller registered under ``name`` (or an alias).

        Raises ``ValueError`` for names missing from the registry.  The
        ``"none"`` policy detaches any current controller.  A previously
        attached (possibly started) controller is stopped first so its
        control loop cannot keep acting alongside the replacement.
        """
        controller = create_controller(
            name, self.cluster, self.coordinator, self.orchestrator, self.engine, **kwargs
        )
        if self.controller is not None:
            self.controller.stop()
        self.controller = controller
        self.controller_name = name
        self.firm = controller if isinstance(controller, FIRMController) else None
        return controller

    def attach_firm(self, config: Optional[FIRMConfig] = None, **kwargs) -> FIRMController:
        """Manage the cluster with FIRM."""
        return self.attach_controller("firm", config=config, **kwargs)

    def attach_kubernetes_autoscaler(self, **kwargs):
        """Manage the cluster with the Kubernetes HPA baseline."""
        return self.attach_controller("k8s", **kwargs)

    def attach_aimd(self, **kwargs):
        """Manage the cluster with the AIMD baseline."""
        return self.attach_controller("aimd", **kwargs)

    # --------------------------------------------------------------- workload
    def attach_workload(
        self,
        pattern: Optional[ArrivalPattern] = None,
        load_rps: float = 100.0,
        request_mix: Optional[Sequence] = None,
    ) -> WorkloadGenerator:
        """Attach an open-loop workload generator."""
        if pattern is None:
            pattern = ConstantPattern(rate=load_rps)
        self.workload = WorkloadGenerator(
            self.runtime, self.engine, self.rng, pattern=pattern, request_mix=request_mix
        )
        return self.workload

    def attach_injector(
        self, campaign: Optional[AnomalyCampaign] = None
    ) -> PerformanceAnomalyInjector:
        """Attach the anomaly injector (optionally pre-loading a campaign)."""
        self.injector = PerformanceAnomalyInjector(
            self.cluster, self.engine, workload=self.workload
        )
        self.campaign = campaign
        if campaign is not None:
            self.injector.schedule_all(campaign.specs)
        return self.injector

    # -------------------------------------------------------------------- run
    def run(
        self,
        duration_s: float = 120.0,
        load_rps: Optional[float] = None,
        sample_period_s: float = 1.0,
        warmup_s: float = 0.0,
    ) -> ExperimentResult:
        """Run the scenario for ``duration_s`` simulated seconds.

        ``warmup_s`` seconds at the start are excluded from SLO accounting
        (the cluster starts empty, so the first requests see cold queues).
        """
        if self.workload is None:
            self.attach_workload(load_rps=load_rps if load_rps is not None else 100.0)
        elif load_rps is not None:
            self.workload.pattern = ConstantPattern(rate=load_rps)

        slo_tracker = SLOTracker(dict(self.coordinator.slo_latency_ms))
        mitigation = MitigationTracker()
        requested_cpu: List[float] = []
        cpu_utilization: List[float] = []
        start_time = self.engine.now
        end_time = start_time + duration_s
        accounting_start = start_time + warmup_s

        # Streaming SLO accounting: observe every trace the moment it
        # finishes.  A trace can fire twice in either order (a downstream
        # drop before the entry span completes, or a background call's
        # rejection after it) — "dropped" is the final word either way,
        # matching the old end-of-run scan of the trace store.
        outcomes: Dict[str, str] = {}

        def _observe_finished(trace: Trace) -> None:
            if (trace.arrival_time or 0.0) < accounting_start:
                return
            prior = outcomes.get(trace.request_id)
            if prior is None:
                outcomes[trace.request_id] = "dropped" if trace.dropped else "completed"
                slo_tracker.observe(trace)
            elif prior == "completed" and trace.dropped:
                outcomes[trace.request_id] = "dropped"
                slo_tracker.reclassify_as_dropped(trace)

        def _sample(engine: SimulationEngine) -> None:
            requested_cpu.append(self.cluster.total_requested_cpu())
            cpu_utilization.append(self.cluster.cluster_cpu_utilization())
            violating = self.coordinator.has_slo_violation(5.0)
            mitigation.update(engine.now, violating)

        # Bound the sampling recurrence to this run (and cancel it on exit)
        # so back-to-back run() calls on one harness never double-sample.
        sample_event = self.engine.schedule_recurring(
            sample_period_s, _sample, name="harness-sample", until=end_time
        )
        self.coordinator.add_completion_hook(_observe_finished)
        try:
            if self.controller is not None:
                self.controller.start()
            self.workload.start(duration_s=duration_s)
            self.engine.run_until(end_time)
            mitigation.close(self.engine.now)
        finally:
            self.coordinator.remove_completion_hook(_observe_finished)
            sample_event.cancel()

        latency = LatencyStats.from_samples(slo_tracker.latencies_ms)
        return ExperimentResult(
            application=self.app.name,
            controller=self.controller_name,
            duration_s=duration_s,
            slo=slo_tracker,
            latency=latency,
            mitigation=mitigation,
            requested_cpu_samples=requested_cpu,
            cluster_cpu_utilization_samples=cpu_utilization,
            dropped_requests=self.runtime.dropped_requests,
        )


def run_comparison(
    application: str,
    duration_s: float,
    load_rps: float,
    campaign_builder,
    seed: int = 0,
    controllers: Sequence[str] = ("firm", "aimd", "k8s"),
) -> Dict[str, ExperimentResult]:
    """Run the same scenario under each registered controller.

    ``campaign_builder(harness)`` must return an
    :class:`~repro.anomaly.campaigns.AnomalyCampaign` (or None) for the
    freshly built harness, so each controller sees an identical schedule.
    """
    results: Dict[str, ExperimentResult] = {}
    for controller in controllers:
        spec = ScenarioSpec(
            application=application,
            seed=seed,
            duration_s=duration_s,
            load_rps=load_rps,
            controller=controller,
            campaign_builder=campaign_builder,
        )
        results[controller] = run_scenario(spec)
    return results
