"""Experiment harness: builds and runs full end-to-end scenarios.

The harness wires one simulated cluster shared by **one or more tenants**.
Each tenant bundles a benchmark application, its tracing coordinator, a
workload generator, an optional anomaly campaign, and an optional resource
controller (looked up by name in the controller registry) — all captured
in a :class:`TenantRuntime`.  Single-tenant scenarios have exactly one
tenant whose wiring is identical to the classic harness (untenanted, no
service-name namespacing), so their results are unchanged; multi-tenant
scenarios namespace every tenant's services, tag traces/telemetry with
tenant identity, and scope each tenant's controller through a
:class:`~repro.cluster.cluster.TenantClusterView` while contention flows
across tenants through the shared nodes.

Scenarios are described declaratively by
:class:`~repro.experiments.scenario.ScenarioSpec` (optionally carrying
:class:`~repro.experiments.scenario.TenantSpec` entries) and built with
:meth:`ExperimentHarness.from_spec`; every per-figure experiment module is
a thin layer over this harness.

SLO accounting is streaming and per tenant: the harness observes each
trace through the owning tenant's tracing-coordinator completion hook the
moment the request finishes, so heavy-traffic runs do not need to retain
every trace until the end and traces evicted from the bounded
:class:`~repro.tracing.store.TraceStore` are still counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.admission.config import resolve_admission_config
from repro.admission.gate import AdmissionGate
from repro.anomaly.campaigns import AnomalyCampaign
from repro.anomaly.injector import PerformanceAnomalyInjector
from repro.apps.catalog import build_application
from repro.apps.graph import ServiceGraph
from repro.apps.runtime import ApplicationRuntime
from repro.baselines.base import ResourceController, create_controller
from repro.cluster.cluster import Cluster, TenantClusterView
from repro.cluster.node import NodeSpec
from repro.cluster.orchestrator import Orchestrator
from repro.cluster.scheduler import PlacementPolicy, Scheduler
from repro.cluster.telemetry import TelemetryCollector
from repro.controllers.manager import ControllerManager, StageBinding, StageCache
from repro.core.firm import FIRMConfig, FIRMController
from repro.experiments.scenario import ScenarioSpec, TenantSpec, run_scenario
from repro.metrics.latency import LatencyStats
from repro.metrics.slo import MitigationTracker, SLOTracker, merge_slo_trackers
from repro.obs.run import Observability
from repro.routing.dispatchers import DISPATCH_VARIANTS
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG
from repro.tracing.coordinator import TracingCoordinator
from repro.tracing.trace import Trace
from repro.workload.generators import WorkloadGenerator
from repro.workload.patterns import ArrivalPattern, ConstantPattern


class TenantRuntime:
    """One tenant's full wiring inside a (possibly shared) harness.

    Exposes ``.app`` and ``.rng`` with single-tenant-harness semantics so
    picklable campaign builders written against the harness work unchanged
    against a tenant.  The *primary* tenant of a single-tenant harness is
    untenanted (``tenant_id is None``): its view is the raw cluster, its
    services are not namespaced, and its RNG is the harness master RNG —
    exactly the classic wiring.
    """

    def __init__(
        self,
        name: Optional[str],
        app: ServiceGraph,
        view,
        coordinator: TracingCoordinator,
        runtime: ApplicationRuntime,
        orchestrator: Orchestrator,
        rng: SeededRNG,
        engine: SimulationEngine,
        spec: Optional[TenantSpec] = None,
    ) -> None:
        #: Tenant identity (None for the untenanted primary tenant).
        self.tenant_id = name
        self.app = app
        #: Cluster or TenantClusterView the tenant deploys/queries through.
        self.view = view
        self.coordinator = coordinator
        self.runtime = runtime
        self.orchestrator = orchestrator
        self.rng = rng
        self.engine = engine
        self.spec = spec
        self.workload: Optional[WorkloadGenerator] = None
        self.injector: Optional[PerformanceAnomalyInjector] = None
        self.campaign: Optional[AnomalyCampaign] = None
        self.controller: Optional[ResourceController] = None
        self.controller_name = "none"
        self.firm: Optional[FIRMController] = None
        #: The tenant's controller-stage manager (set by the harness).
        self.manager = None

    @property
    def admission(self) -> Optional[AdmissionGate]:
        """The tenant's admission gate (lives on its application runtime)."""
        return self.runtime.admission

    @property
    def display_name(self) -> str:
        """Tenant identity for reports (primary tenant reports its app)."""
        return self.tenant_id if self.tenant_id is not None else self.app.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantRuntime(tenant={self.tenant_id!r}, app={self.app.name!r}, "
            f"controller={self.controller_name!r})"
        )


@dataclass
class TenantResult:
    """Per-tenant outcome of one multi-tenant harness run."""

    tenant: str
    application: str
    controller: str
    slo: SLOTracker
    latency: LatencyStats
    mitigation: MitigationTracker
    requested_cpu_samples: List[float] = field(default_factory=list)
    dropped_requests: int = 0

    @property
    def mean_requested_cpu(self) -> float:
        """Mean requested CPU limit of this tenant's containers."""
        if not self.requested_cpu_samples:
            return 0.0
        return float(sum(self.requested_cpu_samples) / len(self.requested_cpu_samples))

    def summary(self) -> Dict[str, float]:
        """Headline numbers for this tenant."""
        return {
            "completed": float(self.slo.completed),
            "violations": float(self.slo.violations),
            "violation_rate": self.slo.violation_rate,
            "dropped": float(self.slo.dropped),
            "p50_ms": self.latency.median,
            "p99_ms": self.latency.p99,
            "mean_requested_cpu": self.mean_requested_cpu,
            "mean_mitigation_time_s": self.mitigation.mean_mitigation_time_s(),
        }


@dataclass
class ExperimentResult:
    """Aggregate outcome of one harness run.

    For multi-tenant runs the top-level ``slo``/``latency`` fields are the
    merged cluster-level view across tenants and the per-tenant breakdown
    is available via :attr:`tenant_results` (kept off the dataclass fields
    so single-tenant JSON exports are unchanged).
    """

    application: str
    controller: str
    duration_s: float
    slo: SLOTracker
    latency: LatencyStats
    mitigation: MitigationTracker
    requested_cpu_samples: List[float] = field(default_factory=list)
    cluster_cpu_utilization_samples: List[float] = field(default_factory=list)
    dropped_requests: int = 0

    def __post_init__(self) -> None:
        #: Per-tenant results, in tenant order (empty for single-tenant
        #: runs).  A plain attribute, not a dataclass field, so generic
        #: dataclass-to-JSON conversion of single-tenant results is
        #: byte-for-byte identical to the pre-multi-tenant output.
        self.tenant_results: Dict[str, TenantResult] = {}
        #: Run-level mergeable latency digest (sketch telemetry mode only;
        #: None in raw mode).  Kept off the dataclass fields for the same
        #: JSON-compatibility reason as ``tenant_results``.  For sharded
        #: runs the merge layer replaces this with the ascending-shard-order
        #: fold of the per-shard digests.
        self.telemetry_digest = None
        #: Exported event-journal records and the metrics registry of an
        #: observability-enabled run (None with observability off).  Plain
        #: attributes for the same JSON-compatibility reason as above; the
        #: sharded merge layer replaces them with the ``(t, shard, seq)``
        #: journal merge and the ascending-shard-order registry fold.
        self.journal = None
        self.metrics = None
        #: Admission-gate snapshot(s) of an admission-controlled run: the
        #: gate's ``snapshot()`` dict for single-tenant runs, a dict of
        #: them keyed by tenant for multi-tenant runs, None with admission
        #: off.  A plain attribute for JSON byte-compatibility, like the
        #: attributes above.
        self.admission = None

    @property
    def mean_requested_cpu(self) -> float:
        """Mean total requested CPU limit over the run (Fig. 10(b))."""
        if not self.requested_cpu_samples:
            return 0.0
        return float(sum(self.requested_cpu_samples) / len(self.requested_cpu_samples))

    @property
    def mean_cluster_cpu_utilization(self) -> float:
        """Mean cluster-level CPU utilization over the run."""
        if not self.cluster_cpu_utilization_samples:
            return 0.0
        return float(
            sum(self.cluster_cpu_utilization_samples)
            / len(self.cluster_cpu_utilization_samples)
        )

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports.

        ``dropped`` comes from the streaming SLO tracker so it covers the
        same accounting window as ``completed``/``violations``
        (``dropped_requests`` stays the runtime's cumulative counter).
        """
        return {
            "completed": float(self.slo.completed),
            "violations": float(self.slo.violations),
            "violation_rate": self.slo.violation_rate,
            "dropped": float(self.slo.dropped),
            "p50_ms": self.latency.median,
            "p99_ms": self.latency.p99,
            "mean_requested_cpu": self.mean_requested_cpu,
            "mean_mitigation_time_s": self.mitigation.mean_mitigation_time_s(),
        }

    def per_tenant_summary(self) -> Dict[str, Dict[str, float]]:
        """Headline numbers per tenant (empty for single-tenant runs)."""
        return {name: result.summary() for name, result in self.tenant_results.items()}


class ExperimentHarness:
    """One fully wired scenario: tenants + shared cluster + controllers."""

    def __init__(
        self,
        app: Optional[ServiceGraph],
        engine: SimulationEngine,
        rng: SeededRNG,
        scheduler: Optional[Scheduler] = None,
        node_specs: Optional[List[NodeSpec]] = None,
        request_counter=None,
        telemetry_mode: str = "raw",
        observability: bool = False,
        controller_manager: bool = False,
    ) -> None:
        self.engine = engine
        self.rng = rng
        #: Whether controller stages are memoized per window by each
        #: tenant's ControllerManager (off = legacy direct computation,
        #: byte-identical results either way — stages are pure reads).
        self.controller_manager = bool(controller_manager)
        #: Cache shared by every tenant's manager for cluster-scoped
        #: stages (service names are globally unique, so one computation
        #: serves all tenants).
        self._cluster_stage_cache = StageCache()
        #: Per-run observability bundle (journal + metrics registry), or
        #: None when disabled — every instrumentation site checks for None
        #: so the disabled path stays byte-identical to pre-obs behaviour.
        self.obs: Optional[Observability] = Observability() if observability else None
        #: Telemetry pipeline mode shared by the collector and every
        #: tenant's coordinator: "raw" (full history, the historical
        #: behaviour and the default for direct construction) or "sketch"
        #: (constant-memory windowed sketches + reservoir trace retention).
        self.telemetry_mode = telemetry_mode
        #: Optional request-id counter shared by every tenant runtime; the
        #: sharded engine gives each shard harness its own so in-process
        #: shard sessions number requests like freshly spawned processes.
        self.request_counter = request_counter
        self.cluster = Cluster(engine, rng, node_specs=node_specs, scheduler=scheduler)
        if self.obs is not None:
            self.cluster.router.enable_observability(self.obs, engine)
        self.telemetry = TelemetryCollector(self.cluster, engine, mode=telemetry_mode)
        #: All tenants, in deployment order.  Single-tenant harnesses hold
        #: exactly one untenanted entry whose wiring matches the classic
        #: harness; its members are also reachable through the legacy
        #: ``harness.coordinator`` / ``harness.runtime`` / ... attributes.
        self.tenants: List[TenantRuntime] = []
        self.spec: Optional[ScenarioSpec] = None
        if app is not None:
            self._add_primary_tenant(app)

    # ------------------------------------------------------- tenant plumbing
    def _add_primary_tenant(self, app: ServiceGraph) -> TenantRuntime:
        """Wire the classic untenanted tenant (single-tenant harness)."""
        coordinator = TracingCoordinator(
            self.engine,
            telemetry=self.telemetry,
            telemetry_mode=self.telemetry_mode,
            rng=self.rng,
        )
        runtime = ApplicationRuntime(
            app, self.cluster, coordinator, self.engine,
            request_counter=self.request_counter,
        )
        orchestrator = Orchestrator(self.cluster, self.engine, self.rng)
        tenant = TenantRuntime(
            name=None,
            app=app,
            view=self.cluster,
            coordinator=coordinator,
            runtime=runtime,
            orchestrator=orchestrator,
            rng=self.rng,
            engine=self.engine,
        )
        if self.obs is not None:
            orchestrator.obs = self.obs
            orchestrator.obs_source = tenant.display_name
        tenant.manager = self._build_stage_manager()
        self.tenants.append(tenant)
        return tenant

    def add_tenant(self, tenant_spec: TenantSpec) -> TenantRuntime:
        """Deploy and fully wire one tenant of a multi-tenant scenario.

        The tenant's application graph is namespaced under its name, its
        RNG is an independent child family spawned from the master seed,
        its coordinator/orchestrator/controller operate through a
        tenant-scoped cluster view, and its SLO targets are the
        application's declared SLOs scaled by ``slo_scale`` with optional
        per-request-type overrides.
        """
        name = tenant_spec.name
        if not name:
            raise ValueError("tenant specs must be named")
        if any(t.tenant_id == name for t in self.tenants):
            raise ValueError(f"tenant {name!r} is already deployed")
        if tenant_spec.node_quota is not None:
            self.cluster.scheduler.node_quotas[name] = int(tenant_spec.node_quota)
        if tenant_spec.routing is not None:
            self.cluster.set_routing_policy(tenant_spec.routing, tenant=name)

        app = build_application(tenant_spec.application).namespaced(name)
        tenant_rng = self.rng.spawn(f"tenant:{name}")
        view = TenantClusterView(self.cluster, name)
        coordinator = TracingCoordinator(
            self.engine,
            telemetry=self.telemetry,
            tenant=name,
            telemetry_mode=self.telemetry_mode,
            rng=tenant_rng,
        )
        runtime = ApplicationRuntime(
            app, view, coordinator, self.engine, tenant=name,
            request_counter=self.request_counter,
        )
        orchestrator = Orchestrator(view, self.engine, tenant_rng)
        tenant = TenantRuntime(
            name=name,
            app=app,
            view=view,
            coordinator=coordinator,
            runtime=runtime,
            orchestrator=orchestrator,
            rng=tenant_rng,
            engine=self.engine,
            spec=tenant_spec,
        )
        if self.obs is not None:
            orchestrator.obs = self.obs
            orchestrator.obs_source = tenant.display_name
        tenant.manager = self._build_stage_manager()
        self.tenants.append(tenant)

        runtime.deploy()
        if tenant_spec.replicas:
            self._apply_replica_overrides(
                view, {f"{name}/{svc}": n for svc, n in tenant_spec.replicas.items()}
            )
        self._apply_slo_targets(tenant, tenant_spec)
        self._attach_workload(
            tenant,
            pattern=tenant_spec.pattern,
            load_rps=tenant_spec.load_rps,
            request_mix=tenant_spec.request_mix,
        )
        campaign = tenant_spec.campaign
        if campaign is None and tenant_spec.campaign_builder is not None:
            campaign = tenant_spec.campaign_builder(tenant)
        if campaign is not None:
            self._attach_injector(tenant, campaign)
        self._attach_controller(
            tenant, tenant_spec.controller, **tenant_spec.controller_kwargs
        )
        admission = tenant_spec.admission
        if admission is None and self.spec is not None:
            admission = self.spec.admission
        if admission is not None:
            self._attach_admission(tenant, admission)
        return tenant

    @staticmethod
    def _apply_replica_overrides(view, replicas: Dict[str, int]) -> None:
        """Top deployed services up to the requested replica counts.

        ``view`` is the cluster (single-tenant) or a tenant's cluster view
        (service names already namespaced); counts below the deployed
        replica count are left alone — the override only ever adds
        replicas, it never scales a service in.
        """
        for service_name, target in replicas.items():
            current = len(view.replicas_of(service_name))
            if current == 0:
                raise ValueError(
                    f"replica override for unknown service {service_name!r}"
                )
            if int(target) > current:
                view.deploy_service(
                    view.profile_of(service_name), replicas=int(target) - current
                )

    @staticmethod
    def _apply_slo_targets(tenant: TenantRuntime, tenant_spec: TenantSpec) -> None:
        """Scale/override the SLOs the runtime registered at deploy time."""
        slos = tenant.coordinator.slo_latency_ms
        if tenant_spec.slo_scale != 1.0:
            for request_type in list(slos):
                slos[request_type] = slos[request_type] * float(tenant_spec.slo_scale)
        for request_type, value in (tenant_spec.slo_latency_ms or {}).items():
            slos[request_type] = float(value)

    def tenant(self, name: str) -> TenantRuntime:
        """Look up a tenant by name (the primary tenant has name None)."""
        for tenant in self.tenants:
            if tenant.tenant_id == name:
                return tenant
        raise KeyError(f"no tenant named {name!r}")

    @property
    def _primary(self) -> TenantRuntime:
        if not self.tenants:
            raise RuntimeError("harness has no tenants")
        return self.tenants[0]

    @property
    def is_multi_tenant(self) -> bool:
        return len(self.tenants) > 1 or (
            len(self.tenants) == 1 and self.tenants[0].tenant_id is not None
        )

    # ----------------------------------------------- legacy (primary) wiring
    # Single-tenant callers address the harness's app/coordinator/controller
    # directly; these delegate to the primary tenant so every pre-existing
    # experiment, example, and test keeps working unchanged.
    @property
    def app(self) -> ServiceGraph:
        return self._primary.app

    @property
    def coordinator(self) -> TracingCoordinator:
        return self._primary.coordinator

    @property
    def runtime(self) -> ApplicationRuntime:
        return self._primary.runtime

    @property
    def orchestrator(self) -> Orchestrator:
        return self._primary.orchestrator

    @property
    def workload(self) -> Optional[WorkloadGenerator]:
        return self._primary.workload

    @workload.setter
    def workload(self, value: Optional[WorkloadGenerator]) -> None:
        self._primary.workload = value

    @property
    def injector(self) -> Optional[PerformanceAnomalyInjector]:
        return self._primary.injector

    @injector.setter
    def injector(self, value: Optional[PerformanceAnomalyInjector]) -> None:
        self._primary.injector = value

    @property
    def campaign(self) -> Optional[AnomalyCampaign]:
        return self._primary.campaign

    @campaign.setter
    def campaign(self, value: Optional[AnomalyCampaign]) -> None:
        self._primary.campaign = value

    @property
    def controller(self) -> Optional[ResourceController]:
        return self._primary.controller

    @controller.setter
    def controller(self, value: Optional[ResourceController]) -> None:
        self._primary.controller = value

    @property
    def controller_name(self) -> str:
        return self._primary.controller_name

    @controller_name.setter
    def controller_name(self, value: str) -> None:
        self._primary.controller_name = value

    @property
    def firm(self) -> Optional[FIRMController]:
        return self._primary.firm

    @firm.setter
    def firm(self, value: Optional[FIRMController]) -> None:
        self._primary.firm = value

    # ----------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        application: str = "social_network",
        seed: int = 0,
        scheduler: Optional[Scheduler] = None,
        node_specs: Optional[List[NodeSpec]] = None,
        request_counter=None,
        telemetry_mode: str = "raw",
        observability: bool = False,
        controller_manager: bool = False,
    ) -> "ExperimentHarness":
        """Build a harness for one of the four benchmark applications."""
        engine = SimulationEngine()
        rng = SeededRNG(seed)
        app = build_application(application)
        harness = cls(
            app, engine, rng, scheduler=scheduler, node_specs=node_specs,
            request_counter=request_counter, telemetry_mode=telemetry_mode,
            observability=observability, controller_manager=controller_manager,
        )
        harness.runtime.deploy()
        harness.telemetry.start()
        return harness

    @classmethod
    def from_spec(cls, spec: ScenarioSpec, request_counter=None) -> "ExperimentHarness":
        """Build the fully wired harness described by ``spec``.

        Single-tenant specs wire, in order: application + cluster, routing
        policy (``spec.routing``, resolved in the routing registry),
        workload (explicit pattern or constant ``load_rps``), anomaly
        campaign (pre-built or realized through ``spec.campaign_builder``),
        and the controller looked up in the registry.  The realized
        campaign is kept on ``harness.campaign`` for experiments that need
        its schedule (e.g. its end time).

        Multi-tenant specs (``spec.tenants``) deploy every tenant in order
        onto one shared cluster; each tenant gets the same treatment with
        its own namespaced application, workload, campaign, SLO targets,
        and controller.
        """
        if spec.tenants:
            return cls._from_multi_tenant_spec(spec, request_counter=request_counter)
        harness = cls.build(
            application=spec.application,
            seed=spec.seed,
            scheduler=cls._scheduler_from_spec(spec, SeededRNG(spec.seed)),
            node_specs=cls._node_specs_from_spec(spec),
            request_counter=request_counter,
            telemetry_mode=spec.telemetry_mode,
            observability=spec.observability,
            controller_manager=spec.controller_manager,
        )
        harness.spec = spec
        cls._apply_dispatch_policy(harness, spec)
        if spec.routing is not None:
            harness.cluster.set_routing_policy(spec.routing)
        if spec.replicas:
            cls._apply_replica_overrides(harness.cluster, spec.replicas)
        if spec.pattern is not None:
            harness.attach_workload(pattern=spec.pattern, request_mix=spec.request_mix)
        else:
            harness.attach_workload(load_rps=spec.load_rps, request_mix=spec.request_mix)
        campaign = spec.campaign
        if campaign is None and spec.campaign_builder is not None:
            campaign = spec.campaign_builder(harness)
        if campaign is not None:
            harness.attach_injector(campaign)
        harness.attach_controller(spec.controller, **spec.controller_kwargs)
        if spec.admission is not None:
            harness.attach_admission(spec.admission)
        return harness

    @classmethod
    def _from_multi_tenant_spec(
        cls, spec: ScenarioSpec, request_counter=None
    ) -> "ExperimentHarness":
        engine = SimulationEngine()
        rng = SeededRNG(spec.seed)
        harness = cls(
            None,
            engine,
            rng,
            scheduler=cls._scheduler_from_spec(spec, rng),
            node_specs=cls._node_specs_from_spec(spec),
            request_counter=request_counter,
            telemetry_mode=spec.telemetry_mode,
            observability=spec.observability,
            controller_manager=spec.controller_manager,
        )
        harness.spec = spec
        cls._apply_dispatch_policy(harness, spec)
        if spec.routing is not None:
            harness.cluster.set_routing_policy(spec.routing)
        for tenant_spec in spec.tenants:
            harness.add_tenant(tenant_spec)
        harness.telemetry.start()
        return harness

    @staticmethod
    def _apply_dispatch_policy(harness: "ExperimentHarness", spec: ScenarioSpec) -> None:
        """Install the spec's distributed-dispatch policy (if any).

        ``dispatchers=1`` installs nothing: the classic omniscient router
        keeps running byte-identically.  ``dispatchers >= 2`` sets the
        cluster-wide policy to the requested ``stale_*`` variant; it is
        mutually exclusive with an explicit ``routing`` policy.
        """
        if int(spec.dispatchers) <= 1:
            return
        if spec.routing is not None:
            raise ValueError(
                "dispatchers and routing are mutually exclusive: the "
                "dispatcher set is itself the cluster-wide routing policy"
            )
        if spec.dispatch_variant not in DISPATCH_VARIANTS:
            known = ", ".join(DISPATCH_VARIANTS)
            raise ValueError(
                f"unknown dispatch variant {spec.dispatch_variant!r}; known: {known}"
            )
        harness.cluster.set_routing_policy(
            f"stale_{spec.dispatch_variant}",
            dispatchers=int(spec.dispatchers),
            staleness_s=float(spec.dispatch_staleness_s),
        )

    @staticmethod
    def _scheduler_from_spec(spec: ScenarioSpec, rng: SeededRNG) -> Optional[Scheduler]:
        """A scheduler for the spec (None = the cluster's default spread)."""
        quotas = {
            tenant.name: int(tenant.node_quota)
            for tenant in (spec.tenants or ())
            if tenant.node_quota
        }
        if spec.placement is None and not quotas:
            return None
        policy = (
            PlacementPolicy(spec.placement)
            if spec.placement is not None
            else PlacementPolicy.SPREAD
        )
        return Scheduler(policy, rng=rng, node_quotas=quotas)

    @staticmethod
    def _node_specs_from_spec(spec: ScenarioSpec) -> Optional[List[NodeSpec]]:
        if spec.cluster_nodes is None:
            return None
        x86_nodes, ppc64_nodes = spec.cluster_nodes
        return Cluster.default_node_specs(int(x86_nodes), int(ppc64_nodes))

    # ------------------------------------------------------------ controllers
    def attach_controller(self, name: str, **kwargs) -> Optional[ResourceController]:
        """Attach the controller registered under ``name`` (or an alias).

        Raises ``ValueError`` for names missing from the registry.  The
        ``"none"`` policy detaches any current controller.  A previously
        attached (possibly started) controller is stopped first so its
        control loop cannot keep acting alongside the replacement.  Targets
        the primary tenant; multi-tenant controllers are attached through
        :meth:`add_tenant` (one per tenant, each scoped to its own view).
        """
        return self._attach_controller(self._primary, name, **kwargs)

    def _build_stage_manager(self):
        """A per-tenant ControllerManager sharing the cluster stage cache."""
        return ControllerManager(
            self.engine,
            enabled=self.controller_manager,
            cluster=self.cluster,
            obs=self.obs,
            cluster_cache=self._cluster_stage_cache,
        )

    def _attach_controller(
        self, tenant: TenantRuntime, name: str, **kwargs
    ) -> Optional[ResourceController]:
        controller = create_controller(
            name, tenant.view, tenant.coordinator, tenant.orchestrator, self.engine, **kwargs
        )
        if controller is not None and self.obs is not None:
            controller.obs = self.obs
            controller.obs_source = tenant.display_name
        if controller is not None and tenant.manager is not None:
            binding = StageBinding(
                coordinator=tenant.coordinator,
                view=tenant.view,
                engine=self.engine,
                key=tenant.display_name,
                runtime=tenant,
                source=tenant.display_name,
            )
            controller.bind_stages(tenant.manager.runtime_for(binding))
        if tenant.controller is not None:
            tenant.controller.stop()
        tenant.controller = controller
        tenant.controller_name = name
        tenant.firm = controller if isinstance(controller, FIRMController) else None
        return controller

    def attach_firm(self, config: Optional[FIRMConfig] = None, **kwargs) -> FIRMController:
        """Manage the cluster with FIRM."""
        return self.attach_controller("firm", config=config, **kwargs)

    def attach_kubernetes_autoscaler(self, **kwargs):
        """Manage the cluster with the Kubernetes HPA baseline."""
        return self.attach_controller("k8s", **kwargs)

    def attach_aimd(self, **kwargs):
        """Manage the cluster with the AIMD baseline."""
        return self.attach_controller("aimd", **kwargs)

    # --------------------------------------------------------------- workload
    def attach_workload(
        self,
        pattern: Optional[ArrivalPattern] = None,
        load_rps: float = 100.0,
        request_mix: Optional[Sequence] = None,
    ) -> WorkloadGenerator:
        """Attach an open-loop workload generator (primary tenant)."""
        return self._attach_workload(
            self._primary, pattern=pattern, load_rps=load_rps, request_mix=request_mix
        )

    def _attach_workload(
        self,
        tenant: TenantRuntime,
        pattern: Optional[ArrivalPattern] = None,
        load_rps: float = 100.0,
        request_mix: Optional[Sequence] = None,
    ) -> WorkloadGenerator:
        if pattern is None:
            pattern = ConstantPattern(rate=load_rps)
        tenant.workload = WorkloadGenerator(
            tenant.runtime, self.engine, tenant.rng, pattern=pattern, request_mix=request_mix
        )
        return tenant.workload

    def attach_injector(
        self, campaign: Optional[AnomalyCampaign] = None
    ) -> PerformanceAnomalyInjector:
        """Attach the anomaly injector (optionally pre-loading a campaign)."""
        return self._attach_injector(self._primary, campaign)

    def _attach_injector(
        self, tenant: TenantRuntime, campaign: Optional[AnomalyCampaign] = None
    ) -> PerformanceAnomalyInjector:
        tenant.injector = PerformanceAnomalyInjector(
            tenant.view, self.engine, workload=tenant.workload, obs=self.obs
        )
        tenant.campaign = campaign
        if campaign is not None:
            tenant.injector.schedule_all(campaign.specs)
        return tenant.injector

    # -------------------------------------------------------------- admission
    def attach_admission(self, config) -> Optional[AdmissionGate]:
        """Attach admission control to the primary tenant's runtime.

        ``config`` is a preset name or an
        :class:`~repro.admission.config.AdmissionConfig`; ``None`` (and
        no-op configs, including the ``"none"`` preset) detach any current
        gate, restoring the byte-identical pre-admission fast path.
        """
        return self._attach_admission(self._primary, config)

    def _attach_admission(self, tenant: TenantRuntime, config) -> Optional[AdmissionGate]:
        resolved = resolve_admission_config(config)
        if resolved is None:
            tenant.runtime.admission = None
            return None
        gate = AdmissionGate(tenant.runtime, tenant.rng, resolved, obs=self.obs)
        tenant.runtime.admission = gate
        return gate

    # -------------------------------------------------------------------- run
    def run(
        self,
        duration_s: float = 120.0,
        load_rps: Optional[float] = None,
        sample_period_s: float = 1.0,
        warmup_s: float = 0.0,
    ) -> ExperimentResult:
        """Run the scenario for ``duration_s`` simulated seconds.

        ``warmup_s`` seconds at the start are excluded from SLO accounting
        (the cluster starts empty, so the first requests see cold queues).
        Every tenant's workload, campaign, and controller run concurrently
        on the shared engine; SLO statistics are tracked per tenant and
        merged into the cluster-level result (for single-tenant runs the
        merged view *is* the tenant's, unchanged).  ``load_rps`` applies to
        the primary tenant only (legacy convenience).

        Equivalent to :meth:`begin_run` + one ``advance_to(end_time)`` +
        ``finish()``; the sharded engine uses the session form directly to
        interleave window barriers between advances.
        """
        session = self.begin_run(
            duration_s=duration_s,
            load_rps=load_rps,
            sample_period_s=sample_period_s,
            warmup_s=warmup_s,
        )
        try:
            session.advance_to(session.end_time)
        except BaseException:
            session.abort()
            raise
        return session.finish()

    def begin_run(
        self,
        duration_s: float = 120.0,
        load_rps: Optional[float] = None,
        sample_period_s: float = 1.0,
        warmup_s: float = 0.0,
    ) -> "RunSession":
        """Set a run up (trackers, hooks, sampling, controllers, workloads)
        without executing any events.

        Returns a :class:`RunSession` whose :meth:`RunSession.advance_to`
        drives the engine in increments — the windowed execution mode the
        sharded engine is built on.  The setup call order is exactly the
        prefix :meth:`run` used to execute, so a session advanced straight
        to its end time reproduces ``run()`` byte for byte.
        """
        primary = self._primary
        if primary.workload is None:
            self._attach_workload(
                primary, load_rps=load_rps if load_rps is not None else 100.0
            )
        elif load_rps is not None:
            primary.workload.pattern = ConstantPattern(rate=load_rps)

        start_time = self.engine.now
        end_time = start_time + duration_s
        accounting_start = start_time + warmup_s

        requested_cpu: List[float] = []
        cpu_utilization: List[float] = []
        violation_samples: List[Tuple[float, bool]] = []

        # Per-tenant streaming SLO accounting: observe every trace through
        # the owning tenant's coordinator the moment it finishes.  A trace
        # can fire twice in either order (a downstream drop before the
        # entry span completes, or a background call's rejection after it)
        # — "dropped" is the final word either way, matching the old
        # end-of-run scan of the trace store.
        trackers: List[Tuple[TenantRuntime, SLOTracker, MitigationTracker, List[float]]] = []
        hooks: List[Tuple[TracingCoordinator, object]] = []
        for tenant in self.tenants:
            slo_tracker = SLOTracker(dict(tenant.coordinator.slo_latency_ms))
            mitigation = MitigationTracker()
            tenant_cpu: List[float] = []
            trackers.append((tenant, slo_tracker, mitigation, tenant_cpu))
            latency_hist = completed_counter = dropped_counter = None
            if self.obs is not None:
                label = tenant.display_name
                latency_hist = self.obs.registry.histogram(
                    "request_latency_ms", tenant=label
                )
                completed_counter = self.obs.registry.counter(
                    "requests_total", tenant=label, outcome="completed"
                )
                dropped_counter = self.obs.registry.counter(
                    "requests_total", tenant=label, outcome="dropped"
                )
            hooks.append(
                (
                    tenant.coordinator,
                    self._make_observer(
                        slo_tracker,
                        accounting_start,
                        latency_hist=latency_hist,
                        completed_counter=completed_counter,
                        dropped_counter=dropped_counter,
                    ),
                )
            )

        cluster_mitigation = MitigationTracker() if len(self.tenants) > 1 else None
        per_tenant_cpu = self.is_multi_tenant  # redundant with the cluster-wide
        # sample when there is only the untenanted primary tenant

        obs = self.obs
        # Previous per-tenant violation flags, so the journal records SLO
        # *window* transitions (open/close) rather than every sample.
        prev_violating = [False] * len(trackers)

        def _sample(engine: SimulationEngine) -> None:
            requested_cpu.append(self.cluster.total_requested_cpu())
            cpu_utilization.append(self.cluster.cluster_cpu_utilization())
            any_violating = False
            for i, (tenant, _, mitigation, tenant_cpu) in enumerate(trackers):
                if per_tenant_cpu:
                    tenant_cpu.append(tenant.view.total_requested_cpu())
                violating = tenant.coordinator.has_slo_violation(5.0)
                if obs is not None and violating != prev_violating[i]:
                    prev_violating[i] = violating
                    obs.journal.record(
                        engine.now, "slo_window", tenant.display_name, open=violating
                    )
                any_violating = any_violating or violating
                mitigation.update(engine.now, violating)
            if cluster_mitigation is not None:
                cluster_mitigation.update(engine.now, any_violating)
            violation_samples.append((engine.now, any_violating))

        # Bound the sampling recurrence to this run (and cancel it on exit)
        # so back-to-back run() calls on one harness never double-sample.
        sample_event = self.engine.schedule_recurring(
            sample_period_s, _sample, name="harness-sample", until=end_time
        )
        for coordinator, hook in hooks:
            coordinator.add_completion_hook(hook)
        try:
            for tenant in self.tenants:
                if tenant.controller is not None:
                    tenant.controller.start()
            for tenant in self.tenants:
                if tenant.workload is not None:
                    tenant.workload.start(duration_s=duration_s)
        except BaseException:
            for coordinator, hook in hooks:
                coordinator.remove_completion_hook(hook)
            sample_event.cancel()
            raise

        return RunSession(
            harness=self,
            duration_s=duration_s,
            end_time=end_time,
            trackers=trackers,
            hooks=hooks,
            sample_event=sample_event,
            cluster_mitigation=cluster_mitigation,
            requested_cpu=requested_cpu,
            cpu_utilization=cpu_utilization,
            violation_samples=violation_samples,
        )

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the engine's next live event (None when idle)."""
        return self.engine.next_event_time()

    @staticmethod
    def _make_observer(
        slo_tracker: SLOTracker,
        accounting_start: float,
        latency_hist=None,
        completed_counter=None,
        dropped_counter=None,
    ):
        """A completion hook feeding one tenant's streaming SLO tracker.

        When observability metrics are passed in, each finished request
        also feeds the tenant's ``request_latency_ms`` histogram sketch
        and ``requests_total`` outcome counters.
        """
        outcomes: Dict[str, str] = {}

        def _observe_finished(trace: Trace) -> None:
            if (trace.arrival_time or 0.0) < accounting_start:
                return
            prior = outcomes.get(trace.request_id)
            if prior is None:
                dropped = trace.dropped
                outcomes[trace.request_id] = "dropped" if dropped else "completed"
                slo_tracker.observe(trace)
                if latency_hist is not None:
                    if dropped:
                        dropped_counter.inc()
                    else:
                        completed_counter.inc()
                        latency_hist.observe(trace.end_to_end_latency_ms)
            elif prior == "completed" and trace.dropped:
                outcomes[trace.request_id] = "dropped"
                slo_tracker.reclassify_as_dropped(trace)
                if dropped_counter is not None:
                    dropped_counter.inc()

        return _observe_finished

    def _collect_results(
        self,
        trackers: List[Tuple[TenantRuntime, SLOTracker, MitigationTracker, List[float]]],
        cluster_mitigation: Optional[MitigationTracker],
        duration_s: float,
        requested_cpu: List[float],
        cpu_utilization: List[float],
    ) -> ExperimentResult:
        """Assemble per-tenant results and the merged cluster-level view."""
        tenant_results: Dict[str, TenantResult] = {}
        if self.is_multi_tenant:
            for tenant, slo_tracker, mitigation, tenant_cpu in trackers:
                tenant_results[tenant.display_name] = TenantResult(
                    tenant=tenant.display_name,
                    application=tenant.app.name,
                    controller=tenant.controller_name,
                    slo=slo_tracker,
                    latency=LatencyStats.from_samples(slo_tracker.latencies_ms),
                    mitigation=mitigation,
                    requested_cpu_samples=tenant_cpu,
                    dropped_requests=tenant.runtime.dropped_requests,
                )

        if len(trackers) == 1:
            # Single tenant: the merged view *is* the tenant's (identical
            # objects, identical numbers — the pre-multi-tenant result).
            tenant, slo_tracker, mitigation, _ = trackers[0]
            merged_slo = slo_tracker
            merged_mitigation = mitigation
            application = tenant.app.name
            controller = tenant.controller_name
        else:
            merged_slo = merge_slo_trackers([t[1] for t in trackers])
            merged_mitigation = cluster_mitigation or MitigationTracker()
            application = "+".join(t[0].app.name for t in trackers)
            controller = "+".join(t[0].controller_name for t in trackers)

        result = ExperimentResult(
            application=application,
            controller=controller,
            duration_s=duration_s,
            slo=merged_slo,
            latency=LatencyStats.from_samples(merged_slo.latencies_ms),
            mitigation=merged_mitigation,
            requested_cpu_samples=requested_cpu,
            cluster_cpu_utilization_samples=cpu_utilization,
            dropped_requests=sum(t[0].runtime.dropped_requests for t in trackers),
        )
        if self.is_multi_tenant:
            result.tenant_results = tenant_results
        if self.telemetry_mode == "sketch":
            from repro.telemetry.digest import merge_telemetry_digests

            result.telemetry_digest = merge_telemetry_digests(
                [t[0].coordinator.telemetry_digest() for t in trackers]
            )
        if self.obs is not None:
            result.journal = self.obs.journal.as_dicts()
            result.metrics = self.obs.registry
        gates = {
            t[0].display_name: t[0].runtime.admission
            for t in trackers
            if t[0].runtime.admission is not None
        }
        if gates:
            if self.is_multi_tenant:
                result.admission = {
                    name: gate.snapshot() for name, gate in gates.items()
                }
            else:
                result.admission = next(iter(gates.values())).snapshot()
        return result


class RunSession:
    """An in-flight harness run that can be advanced in time increments.

    Produced by :meth:`ExperimentHarness.begin_run`.  The session owns the
    run's streaming accounting state (SLO trackers, completion hooks, the
    sampling recurrence); :meth:`advance_to` executes events up to a
    virtual-time barrier, and :meth:`finish` closes the accounting and
    assembles the :class:`ExperimentResult`.  Advancing a session straight
    to :attr:`end_time` is byte-identical to
    :meth:`ExperimentHarness.run` — ``run_until(b)`` then ``run_until(e)``
    executes exactly the events ``run_until(e)`` would.

    The sharded engine drives one session per shard, alternating
    ``advance_to`` with cross-shard pressure exchange at window barriers.
    """

    def __init__(
        self,
        harness: ExperimentHarness,
        duration_s: float,
        end_time: float,
        trackers: List[Tuple[TenantRuntime, SLOTracker, MitigationTracker, List[float]]],
        hooks: List[Tuple[TracingCoordinator, object]],
        sample_event,
        cluster_mitigation: Optional[MitigationTracker],
        requested_cpu: List[float],
        cpu_utilization: List[float],
        violation_samples: List[Tuple[float, bool]],
    ) -> None:
        self.harness = harness
        self.duration_s = duration_s
        self.end_time = end_time
        self._trackers = trackers
        self._hooks = hooks
        self._sample_event = sample_event
        self._cluster_mitigation = cluster_mitigation
        self._requested_cpu = requested_cpu
        self._cpu_utilization = cpu_utilization
        #: Per-sample ``(time, any tenant violating)`` flags, recorded so a
        #: sharded run can rebuild the cluster-level mitigation timeline
        #: across shards after the fact.
        self.violation_samples = violation_samples
        self._closed = False

    @property
    def now(self) -> float:
        """Current virtual time of the underlying engine."""
        return self.harness.engine.now

    def advance_to(self, time: float) -> None:
        """Execute events up to virtual time ``time`` (capped at the end)."""
        if self._closed:
            raise RuntimeError("run session is already closed")
        self.harness.engine.run_until(time if time < self.end_time else self.end_time)

    def finish(self) -> ExperimentResult:
        """Close accounting at the current time and assemble the result."""
        if self._closed:
            raise RuntimeError("run session is already closed")
        harness = self.harness
        try:
            for _, _, mitigation, _ in self._trackers:
                mitigation.close(harness.engine.now)
            if self._cluster_mitigation is not None:
                self._cluster_mitigation.close(harness.engine.now)
        finally:
            self._teardown()
        return harness._collect_results(
            self._trackers,
            self._cluster_mitigation,
            duration_s=self.duration_s,
            requested_cpu=self._requested_cpu,
            cpu_utilization=self._cpu_utilization,
        )

    def abort(self) -> None:
        """Tear the run down without collecting results (exception path)."""
        if not self._closed:
            self._teardown()

    def _teardown(self) -> None:
        self._closed = True
        for coordinator, hook in self._hooks:
            coordinator.remove_completion_hook(hook)
        self._sample_event.cancel()


def run_comparison(
    application: str,
    duration_s: float,
    load_rps: float,
    campaign_builder,
    seed: int = 0,
    controllers: Sequence[str] = ("firm", "aimd", "k8s"),
) -> Dict[str, ExperimentResult]:
    """Run the same scenario under each registered controller.

    ``campaign_builder(harness)`` must return an
    :class:`~repro.anomaly.campaigns.AnomalyCampaign` (or None) for the
    freshly built harness, so each controller sees an identical schedule.
    """
    results: Dict[str, ExperimentResult] = {}
    for controller in controllers:
        spec = ScenarioSpec(
            application=application,
            seed=seed,
            duration_s=duration_s,
            load_rps=load_rps,
            controller=controller,
            campaign_builder=campaign_builder,
        )
        results[controller] = run_scenario(spec)
    return results
