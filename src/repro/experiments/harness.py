"""Experiment harness: builds and runs full end-to-end scenarios.

The harness wires together one benchmark application, the simulated
cluster, tracing, telemetry, workload generation, anomaly injection, and a
resource-management controller (FIRM, Kubernetes autoscaling, AIMD, or
none), and runs the scenario for a configured duration while collecting
SLO statistics and mitigation times.  Every per-figure experiment module is
a thin layer over this harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.anomaly.campaigns import AnomalyCampaign
from repro.anomaly.injector import PerformanceAnomalyInjector
from repro.apps.catalog import build_application
from repro.apps.graph import ServiceGraph
from repro.apps.runtime import ApplicationRuntime
from repro.baselines.aimd import AIMDController
from repro.baselines.kubernetes_hpa import KubernetesAutoscaler
from repro.cluster.cluster import Cluster
from repro.cluster.orchestrator import Orchestrator
from repro.cluster.resources import Resource
from repro.cluster.telemetry import TelemetryCollector
from repro.core.firm import FIRMConfig, FIRMController
from repro.metrics.latency import LatencyStats
from repro.metrics.slo import MitigationTracker, SLOTracker
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG
from repro.tracing.coordinator import TracingCoordinator
from repro.workload.generators import WorkloadGenerator
from repro.workload.patterns import ArrivalPattern, ConstantPattern


@dataclass
class ExperimentResult:
    """Aggregate outcome of one harness run."""

    application: str
    controller: str
    duration_s: float
    slo: SLOTracker
    latency: LatencyStats
    mitigation: MitigationTracker
    requested_cpu_samples: List[float] = field(default_factory=list)
    cluster_cpu_utilization_samples: List[float] = field(default_factory=list)
    dropped_requests: int = 0

    @property
    def mean_requested_cpu(self) -> float:
        """Mean total requested CPU limit over the run (Fig. 10(b))."""
        if not self.requested_cpu_samples:
            return 0.0
        return float(sum(self.requested_cpu_samples) / len(self.requested_cpu_samples))

    @property
    def mean_cluster_cpu_utilization(self) -> float:
        """Mean cluster-level CPU utilization over the run."""
        if not self.cluster_cpu_utilization_samples:
            return 0.0
        return float(
            sum(self.cluster_cpu_utilization_samples)
            / len(self.cluster_cpu_utilization_samples)
        )

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports."""
        return {
            "completed": float(self.slo.completed),
            "violations": float(self.slo.violations),
            "violation_rate": self.slo.violation_rate,
            "dropped": float(self.dropped_requests),
            "p50_ms": self.latency.median,
            "p99_ms": self.latency.p99,
            "mean_requested_cpu": self.mean_requested_cpu,
            "mean_mitigation_time_s": self.mitigation.mean_mitigation_time_s(),
        }


class ExperimentHarness:
    """One fully wired scenario: app + cluster + workload + controller."""

    def __init__(
        self,
        app: ServiceGraph,
        engine: SimulationEngine,
        rng: SeededRNG,
    ) -> None:
        self.app = app
        self.engine = engine
        self.rng = rng
        self.cluster = Cluster(engine, rng)
        self.telemetry = TelemetryCollector(self.cluster, engine)
        self.coordinator = TracingCoordinator(engine, telemetry=self.telemetry)
        self.runtime = ApplicationRuntime(app, self.cluster, self.coordinator, engine)
        self.orchestrator = Orchestrator(self.cluster, engine, rng)
        self.workload: Optional[WorkloadGenerator] = None
        self.injector: Optional[PerformanceAnomalyInjector] = None
        self.controller = None
        self.controller_name = "none"
        self.firm: Optional[FIRMController] = None

    # ----------------------------------------------------------------- build
    @classmethod
    def build(cls, application: str = "social_network", seed: int = 0) -> "ExperimentHarness":
        """Build a harness for one of the four benchmark applications."""
        engine = SimulationEngine()
        rng = SeededRNG(seed)
        app = build_application(application)
        harness = cls(app, engine, rng)
        harness.runtime.deploy()
        harness.telemetry.start()
        return harness

    # ------------------------------------------------------------ controllers
    def attach_firm(self, config: Optional[FIRMConfig] = None) -> FIRMController:
        """Manage the cluster with FIRM."""
        self.firm = FIRMController(
            self.cluster,
            self.coordinator,
            self.orchestrator,
            self.engine,
            config=config,
        )
        self.controller = self.firm
        self.controller_name = "firm"
        return self.firm

    def attach_kubernetes_autoscaler(self, **kwargs) -> KubernetesAutoscaler:
        """Manage the cluster with the Kubernetes HPA baseline."""
        self.controller = KubernetesAutoscaler(
            self.cluster, self.coordinator, self.orchestrator, self.engine, **kwargs
        )
        self.controller_name = "k8s"
        return self.controller

    def attach_aimd(self, **kwargs) -> AIMDController:
        """Manage the cluster with the AIMD baseline."""
        self.controller = AIMDController(
            self.cluster, self.coordinator, self.orchestrator, self.engine, **kwargs
        )
        self.controller_name = "aimd"
        return self.controller

    # --------------------------------------------------------------- workload
    def attach_workload(
        self,
        pattern: Optional[ArrivalPattern] = None,
        load_rps: float = 100.0,
        request_mix: Optional[Sequence] = None,
    ) -> WorkloadGenerator:
        """Attach an open-loop workload generator."""
        if pattern is None:
            pattern = ConstantPattern(rate=load_rps)
        self.workload = WorkloadGenerator(
            self.runtime, self.engine, self.rng, pattern=pattern, request_mix=request_mix
        )
        return self.workload

    def attach_injector(
        self, campaign: Optional[AnomalyCampaign] = None
    ) -> PerformanceAnomalyInjector:
        """Attach the anomaly injector (optionally pre-loading a campaign)."""
        self.injector = PerformanceAnomalyInjector(
            self.cluster, self.engine, workload=self.workload
        )
        if campaign is not None:
            self.injector.schedule_all(campaign.specs)
        return self.injector

    # -------------------------------------------------------------------- run
    def run(
        self,
        duration_s: float = 120.0,
        load_rps: Optional[float] = None,
        sample_period_s: float = 1.0,
        warmup_s: float = 0.0,
    ) -> ExperimentResult:
        """Run the scenario for ``duration_s`` simulated seconds.

        ``warmup_s`` seconds at the start are excluded from SLO accounting
        (the cluster starts empty, so the first requests see cold queues).
        """
        if self.workload is None:
            self.attach_workload(load_rps=load_rps if load_rps is not None else 100.0)
        elif load_rps is not None:
            self.workload.pattern = ConstantPattern(rate=load_rps)

        slo_tracker = SLOTracker(dict(self.coordinator.slo_latency_ms))
        mitigation = MitigationTracker()
        requested_cpu: List[float] = []
        cpu_utilization: List[float] = []
        start_time = self.engine.now
        accounting_start = start_time + warmup_s

        def _sample(engine: SimulationEngine) -> None:
            requested_cpu.append(self.cluster.total_requested_cpu())
            cpu_utilization.append(self.cluster.cluster_cpu_utilization())
            violating = self.coordinator.has_slo_violation(5.0)
            mitigation.update(engine.now, violating)

        self.engine.schedule_recurring(sample_period_s, _sample, name="harness-sample")

        if self.controller is not None:
            self.controller.start()
        self.workload.start(duration_s=duration_s)
        self.engine.run_until(start_time + duration_s)
        mitigation.close(self.engine.now)

        for trace in self.coordinator.store.all_traces():
            if (trace.arrival_time or 0.0) < accounting_start:
                continue
            slo_tracker.observe(trace)

        latency = LatencyStats.from_samples(slo_tracker.latencies_ms)
        return ExperimentResult(
            application=self.app.name,
            controller=self.controller_name,
            duration_s=duration_s,
            slo=slo_tracker,
            latency=latency,
            mitigation=mitigation,
            requested_cpu_samples=requested_cpu,
            cluster_cpu_utilization_samples=cpu_utilization,
            dropped_requests=self.runtime.dropped_requests,
        )


def run_comparison(
    application: str,
    duration_s: float,
    load_rps: float,
    campaign_builder,
    seed: int = 0,
    controllers: Sequence[str] = ("firm", "aimd", "k8s"),
) -> Dict[str, ExperimentResult]:
    """Run the same scenario under each controller (plus anomaly campaign).

    ``campaign_builder(harness)`` must return an
    :class:`~repro.anomaly.campaigns.AnomalyCampaign` (or None) for the
    freshly built harness, so each controller sees an identical schedule.
    """
    results: Dict[str, ExperimentResult] = {}
    for controller in controllers:
        harness = ExperimentHarness.build(application=application, seed=seed)
        harness.attach_workload(load_rps=load_rps)
        campaign = campaign_builder(harness) if campaign_builder is not None else None
        harness.attach_injector(campaign)
        if controller == "firm":
            harness.attach_firm()
        elif controller == "aimd":
            harness.attach_aimd()
        elif controller == "k8s":
            harness.attach_kubernetes_autoscaler()
        elif controller != "none":
            raise ValueError(f"unknown controller {controller!r}")
        results[controller] = harness.run(duration_s=duration_s, load_rps=load_rps)
    return results
