"""Table 6 — latency of resource-management operations.

The paper measures the mean and standard deviation of the time taken to
re-partition each resource type (scale up/down) and to start a container
(warm vs. cold).  These latencies lower-bound the SLO-violation duration
any resource manager can achieve.  The experiment samples the actuation
model many times per operation and reports the empirical mean and standard
deviation, which should match the Table 6 values the model was built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.cluster.actuation import ACTUATION_LATENCY, ActuationModel
from repro.sim.rng import SeededRNG


@dataclass
class OperationMeasurement:
    """Empirical latency statistics for one operation."""

    operation: str
    mean_ms: float
    std_ms: float
    samples: int
    paper_mean_ms: float
    paper_std_ms: float

    @property
    def mean_error(self) -> float:
        """Relative error of the measured mean versus the paper's value."""
        if self.paper_mean_ms == 0:
            return 0.0
        return abs(self.mean_ms - self.paper_mean_ms) / self.paper_mean_ms


def run_table6(samples: int = 2000, seed: int = 51) -> Dict[str, OperationMeasurement]:
    """Reproduce Table 6 by sampling every actuation operation."""
    model = ActuationModel(SeededRNG(seed))
    results: Dict[str, OperationMeasurement] = {}
    for operation, spec in ACTUATION_LATENCY.items():
        draws = [model.sample_ms(operation) for _ in range(samples)]
        results[operation] = OperationMeasurement(
            operation=operation,
            mean_ms=float(np.mean(draws)),
            std_ms=float(np.std(draws)),
            samples=samples,
            paper_mean_ms=spec.mean_ms,
            paper_std_ms=spec.std_ms,
        )
    return results


def table6_rows(results: Dict[str, OperationMeasurement]) -> List[Dict[str, float]]:
    """Rows in the paper's layout (operation, mean, SD)."""
    order = [
        "partition_cpu",
        "partition_memory_bandwidth",
        "partition_llc",
        "partition_disk_io",
        "partition_network",
        "container_start_warm",
        "container_start_cold",
    ]
    rows = []
    for operation in order:
        measurement = results[operation]
        rows.append(
            {
                "operation": operation,
                "mean_ms": round(measurement.mean_ms, 1),
                "std_ms": round(measurement.std_ms, 1),
                "paper_mean_ms": measurement.paper_mean_ms,
                "paper_std_ms": measurement.paper_std_ms,
            }
        )
    return rows
