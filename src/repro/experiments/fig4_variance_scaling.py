"""Fig. 4 — scaling the highest-variance service beats the highest-median one.

Insight 2 of the paper: the service with the largest latency on the
critical path is not necessarily the root cause of SLO violations.  In the
Social Network post-compose path, ``composePost`` has the higher median
latency but ``text`` (under contention) has the higher variance; scaling
``text`` improves end-to-end latency much more than scaling
``composePost``.

The experiment injects CPU contention on ``text``, then measures the
end-to-end latency distribution (a) unmodified, (b) after scaling
``composePost`` (highest median) to two replicas, and (c) after scaling
``text`` (highest variance) to two replicas, reproducing both panels of
Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.anomaly.anomalies import AnomalySpec, AnomalyType
from repro.anomaly.campaigns import AnomalyCampaign
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scenario import ScenarioSpec
from repro.metrics.latency import LatencyStats


@dataclass
class Fig4Result:
    """Latency statistics for the three configurations of Fig. 4 (right)."""

    before: LatencyStats
    scale_compose: LatencyStats
    scale_text: LatencyStats
    #: Per-service sojourn-time statistics before scaling (Fig. 4, left).
    text_individual: LatencyStats
    compose_individual: LatencyStats

    @property
    def text_beats_compose(self) -> bool:
        """Whether scaling the high-variance service gives the lower tail latency."""
        return self.scale_text.p99 <= self.scale_compose.p99

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports."""
        return {
            "before_p99_ms": self.before.p99,
            "scale_compose_p99_ms": self.scale_compose.p99,
            "scale_text_p99_ms": self.scale_text.p99,
            "text_individual_std_ms": self.text_individual.std,
            "compose_individual_std_ms": self.compose_individual.std,
            "text_individual_median_ms": self.text_individual.median,
            "compose_individual_median_ms": self.compose_individual.median,
        }


def _run_configuration(
    scale_service: str | None,
    duration_s: float,
    load_rps: float,
    intensity: float,
    seed: int,
) -> ExperimentHarness:
    """Run one configuration (optionally pre-scaling one service to 2 replicas)."""
    campaign = AnomalyCampaign("fig4")
    campaign.add(
        AnomalySpec(
            anomaly_type=AnomalyType.CPU_UTILIZATION,
            target_service="text",
            start_s=5.0,
            duration_s=duration_s - 5.0,
            intensity=intensity,
        )
    )
    spec = ScenarioSpec(
        application="social_network",
        seed=seed,
        duration_s=duration_s,
        load_rps=load_rps,
        request_mix=[("post-compose", 1.0)],
        controller="none",
        campaign=campaign,
    )
    harness = ExperimentHarness.from_spec(spec)
    if scale_service is not None:
        profile = harness.cluster.profile_of(scale_service)
        harness.cluster.deploy_service(profile, replicas=1)
    harness.run(duration_s=duration_s, load_rps=load_rps)
    return harness


def run_fig4(
    duration_s: float = 60.0,
    load_rps: float = 40.0,
    intensity: float = 0.8,
    seed: int = 5,
) -> Fig4Result:
    """Reproduce Fig. 4: before vs scale-composePost vs scale-text."""
    before = _run_configuration(None, duration_s, load_rps, intensity, seed)
    scaled_compose = _run_configuration("composePost", duration_s, load_rps, intensity, seed)
    scaled_text = _run_configuration("text", duration_s, load_rps, intensity, seed)

    def _latencies(harness: ExperimentHarness) -> List[float]:
        return [
            trace.end_to_end_latency_ms
            for trace in harness.coordinator.store.completed_traces("post-compose")
            if (trace.arrival_time or 0.0) >= 10.0
        ]

    per_service = before.coordinator.per_service_latencies_ms(duration_s)
    return Fig4Result(
        before=LatencyStats.from_samples(_latencies(before)),
        scale_compose=LatencyStats.from_samples(_latencies(scaled_compose)),
        scale_text=LatencyStats.from_samples(_latencies(scaled_text)),
        text_individual=LatencyStats.from_samples(per_service.get("text", [])),
        compose_individual=LatencyStats.from_samples(per_service.get("composePost", [])),
    )
