"""Cross-tenant interference experiments (multi-tenant co-location study).

FIRM's motivation is SLO violations caused by microservices *sharing*
cluster resources.  This module studies exactly that regime across
applications: multiple tenants, each a full application with its own
workload, SLOs, and (optionally) controller, co-located on one simulated
cluster so contention flows between them through the shared nodes.

Three scenario presets cover the canonical shapes:

* :func:`aggressor_victim` — a lightly loaded, latency-sensitive victim
  shares nodes with a heavily loaded aggressor (optionally one that also
  triggers resource anomalies on its own services, spilling node pressure
  onto the victim);
* :func:`noisy_neighbor_ramp` — the aggressor's load grows exponentially,
  so the victim's latency degrades progressively as the neighbour gets
  noisier;
* :func:`identical_tenants` — N copies of the same tenant, the symmetric
  consolidation scenario (how many tenants fit before SLOs collapse?).

:func:`run_interference` quantifies interference directly: it runs the
co-located scenario and then each tenant *alone* on an identical cluster,
and reports per-tenant degradation factors (p99 and violation-rate ratios
co-located vs. isolated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Optional, Tuple

from repro.experiments.scenario import (
    ScenarioSpec,
    TenantSpec,
    random_campaign_builder,
    run_scenario,
)
from repro.workload.patterns import ExponentialRampPattern

#: Small-cluster topology (x86, ppc64) that makes co-location contention
#: easy to provoke; the paper-scale 15-node default dilutes two tenants
#: too much for a compact interference study.
DEFAULT_INTERFERENCE_NODES: Tuple[int, int] = (1, 0)


# ---------------------------------------------------------------------------
# Scenario presets
# ---------------------------------------------------------------------------

def aggressor_victim(
    victim_application: str = "hotel_reservation",
    aggressor_application: str = "social_network",
    victim_load_rps: float = 15.0,
    aggressor_load_rps: float = 300.0,
    victim_controller: str = "none",
    aggressor_controller: str = "none",
    victim_slo_scale: float = 1.0,
    aggressor_anomaly_rate_per_s: float = 0.0,
    duration_s: float = 30.0,
    seed: int = 0,
    cluster_nodes: Optional[Tuple[int, int]] = DEFAULT_INTERFERENCE_NODES,
    placement: Optional[str] = None,
) -> ScenarioSpec:
    """A latency-sensitive victim co-located with a heavy aggressor.

    ``aggressor_anomaly_rate_per_s > 0`` additionally injects random
    resource anomalies against the aggressor's services; the injected node
    pressure lands on the shared nodes, so the victim feels it too — the
    classic noisy-neighbour failure mode.
    """
    campaign_builder = None
    if aggressor_anomaly_rate_per_s > 0:
        campaign_builder = partial(
            random_campaign_builder,
            duration_s=duration_s,
            rate_per_s=aggressor_anomaly_rate_per_s,
            resource_only=True,
        )
    return ScenarioSpec(
        seed=seed,
        duration_s=duration_s,
        cluster_nodes=cluster_nodes,
        placement=placement,
        tenants=[
            TenantSpec(
                name="victim",
                application=victim_application,
                load_rps=victim_load_rps,
                controller=victim_controller,
                slo_scale=victim_slo_scale,
            ),
            TenantSpec(
                name="aggressor",
                application=aggressor_application,
                load_rps=aggressor_load_rps,
                controller=aggressor_controller,
                campaign_builder=campaign_builder,
            ),
        ],
    )


def noisy_neighbor_ramp(
    victim_application: str = "hotel_reservation",
    aggressor_application: str = "social_network",
    victim_load_rps: float = 15.0,
    aggressor_initial_rps: float = 20.0,
    aggressor_growth_per_s: float = 0.1,
    aggressor_max_rps: float = 500.0,
    victim_controller: str = "none",
    duration_s: float = 40.0,
    seed: int = 0,
    cluster_nodes: Optional[Tuple[int, int]] = DEFAULT_INTERFERENCE_NODES,
    placement: Optional[str] = None,
) -> ScenarioSpec:
    """A victim sharing nodes with an exponentially ramping aggressor."""
    return ScenarioSpec(
        seed=seed,
        duration_s=duration_s,
        cluster_nodes=cluster_nodes,
        placement=placement,
        tenants=[
            TenantSpec(
                name="victim",
                application=victim_application,
                load_rps=victim_load_rps,
                controller=victim_controller,
            ),
            TenantSpec(
                name="aggressor",
                application=aggressor_application,
                pattern=ExponentialRampPattern(
                    initial_rate=aggressor_initial_rps,
                    growth_per_s=aggressor_growth_per_s,
                    max_rate=aggressor_max_rps,
                ),
            ),
        ],
    )


def identical_tenants(
    count: int,
    application: str = "hotel_reservation",
    load_rps: float = 25.0,
    controller: str = "none",
    duration_s: float = 30.0,
    seed: int = 0,
    cluster_nodes: Optional[Tuple[int, int]] = DEFAULT_INTERFERENCE_NODES,
    placement: Optional[str] = None,
    node_quota: Optional[int] = None,
    anomaly_rate_per_s: float = 0.0,
) -> ScenarioSpec:
    """N identical tenants co-located on one cluster (consolidation study).

    ``anomaly_rate_per_s > 0`` gives every tenant its own seed-derived
    random resource-anomaly campaign (each tenant's RNG family is
    independent, so campaigns differ between tenants but are reproducible).
    """
    if count < 1:
        raise ValueError("identical_tenants needs at least one tenant")
    campaign_builder = None
    if anomaly_rate_per_s > 0:
        campaign_builder = partial(
            random_campaign_builder,
            duration_s=duration_s,
            rate_per_s=anomaly_rate_per_s,
            resource_only=True,
        )
    return ScenarioSpec(
        seed=seed,
        duration_s=duration_s,
        cluster_nodes=cluster_nodes,
        placement=placement,
        tenants=[
            TenantSpec(
                name=f"t{index}",
                application=application,
                load_rps=load_rps,
                controller=controller,
                node_quota=node_quota,
                campaign_builder=campaign_builder,
            )
            for index in range(count)
        ],
    )


PRESETS = {
    "aggressor_victim": aggressor_victim,
    "noisy_neighbor_ramp": noisy_neighbor_ramp,
    "identical_tenants": identical_tenants,
}


# ---------------------------------------------------------------------------
# The interference experiment
# ---------------------------------------------------------------------------

@dataclass
class TenantInterference:
    """Co-located vs. isolated numbers for one tenant."""

    tenant: str
    colocated: Dict[str, float] = field(default_factory=dict)
    isolated: Dict[str, float] = field(default_factory=dict)

    @property
    def p99_factor(self) -> float:
        """Tail-latency degradation: co-located p99 / isolated p99."""
        isolated = self.isolated.get("p99_ms", 0.0)
        if isolated <= 0:
            return 1.0
        return self.colocated.get("p99_ms", 0.0) / isolated

    @property
    def violation_increase(self) -> float:
        """Extra SLO violations (incl. drops) caused by co-location."""
        co = self.colocated.get("violations", 0.0) + self.colocated.get("dropped", 0.0)
        alone = self.isolated.get("violations", 0.0) + self.isolated.get("dropped", 0.0)
        return co - alone

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "p99_factor": self.p99_factor,
            "violation_increase": self.violation_increase,
            "colocated": self.colocated,
            "isolated": self.isolated,
        }


@dataclass
class InterferenceResult:
    """Outcome of one interference experiment."""

    scenario_id: str
    merged_summary: Dict[str, float] = field(default_factory=dict)
    tenants: Dict[str, TenantInterference] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario_id": self.scenario_id,
            "merged": self.merged_summary,
            "tenants": {name: t.as_dict() for name, t in self.tenants.items()},
        }


def run_interference(
    spec: Optional[ScenarioSpec] = None,
    preset: str = "aggressor_victim",
    telemetry_mode: Optional[str] = None,
    **preset_kwargs,
) -> InterferenceResult:
    """Quantify cross-tenant interference for a multi-tenant scenario.

    Runs the co-located scenario, then re-runs each tenant *alone* on an
    identically sized cluster with the same seed, and reports per-tenant
    degradation.  Either pass a multi-tenant ``spec`` directly or name a
    preset (see :data:`PRESETS`) plus its keyword arguments.  An explicit
    ``telemetry_mode`` (``"sketch"``/``"raw"``) overrides the spec's
    telemetry pipeline mode.
    """
    if spec is None:
        try:
            builder = PRESETS[preset]
        except KeyError:
            known = ", ".join(sorted(PRESETS))
            raise ValueError(f"unknown interference preset {preset!r}; known: {known}")
        spec = builder(**preset_kwargs)
    if telemetry_mode is not None:
        spec = spec.with_overrides(telemetry_mode=telemetry_mode)
    if not spec.tenants:
        raise ValueError("run_interference needs a multi-tenant scenario spec")

    colocated = run_scenario(spec)
    result = InterferenceResult(
        scenario_id=spec.scenario_id, merged_summary=colocated.summary()
    )
    for tenant_spec in spec.tenants:
        solo = run_scenario(spec.with_overrides(tenants=[tenant_spec]))
        solo_result = solo.tenant_results[tenant_spec.name]
        co_result = colocated.tenant_results[tenant_spec.name]
        result.tenants[tenant_spec.name] = TenantInterference(
            tenant=tenant_spec.name,
            colocated=co_result.summary(),
            isolated=solo_result.summary(),
        )
    return result
