"""Experiment harnesses reproducing the paper's tables and figures.

Each module regenerates one table or figure from the evaluation; the
per-experiment index in ``DESIGN.md`` maps paper artefacts to modules and
benchmark targets.  Scenarios are described by
:class:`~repro.experiments.scenario.ScenarioSpec` and grids of them run —
serially or across worker processes — through
:mod:`repro.experiments.sweep`.
"""

from repro.experiments.harness import (
    ExperimentHarness,
    ExperimentResult,
    TenantResult,
    TenantRuntime,
)
from repro.experiments.resilience import (
    ResilienceCase,
    ResilienceOutcome,
    resilience_sweep_grid,
    run_resilience,
    run_resilience_sweep,
)
from repro.experiments.scenario import ScenarioSpec, TenantSpec, run_scenario

__all__ = [
    "ExperimentHarness",
    "ExperimentResult",
    "ResilienceCase",
    "ResilienceOutcome",
    "TenantResult",
    "TenantRuntime",
    "ScenarioSpec",
    "TenantSpec",
    "run_scenario",
    "resilience_sweep_grid",
    "run_resilience",
    "run_resilience_sweep",
]
