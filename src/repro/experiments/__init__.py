"""Experiment harnesses reproducing the paper's tables and figures.

Each module regenerates one table or figure from the evaluation; the
per-experiment index in ``DESIGN.md`` maps paper artefacts to modules and
benchmark targets.
"""

from repro.experiments.harness import ExperimentHarness, ExperimentResult

__all__ = ["ExperimentHarness", "ExperimentResult"]
