"""Routing-policy comparison experiments.

The routing subsystem (:mod:`repro.routing`) makes "where requests land"
an experimental axis next to "how replicas are sized".  This module
compares load-balancing policies under the two regimes where routing is
known to move tail latency by integer factors (cf. the Distributed
Join-the-Idle-Queue work in PAPERS.md):

* :func:`routing_anomaly_spec` — one application under a random anomaly
  campaign, with a controller scaling replicas out while the balancer
  spreads (or fails to spread) load across the changing replica set;
* :func:`routing_interference_spec` — the ``aggressor_victim``
  noisy-neighbour preset with every tenant routed by the policy under
  test, so the victim's tail directly reflects routing quality under
  cross-tenant contention.

:func:`run_routing` runs one of those scenario shapes once per policy —
identical seed, workload, campaign, and controller, so the routing policy
is the *only* difference — and reports per-policy headline numbers plus
the spread between the best and worst tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Optional, Sequence, Tuple

from repro.apps.catalog import build_application
from repro.experiments.interference import aggressor_victim
from repro.experiments.scenario import (
    ScenarioSpec,
    random_campaign_builder,
    run_scenario,
)
from repro.routing.base import resolve_policy_name

#: The default policy set compared by the routing experiments.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "least_in_flight",
    "round_robin",
    "random",
    "power_of_two_choices",
    "ewma_latency",
    "join_the_idle_queue",
)

#: The scenario shapes :func:`run_routing` knows how to build.
ROUTING_PRESETS = ("anomaly", "interference")


# ---------------------------------------------------------------------------
# Scenario builders
# ---------------------------------------------------------------------------

def replicated_services(application: str, replicas: int) -> Dict[str, int]:
    """A replica-override dict giving every service ``replicas`` replicas.

    Routing policies only differ where a replica set offers a choice, so
    the routing presets replicate *every* service of the application —
    each hop of each request then has somewhere else to go when its
    replica's node degrades.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    return {service: int(replicas) for service in build_application(application).services}


def routing_anomaly_spec(
    policy: str,
    application: str = "hotel_reservation",
    controller: str = "none",
    load_rps: float = 40.0,
    duration_s: float = 40.0,
    seed: int = 0,
    anomaly_rate_per_s: float = 0.3,
    replicas_per_service: int = 3,
) -> ScenarioSpec:
    """One replicated application under an anomaly campaign, routed by ``policy``.

    Resource anomalies press on the nodes hosting the targeted services,
    so replicas of one service run at very different speeds while the
    campaign is active — load-aware policies route around the impaired
    nodes, load-blind ones keep feeding them.  An optional controller
    scales the replica sets at the same time.
    """
    campaign_builder = None
    if anomaly_rate_per_s > 0:
        campaign_builder = partial(
            random_campaign_builder,
            duration_s=duration_s,
            rate_per_s=anomaly_rate_per_s,
            resource_only=True,
        )
    return ScenarioSpec(
        application=application,
        seed=seed,
        duration_s=duration_s,
        load_rps=load_rps,
        controller=controller,
        campaign_builder=campaign_builder,
        routing=resolve_policy_name(policy),
        replicas=replicated_services(application, replicas_per_service),
    )


def routing_interference_spec(
    policy: str,
    victim_application: str = "hotel_reservation",
    aggressor_application: str = "social_network",
    victim_load_rps: float = 30.0,
    aggressor_load_rps: float = 150.0,
    victim_controller: str = "none",
    aggressor_anomaly_rate_per_s: float = 0.4,
    victim_replicas_per_service: int = 3,
    duration_s: float = 40.0,
    seed: int = 0,
    cluster_nodes: Tuple[int, int] = (4, 0),
) -> ScenarioSpec:
    """The ``aggressor_victim`` preset with cluster-wide ``policy`` routing.

    The victim's services are replicated across a small multi-node
    cluster and the aggressor triggers resource anomalies against its own
    services, so node pressure is *asymmetric*: at any moment some of the
    victim's replicas sit on impaired nodes and some do not.  Which
    replicas the victim's spans land on — the routing policy — then
    directly sets the victim's tail latency (integer-factor P99 gaps
    between load-aware and load-blind policies at these defaults).
    """
    spec = aggressor_victim(
        victim_application=victim_application,
        aggressor_application=aggressor_application,
        victim_load_rps=victim_load_rps,
        aggressor_load_rps=aggressor_load_rps,
        victim_controller=victim_controller,
        aggressor_anomaly_rate_per_s=aggressor_anomaly_rate_per_s,
        duration_s=duration_s,
        seed=seed,
        cluster_nodes=cluster_nodes,
    )
    victim = spec.tenants[0]
    if victim_replicas_per_service > 1:
        victim = victim.with_overrides(
            replicas=replicated_services(victim_application, victim_replicas_per_service)
        )
    return spec.with_overrides(
        routing=resolve_policy_name(policy), tenants=[victim, spec.tenants[1]]
    )


# ---------------------------------------------------------------------------
# The routing comparison experiment
# ---------------------------------------------------------------------------

@dataclass
class RoutingComparisonResult:
    """Per-policy outcomes of one routing comparison."""

    preset: str
    #: Merged headline numbers per policy (policy name -> summary dict).
    policies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-tenant breakdown per policy (empty for single-tenant presets).
    tenants: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def p99_by_policy(self, tenant: Optional[str] = None) -> Dict[str, float]:
        """P99 latency (ms) per policy, optionally for one tenant."""
        if tenant is None:
            return {name: summary["p99_ms"] for name, summary in self.policies.items()}
        return {
            name: breakdown[tenant]["p99_ms"]
            for name, breakdown in self.tenants.items()
            if tenant in breakdown
        }

    def p99_spread(self, tenant: Optional[str] = None) -> float:
        """Worst-policy P99 divided by best-policy P99 (1.0 = no spread)."""
        values = [v for v in self.p99_by_policy(tenant).values() if v > 0]
        if not values:
            return 1.0
        return max(values) / min(values)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "preset": self.preset,
            "p99_spread": self.p99_spread(),
            "policies": dict(self.policies),
        }
        if self.tenants:
            payload["victim_p99_spread"] = self.p99_spread("victim")
            payload["tenants"] = {
                name: dict(breakdown) for name, breakdown in self.tenants.items()
            }
        return payload


def run_routing(
    preset: str = "interference",
    policies: Sequence[str] = DEFAULT_POLICIES,
    seed: int = 0,
    duration_s: Optional[float] = None,
    **preset_kwargs,
) -> RoutingComparisonResult:
    """Compare routing policies on one scenario shape.

    ``preset`` is ``"anomaly"`` (single tenant + campaign + controller) or
    ``"interference"`` (the aggressor/victim co-location).  Every policy
    sees the identical scenario — same seed, arrivals, service times, and
    campaign, all drawn from substreams untouched by routing draws — so
    differences in the reported numbers are attributable to routing alone.
    """
    if preset not in ROUTING_PRESETS:
        known = ", ".join(ROUTING_PRESETS)
        raise ValueError(f"unknown routing preset {preset!r}; known: {known}")
    builders = {
        "anomaly": routing_anomaly_spec,
        "interference": routing_interference_spec,
    }
    builder = builders[preset]
    if duration_s is not None:
        preset_kwargs["duration_s"] = duration_s

    # Resolve (and dedupe — aliases collapse to one canonical name) every
    # policy up front, so a typo fails before any scenario is simulated.
    names: list = []
    for policy in policies:
        name = resolve_policy_name(policy)
        if name not in names:
            names.append(name)

    result = RoutingComparisonResult(preset=preset)
    for name in names:
        outcome = run_scenario(builder(name, seed=seed, **preset_kwargs))
        result.policies[name] = outcome.summary()
        per_tenant = outcome.per_tenant_summary()
        if per_tenant:
            result.tenants[name] = per_tenant
    return result
