"""Fig. 10 — end-to-end performance: FIRM vs AIMD vs Kubernetes autoscaling.

Three CDF panels over a DeathStarBench validation run with continuous
random anomaly injection:

* (a) end-to-end latency — FIRM's tail is up to 6.9x/11.5x lower, i.e.
  9.8x/16.7x fewer SLO violations than AIMD / K8s autoscaling;
* (b) requested CPU limit — FIRM lowers the total requested CPU by
  29.1-62.3%;
* (c) dropped requests — FIRM reduces drops by up to 8.6x.

FIRM is evaluated both with a single shared agent (one-for-all) and with
per-microservice agents (one-for-each); the paper finds the two perform
equally, which the experiment also reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.experiments.scenario import ScenarioSpec, random_campaign_builder, run_scenario
from repro.metrics.latency import cdf_points


@dataclass
class Fig10Result:
    """Per-controller results for the Fig. 10 comparison."""

    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    def latency_cdfs(self, points: int = 50) -> Dict[str, List]:
        """CDF of end-to-end latency per controller (panel (a))."""
        return {
            name: cdf_points(result.slo.latencies_ms, points)
            for name, result in self.results.items()
        }

    def requested_cpu(self) -> Dict[str, float]:
        """Mean requested CPU limit per controller (panel (b))."""
        return {name: result.mean_requested_cpu for name, result in self.results.items()}

    def dropped(self) -> Dict[str, int]:
        """Dropped request counts per controller (panel (c))."""
        return {name: result.dropped_requests for name, result in self.results.items()}

    def violation_counts(self) -> Dict[str, int]:
        """SLO-violation counts per controller (dropped requests included)."""
        return {
            name: result.slo.violations_including_drops
            for name, result in self.results.items()
        }

    def improvement_over(self, baseline: str, firm_key: str = "firm_single") -> Dict[str, float]:
        """FIRM's improvement factors over one baseline (violations, p99, drops)."""
        firm = self.results[firm_key]
        other = self.results[baseline]

        def _ratio(a: float, b: float) -> float:
            return a / b if b > 0 else float("inf") if a > 0 else 1.0

        return {
            # Laplace-smoothed so that two near-zero counts compare as ~1x
            # instead of 0x / infinity.
            "violation_factor": _ratio(
                other.slo.violations_including_drops + 1,
                firm.slo.violations_including_drops + 1,
            ),
            "p99_factor": _ratio(other.latency.p99, max(firm.latency.p99, 1e-9)),
            "requested_cpu_reduction": 1.0
            - _ratio(firm.mean_requested_cpu, max(other.mean_requested_cpu, 1e-9)),
            "dropped_factor": _ratio(other.dropped_requests, max(firm.dropped_requests, 1)),
        }


def run_fig10(
    application: str = "social_network",
    duration_s: float = 120.0,
    load_rps: float = 60.0,
    anomaly_rate_per_s: float = 0.33,
    min_intensity: float = 0.7,
    seed: int = 31,
    include_multi_rl: bool = True,
    controllers: Optional[Sequence[str]] = None,
) -> Fig10Result:
    """Reproduce the Fig. 10 comparison on one application.

    Each controller sees an identically seeded workload and anomaly
    campaign.  ``firm_single`` is the one-for-all agent; ``firm_multi`` the
    one-for-each (transfer-learning) variant.
    """
    if controllers is None:
        controllers = ["k8s", "aimd", "firm_single"]
        if include_multi_rl:
            controllers.append("firm_multi")

    result = Fig10Result()
    for controller in controllers:
        spec = ScenarioSpec(
            application=application,
            seed=seed,
            duration_s=duration_s,
            load_rps=load_rps,
            controller=controller,
            campaign_builder=partial(
                random_campaign_builder,
                duration_s=duration_s,
                rate_per_s=anomaly_rate_per_s,
                min_intensity=min_intensity,
                resource_only=True,
            ),
        )
        result.results[controller] = run_scenario(spec)
    return result
