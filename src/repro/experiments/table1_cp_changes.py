"""Table 1 — critical path changes under performance anomaly injection.

The paper injects anomalies into three services of the Social Network
post-compose path (video ``V``, userTag ``U``, text ``T``) and shows that
the critical path shifts to whichever service is under contention, with the
per-service and end-to-end latencies changing accordingly (up to 1.6x
variation in end-to-end latency across the three cases).

The experiment reproduces the three ``<service, CP>`` cases: one run per
targeted service, reporting the mean per-service latency on the extracted
CPs and the mean end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.anomaly.anomalies import AnomalySpec, AnomalyType
from repro.anomaly.campaigns import AnomalyCampaign
from repro.core.critical_path import CriticalPathExtractor
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scenario import ScenarioSpec

#: The paper's Table 1 service columns (short label -> service name).
TABLE1_SERVICES: Dict[str, str] = {
    "N": "nginx",
    "V": "video",
    "U": "userTag",
    "I": "uniqueID",
    "T": "text",
    "C": "composePost",
}

#: The three injection cases of Table 1 (target short label).
TABLE1_CASES = ("V", "U", "T")


@dataclass
class Table1Row:
    """One row of Table 1: per-service latencies plus the total."""

    case: str
    target_service: str
    per_service_latency_ms: Dict[str, float]
    total_latency_ms: float
    cp_services: List[str] = field(default_factory=list)

    def dominant_service(self) -> str:
        """Short label of the service with the highest latency in this row."""
        return max(self.per_service_latency_ms, key=lambda k: self.per_service_latency_ms[k])


def run_table1_case(
    target_label: str,
    duration_s: float = 60.0,
    load_rps: float = 40.0,
    intensity: float = 0.85,
    seed: int = 3,
) -> Table1Row:
    """Run one ``<service, CP>`` case of Table 1."""
    if target_label not in TABLE1_SERVICES:
        raise KeyError(f"unknown Table 1 service label {target_label!r}")
    target_service = TABLE1_SERVICES[target_label]
    campaign = AnomalyCampaign(f"table1:{target_label}")
    anomaly_type = (
        AnomalyType.CPU_UTILIZATION
        if target_label in ("U", "T", "C")
        else AnomalyType.MEMORY_BANDWIDTH
    )
    campaign.add(
        AnomalySpec(
            anomaly_type=anomaly_type,
            target_service=target_service,
            start_s=10.0,
            duration_s=duration_s - 10.0,
            intensity=intensity,
        )
    )
    harness = ExperimentHarness.from_spec(
        ScenarioSpec(
            application="social_network",
            seed=seed,
            duration_s=duration_s,
            load_rps=load_rps,
            request_mix=[("post-compose", 1.0)],
            controller="none",
            campaign=campaign,
        )
    )
    harness.run(duration_s=duration_s, load_rps=load_rps)

    extractor = CriticalPathExtractor()
    traces = [
        trace
        for trace in harness.coordinator.store.completed_traces("post-compose")
        if (trace.arrival_time or 0.0) >= 15.0
    ]
    paths = extractor.extract_all(traces)

    per_service: Dict[str, List[float]] = {label: [] for label in TABLE1_SERVICES}
    totals: List[float] = []
    cp_service_names: List[str] = []
    for trace, path in zip(traces, paths):
        totals.append(trace.end_to_end_latency_ms)
        for label, service in TABLE1_SERVICES.items():
            per_service[label].append(trace.latency_of_service(service))
        for service in path.services:
            if service not in cp_service_names:
                cp_service_names.append(service)

    row = Table1Row(
        case=f"<{target_label},CP>",
        target_service=target_service,
        per_service_latency_ms={
            label: float(np.mean(samples)) if samples else 0.0
            for label, samples in per_service.items()
        },
        total_latency_ms=float(np.mean(totals)) if totals else 0.0,
        cp_services=cp_service_names,
    )
    return row


def run_table1(
    duration_s: float = 60.0,
    load_rps: float = 40.0,
    intensity: float = 0.85,
    seed: int = 3,
) -> List[Table1Row]:
    """Reproduce all three Table 1 rows."""
    return [
        run_table1_case(
            label, duration_s=duration_s, load_rps=load_rps, intensity=intensity, seed=seed
        )
        for label in TABLE1_CASES
    ]
