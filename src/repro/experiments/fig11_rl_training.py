"""Fig. 11 — RL training behaviour and SLO-violation mitigation time.

Panel (a): learning curves (moving-average total episode reward) for three
agent variants trained on Train-Ticket — one-for-all (shared), one-for-each
(per-service), and transfer-learning-bootstrapped — where transfer
converges fastest and one-for-all needs the most episodes.

Panel (b): SLO mitigation time of checkpointed policies versus training
episode, converging to ~1.7 s for FIRM and beating the AIMD and Kubernetes
baselines (9.6x and 30.1x in the paper).

Training here runs episodes against the simulated cluster: every episode
injects one random anomaly against the application, the agent acts each
control interval on the localized culprit, and the episode's total reward
and time-to-mitigation are recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.anomaly.anomalies import ANOMALY_TYPES, AnomalySpec, AnomalyType
from repro.anomaly.campaigns import AnomalyCampaign
from repro.core.firm import FIRMConfig
from repro.core.rl.ddpg import DDPGAgent, DDPGConfig
from repro.core.rl.transfer import transfer_agent
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scenario import ScenarioSpec, run_scenario
from repro.sim.rng import SeededRNG


@dataclass
class EpisodeOutcome:
    """Result of one training episode."""

    episode: int
    total_reward: float
    mitigation_time_s: float
    violations: int


@dataclass
class TrainingCurve:
    """Learning curve for one agent variant."""

    variant: str
    episodes: List[EpisodeOutcome] = field(default_factory=list)

    def rewards(self) -> List[float]:
        return [outcome.total_reward for outcome in self.episodes]

    def moving_average_reward(self, window: int = 5) -> List[float]:
        """Moving average of episode rewards (what Fig. 11(a) plots)."""
        rewards = self.rewards()
        if not rewards:
            return []
        averaged = []
        for index in range(len(rewards)):
            start = max(0, index - window + 1)
            averaged.append(float(np.mean(rewards[start : index + 1])))
        return averaged

    def mitigation_times(self) -> List[float]:
        return [outcome.mitigation_time_s for outcome in self.episodes]

    def final_mitigation_time(self, tail: int = 3) -> float:
        """Mean mitigation time over the last ``tail`` episodes."""
        times = self.mitigation_times()[-tail:]
        return float(np.mean(times)) if times else 0.0

    def improved(self) -> bool:
        """Whether the late-training reward beats the early-training reward."""
        rewards = self.rewards()
        if len(rewards) < 4:
            return False
        half = len(rewards) // 2
        return float(np.mean(rewards[half:])) >= float(np.mean(rewards[:half]))


def _training_episode(
    agent: DDPGAgent,
    application: str,
    episode_index: int,
    rng: SeededRNG,
    load_rps: float,
    episode_duration_s: float,
    per_service: bool,
) -> EpisodeOutcome:
    """Run one training episode: one anomaly, FIRM mitigating with ``agent``."""
    from repro.apps.catalog import build_application

    services = build_application(application).service_names()
    target = services[rng.integers("episode-target", 0, len(services))]
    anomaly_types = [a for a in ANOMALY_TYPES if a is not AnomalyType.WORKLOAD_VARIATION]
    anomaly_type = anomaly_types[rng.integers("episode-type", 0, len(anomaly_types))]
    intensity = rng.uniform("episode-intensity", 0.7, 1.0)
    anomaly_start = 10.0
    campaign = AnomalyCampaign(f"episode-{episode_index}")
    campaign.add(
        AnomalySpec(
            anomaly_type=anomaly_type,
            target_service=target,
            start_s=anomaly_start,
            duration_s=episode_duration_s - anomaly_start,
            intensity=intensity,
        )
    )

    config = FIRMConfig(
        control_interval_s=2.0,
        window_s=5.0,
        per_service_agents=per_service,
        train_online=True,
    )
    spec = ScenarioSpec(
        application=application,
        seed=rng.integers("episode-seed", 0, 2**31),
        duration_s=episode_duration_s,
        load_rps=load_rps,
        controller="firm",
        controller_kwargs={"config": config, "shared_agent": agent},
        campaign=campaign,
    )
    harness = ExperimentHarness.from_spec(spec)
    controller = harness.controller
    agent.begin_episode()

    result = harness.run(duration_s=episode_duration_s, load_rps=load_rps)

    # Total reward: sum of the environment rewards observed by the controller.
    # The controller stores rewards through the replay buffer; approximate the
    # episode reward by the reward of the final state of each managed env.
    total_reward = 0.0
    for env in controller._environments.values():  # noqa: SLF001 - experiment introspection
        total_reward += env.reward(is_culprit=True)
    # Scale by the number of control rounds so longer successful episodes score higher.
    total_reward *= max(1, len(controller.rounds))

    mitigation_times = result.mitigation.mitigation_times_s()
    mitigation = float(np.mean(mitigation_times)) if mitigation_times else (
        episode_duration_s - anomaly_start if result.slo.violations else 0.0
    )
    return EpisodeOutcome(
        episode=episode_index,
        total_reward=total_reward,
        mitigation_time_s=mitigation,
        violations=result.slo.violations,
    )


def train_variant(
    variant: str,
    episodes: int = 10,
    application: str = "train_ticket",
    load_rps: float = 40.0,
    episode_duration_s: float = 40.0,
    seed: int = 41,
    base_agent: Optional[DDPGAgent] = None,
) -> TrainingCurve:
    """Train one agent variant and return its learning curve.

    Variants: ``one_for_all`` (shared agent), ``one_for_each`` (per-service
    agents trained from scratch), ``transferred`` (per-service agents
    bootstrapped from ``base_agent``).
    """
    rng = SeededRNG(seed)
    if variant == "transferred":
        if base_agent is None:
            base_agent = DDPGAgent(DDPGConfig(seed=seed))
        agent = transfer_agent(base_agent)
    else:
        agent = DDPGAgent(DDPGConfig(seed=seed))
    per_service = variant in ("one_for_each", "transferred")

    curve = TrainingCurve(variant=variant)
    for episode_index in range(episodes):
        outcome = _training_episode(
            agent,
            application,
            episode_index,
            rng.spawn(f"episode-{episode_index}"),
            load_rps,
            episode_duration_s,
            per_service,
        )
        curve.episodes.append(outcome)
    return curve


def run_fig11a(
    episodes: int = 8,
    application: str = "train_ticket",
    seed: int = 41,
    **kwargs,
) -> Dict[str, TrainingCurve]:
    """Reproduce Fig. 11(a): learning curves for the three agent variants."""
    one_for_all = train_variant(
        "one_for_all", episodes=episodes, application=application, seed=seed, **kwargs
    )
    one_for_each = train_variant(
        "one_for_each", episodes=episodes, application=application, seed=seed + 1, **kwargs
    )
    # The transferred variant bootstraps from the trained one-for-all agent.
    base_agent = DDPGAgent(DDPGConfig(seed=seed))
    transferred = train_variant(
        "transferred",
        episodes=episodes,
        application=application,
        seed=seed + 2,
        base_agent=base_agent,
        **kwargs,
    )
    return {
        "one_for_all": one_for_all,
        "one_for_each": one_for_each,
        "transferred": transferred,
    }


@dataclass
class MitigationComparison:
    """Fig. 11(b): mitigation times of FIRM checkpoints vs the baselines."""

    firm_by_episode: List[float]
    aimd_mitigation_s: float
    k8s_mitigation_s: float

    def firm_final(self) -> float:
        """FIRM's converged mitigation time (last checkpoint)."""
        return self.firm_by_episode[-1] if self.firm_by_episode else 0.0

    def speedup_vs_aimd(self) -> float:
        final = self.firm_final()
        return self.aimd_mitigation_s / final if final > 0 else float("inf")

    def speedup_vs_k8s(self) -> float:
        final = self.firm_final()
        return self.k8s_mitigation_s / final if final > 0 else float("inf")


def _baseline_mitigation(
    controller: str,
    application: str,
    load_rps: float,
    duration_s: float,
    seed: int,
) -> float:
    """Measure a baseline's mean SLO mitigation time under a single anomaly."""
    from repro.apps.catalog import build_application

    campaign = AnomalyCampaign("baseline-mitigation")
    campaign.add(
        AnomalySpec(
            anomaly_type=AnomalyType.CPU_UTILIZATION,
            target_service=build_application(application).service_names()[0],
            start_s=10.0,
            duration_s=duration_s - 10.0,
            intensity=0.9,
        )
    )
    spec = ScenarioSpec(
        application=application,
        seed=seed,
        duration_s=duration_s,
        load_rps=load_rps,
        controller=controller,
        campaign=campaign,
    )
    result = run_scenario(spec)
    times = result.mitigation.mitigation_times_s()
    return float(np.mean(times)) if times else duration_s - 10.0


def run_fig11b(
    curve: Optional[TrainingCurve] = None,
    episodes: int = 6,
    application: str = "train_ticket",
    load_rps: float = 40.0,
    duration_s: float = 40.0,
    seed: int = 43,
) -> MitigationComparison:
    """Reproduce Fig. 11(b): mitigation time vs training, plus baselines."""
    if curve is None:
        curve = train_variant(
            "one_for_all",
            episodes=episodes,
            application=application,
            load_rps=load_rps,
            episode_duration_s=duration_s,
            seed=seed,
        )
    aimd = _baseline_mitigation("aimd", application, load_rps, duration_s, seed)
    k8s = _baseline_mitigation("k8s", application, load_rps, duration_s, seed)
    return MitigationComparison(
        firm_by_episode=curve.mitigation_times(),
        aimd_mitigation_s=aimd,
        k8s_mitigation_s=k8s,
    )
