"""Metastable-failure scenarios: transient anomalies meeting retry storms.

A *metastable failure* (Bronson et al., HotOS'21) is a self-sustaining
overload: a transient trigger (here, an injected resource anomaly) pushes
a service past its capacity knee, clients respond with retries, the retry
amplification keeps the service saturated after the trigger clears, and
the system stays degraded until something sheds load.  This module turns
that failure shape into a first-class, scored scenario family on top of
the admission subsystem (:mod:`repro.admission`), the distributed
dispatchers (:mod:`repro.routing.dispatchers`), and the resilience
scoring machinery (:mod:`repro.experiments.resilience`):

* :class:`MetastableCase` — one cell: application, seed, load, admission
  policy, dispatcher topology, and the transient anomaly (start,
  duration, intensity), as pure picklable data;
* :func:`run_metastable_case` — runs the cell end to end and scores it
  the resilience way (SLO-violation seconds, time-to-mitigate,
  windowed localization precision/recall via
  :class:`~repro.experiments.resilience.LocalizationScorer`) plus the
  admission axis (shed/retry/hedge counts, request amplification);
* three campaigns:

  - ``retry_storm`` — the same transient anomaly under ``none`` /
    ``naive_retries`` / ``survival_kit`` admission, showing naive
    retries amplifying the trigger and the survival kit damping it;
  - ``shed_vs_violate`` — a rate-limit sweep mapping the tradeoff
    between shedding requests and violating SLOs on the survivors;
  - ``staleness_grid`` — dispatcher count × view staleness, showing
    how stale partial views degrade tail latency under pressure;

* :func:`metastable_macro_spec` — the ``dispatch_admission`` perf macro
  scenario (dispatchers + survival kit + transient anomaly, end to end).

The CLI front ends are ``repro.cli run metastable --campaign ...`` and
``repro.cli sweep --admission ...``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.admission.config import (
    ADMISSION_PRESETS,
    AdmissionConfig,
    resolve_admission_config,
)
from repro.anomaly.anomalies import AnomalyScope, AnomalyType
from repro.anomaly.campaigns import AnomalyCampaign, single_anomaly_sweep
from repro.apps.catalog import build_application
from repro.experiments.resilience import LocalizationScorer, WindowScore
from repro.experiments.scenario import ScenarioSpec

#: The campaign kinds ``run_metastable_campaign`` knows.
METASTABLE_CAMPAIGNS: Tuple[str, ...] = (
    "retry_storm",
    "shed_vs_violate",
    "staleness_grid",
)


@dataclass
class MetastableCase:
    """One metastable-failure cell, as pure picklable data.

    Attributes
    ----------
    application / controller / seed / load_rps:
        As on :class:`~repro.experiments.scenario.ScenarioSpec`.
    duration_s:
        Scenario duration (the anomaly is transient; everything after
        ``anomaly_start_s + anomaly_duration_s`` measures whether the
        system *recovers* or stays metastable).
    admission:
        Admission preset name (see
        :data:`~repro.admission.config.ADMISSION_PRESETS`).
    rate_limit_rps:
        Optional override of the preset's token-bucket rate — the
        shed-vs-violate sweep's moving part.
    dispatchers / dispatch_variant / dispatch_staleness_s:
        Distributed-dispatch knobs, as on the spec.
    anomaly_start_s / anomaly_duration_s / anomaly_intensity:
        The transient trigger: one service-wide anomaly of the given
        intensity over ``[start, start + duration)``.
    anomaly_target:
        Target service (None = the application's entry-most service,
        where pressure hurts every request type).
    window_s / significant_intensity:
        Localization scoring knobs (see
        :class:`~repro.experiments.resilience.ResilienceCase`).
    replicas_per_service:
        Initial replicas for every service (>1 gives dispatchers a
        replica set to disagree about).
    cluster_nodes:
        Optional (x86, ppc64) topology override.
    """

    application: str = "social_network"
    controller: str = "none"
    seed: int = 0
    load_rps: float = 70.0
    duration_s: float = 30.0
    admission: str = "none"
    rate_limit_rps: Optional[float] = None
    dispatchers: int = 1
    dispatch_variant: str = "jiq"
    dispatch_staleness_s: float = 0.25
    anomaly_start_s: float = 5.0
    anomaly_duration_s: float = 8.0
    anomaly_intensity: float = 0.9
    anomaly_target: Optional[str] = None
    window_s: float = 5.0
    significant_intensity: float = 0.5
    replicas_per_service: int = 2
    cluster_nodes: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.admission not in ADMISSION_PRESETS:
            known = ", ".join(sorted(ADMISSION_PRESETS))
            raise ValueError(
                f"unknown admission preset {self.admission!r}; known: {known}"
            )
        if self.anomaly_duration_s <= 0.0:
            raise ValueError(
                f"anomaly_duration_s must be > 0, got {self.anomaly_duration_s}"
            )

    @property
    def case_id(self) -> str:
        """Stable human-readable identity (keys campaign scoreboards)."""
        parts = [
            f"metastable[{self.application}/{self.controller}"
            f"/admission={self.admission}]",
            f"seed={self.seed}",
            f"load={self.load_rps:g}",
        ]
        if self.rate_limit_rps is not None:
            parts.append(f"rate={self.rate_limit_rps:g}")
        if self.dispatchers > 1:
            parts.append(
                f"dispatchers={self.dispatchers}:{self.dispatch_variant}"
                f"@{self.dispatch_staleness_s:g}"
            )
        return "/".join(parts)

    def with_overrides(self, **overrides) -> "MetastableCase":
        """A copy of this case with the given fields replaced."""
        return replace(self, **overrides)

    def resolved_admission(self) -> Optional[AdmissionConfig]:
        """The case's admission config with the rate override applied."""
        config = resolve_admission_config(self.admission)
        if self.rate_limit_rps is None:
            return config
        base = config if config is not None else ADMISSION_PRESETS[self.admission]
        return base.with_overrides(
            name=f"{base.name}@{self.rate_limit_rps:g}rps",
            rate_limit_rps=float(self.rate_limit_rps),
        )


@dataclass
class MetastableOutcome:
    """Scored result of one metastable case."""

    case: MetastableCase
    windows: List[WindowScore] = field(default_factory=list)
    precision: float = 1.0
    recall: float = 1.0
    #: Total seconds the SLO was in violation.
    slo_violation_seconds: float = 0.0
    #: Mean violation-episode duration.
    time_to_mitigate_s: float = 0.0
    #: Seconds the SLO stayed in violation *after* the trigger cleared —
    #: the metastability signal (a recovering system drives this to ~0;
    #: a metastable one accrues it for the rest of the run).
    post_trigger_violation_s: float = 0.0
    #: Headline SLO numbers.
    summary: Dict[str, float] = field(default_factory=dict)
    #: The admission gate's ``snapshot()`` (None with admission off).
    admission: Optional[Dict[str, object]] = None
    #: Physical attempts per admitted logical request (1.0 = no
    #: amplification; the retry-storm fuel gauge).
    amplification: float = 1.0

    @property
    def case_id(self) -> str:
        return self.case.case_id

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly row (used by the CLI and scoreboards)."""
        return {
            "case_id": self.case_id,
            "application": self.case.application,
            "controller": self.case.controller,
            "admission": self.case.admission,
            "rate_limit_rps": self.case.rate_limit_rps,
            "dispatchers": self.case.dispatchers,
            "dispatch_variant": self.case.dispatch_variant,
            "dispatch_staleness_s": self.case.dispatch_staleness_s,
            "seed": self.case.seed,
            "precision": self.precision,
            "recall": self.recall,
            "windows_scored": len(self.windows),
            "slo_violation_seconds": self.slo_violation_seconds,
            "time_to_mitigate_s": self.time_to_mitigate_s,
            "post_trigger_violation_s": self.post_trigger_violation_s,
            "amplification": self.amplification,
            "summary": dict(self.summary),
            "admission_stats": dict(self.admission) if self.admission else None,
        }


# ---------------------------------------------------------------------------
# Case construction and execution
# ---------------------------------------------------------------------------

def build_metastable_campaign(case: MetastableCase) -> AnomalyCampaign:
    """The case's transient trigger: one service-wide anomaly burst."""
    target = case.anomaly_target
    if target is None:
        target = build_application(case.application).service_names()[0]
    return single_anomaly_sweep(
        AnomalyType.CPU_UTILIZATION,
        target,
        intensities=(case.anomaly_intensity,),
        step_duration_s=case.anomaly_duration_s,
        gap_s=0.0,
        start_s=case.anomaly_start_s,
        scope=AnomalyScope.SERVICE_WIDE,
    )


def metastable_scenario_spec(case: MetastableCase) -> ScenarioSpec:
    """Expand one case into the scenario spec the harness builds from."""
    from repro.experiments.routing import replicated_services

    replicas = (
        replicated_services(case.application, case.replicas_per_service)
        if case.replicas_per_service > 1
        else None
    )
    return ScenarioSpec(
        application=case.application,
        seed=case.seed,
        duration_s=case.duration_s,
        load_rps=case.load_rps,
        controller=case.controller,
        campaign=build_metastable_campaign(case),
        replicas=replicas,
        cluster_nodes=case.cluster_nodes,
        dispatchers=case.dispatchers,
        dispatch_variant=case.dispatch_variant,
        dispatch_staleness_s=case.dispatch_staleness_s,
        admission=case.resolved_admission(),
    )


def run_metastable_case(
    case: MetastableCase, observability: bool = False
) -> MetastableOutcome:
    """Run one metastable cell end to end and score it.

    Scoring combines the resilience axes (windowed localization
    precision/recall, SLO-violation seconds, time-to-mitigate) with the
    admission axis (shed/retry/hedge counts and request amplification)
    and the metastability signal itself: SLO-violation seconds accrued
    *after* the transient trigger cleared.

    ``observability=True`` additionally runs with the PR 8 obs bundle so
    the returned harness result carries the event journal
    (``admission_decision`` / ``retry`` / ``breaker_transition`` records
    included) — the CLI's ``--obs-dir`` uses it to write a run record.
    """
    outcome, _, _ = _run_metastable_case_with_result(case, observability)
    return outcome


def _run_metastable_case_with_result(
    case: MetastableCase, observability: bool = False
):
    """Run + score one case, also returning the raw result and harness.

    Returns ``(outcome, result, harness)`` — the CLI's ``--obs-dir`` path
    needs the live harness so the run record's trace export can reach
    the span stores.
    """
    spec = metastable_scenario_spec(case)
    if observability:
        spec = spec.with_overrides(observability=True)
    from repro.experiments.harness import ExperimentHarness

    harness = ExperimentHarness.from_spec(spec)
    scorer = LocalizationScorer(
        harness,
        harness.tenants[0],
        window_s=case.window_s,
        significant_intensity=case.significant_intensity,
    )
    scorer.attach(until_s=spec.duration_s, name="metastable-evaluate")
    result = harness.run(
        duration_s=spec.duration_s, sample_period_s=spec.sample_period_s
    )

    trigger_end = case.anomaly_start_s + case.anomaly_duration_s
    post_trigger = 0.0
    for episode in result.mitigation.episodes:
        end = episode.end_s if episode.end_s is not None else case.duration_s
        overlap = end - max(episode.start_s, trigger_end)
        if overlap > 0.0:
            post_trigger += overlap

    precision, recall = scorer.micro_averages()
    admission = result.admission
    amplification = 1.0
    if admission is not None:
        amplification = float(admission.get("amplification") or 1.0)
    outcome = MetastableOutcome(
        case=case,
        windows=scorer.windows,
        precision=precision,
        recall=recall,
        slo_violation_seconds=float(sum(result.mitigation.mitigation_times_s())),
        time_to_mitigate_s=result.mitigation.mean_mitigation_time_s(),
        post_trigger_violation_s=post_trigger,
        summary=result.summary(),
        admission=admission,
        amplification=amplification,
    )
    return outcome, result, harness


def _run_one_metastable(case: MetastableCase) -> MetastableOutcome:
    """Worker entry point (module-level so it pickles across processes)."""
    return run_metastable_case(case)


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------

#: Admission presets the retry-storm campaign compares, in severity order.
RETRY_STORM_PRESETS: Tuple[str, ...] = ("none", "naive_retries", "survival_kit")

#: Rate limits (rps) the shed-vs-violate sweep walks.
SHED_VS_VIOLATE_RATES: Tuple[float, ...] = (40.0, 60.0, 80.0, 100.0, 120.0)

#: (dispatchers, staleness_s) grid of the staleness campaign.
STALENESS_GRID: Tuple[Tuple[int, float], ...] = (
    (1, 0.0),
    (2, 0.05),
    (2, 0.5),
    (4, 0.05),
    (4, 0.5),
)


def retry_storm_cases(
    seed: int = 0,
    presets: Sequence[str] = RETRY_STORM_PRESETS,
    base: Optional[MetastableCase] = None,
) -> List[MetastableCase]:
    """The retry-storm comparison: one trigger, N admission policies."""
    template = base if base is not None else MetastableCase(seed=seed)
    return [
        template.with_overrides(seed=seed, admission=preset) for preset in presets
    ]


def shed_vs_violate_cases(
    seed: int = 0,
    rates: Sequence[float] = SHED_VS_VIOLATE_RATES,
    base: Optional[MetastableCase] = None,
) -> List[MetastableCase]:
    """The shed-vs-violate sweep: shedding rate limit as the knob."""
    template = base if base is not None else MetastableCase(seed=seed)
    return [
        template.with_overrides(
            seed=seed, admission="shed_only", rate_limit_rps=float(rate)
        )
        for rate in rates
    ]


def staleness_grid_cases(
    seed: int = 0,
    grid: Sequence[Tuple[int, float]] = STALENESS_GRID,
    variant: str = "jiq",
    base: Optional[MetastableCase] = None,
) -> List[MetastableCase]:
    """The dispatcher-staleness grid (dispatchers × view staleness)."""
    template = base if base is not None else MetastableCase(seed=seed)
    return [
        template.with_overrides(
            seed=seed,
            dispatchers=int(dispatchers),
            dispatch_variant=variant,
            dispatch_staleness_s=float(staleness),
        )
        for dispatchers, staleness in grid
    ]


def metastable_campaign_cases(
    campaign: str, seed: int = 0, quick: bool = False, **case_overrides
) -> List[MetastableCase]:
    """Expand one named campaign into its case list.

    ``quick`` shrinks durations and grids for smoke runs (CI's
    failure-smoke job): shorter scenarios, the same trigger, fewer
    sweep points.  Extra keyword arguments override fields on the base
    case (after the quick-mode shrink), e.g. ``load_rps=90.0``.
    """
    if campaign not in METASTABLE_CAMPAIGNS:
        known = ", ".join(METASTABLE_CAMPAIGNS)
        raise ValueError(f"unknown metastable campaign {campaign!r}; known: {known}")
    base = MetastableCase(seed=seed)
    if quick:
        base = base.with_overrides(
            duration_s=15.0, anomaly_start_s=2.5, anomaly_duration_s=5.0
        )
    if case_overrides:
        base = base.with_overrides(**case_overrides)
    if campaign == "retry_storm":
        return retry_storm_cases(seed=seed, base=base)
    if campaign == "shed_vs_violate":
        rates = (50.0, 80.0, 110.0) if quick else SHED_VS_VIOLATE_RATES
        return shed_vs_violate_cases(seed=seed, rates=rates, base=base)
    grid = ((1, 0.0), (2, 0.5), (4, 0.5)) if quick else STALENESS_GRID
    return staleness_grid_cases(seed=seed, grid=grid, base=base)


def run_metastable_campaign(
    campaign: str,
    seed: int = 0,
    quick: bool = False,
    workers: int = 1,
    progress=None,
    **case_overrides,
) -> Dict[str, object]:
    """Run one named campaign and assemble its scoreboard payload.

    Returns a JSON-serializable dict: the campaign name, the per-case
    scored rows (in case order), and a campaign-level verdict comparing
    the rows along the campaign's axis (admission policy, rate limit, or
    staleness).
    """
    from repro.experiments.sweep import run_parallel

    cases = metastable_campaign_cases(campaign, seed=seed, quick=quick, **case_overrides)
    outcomes = run_parallel(
        cases, _run_one_metastable, workers=workers, progress=progress
    )
    rows = [outcome.as_dict() for outcome in outcomes]
    return {
        "campaign": campaign,
        "seed": seed,
        "quick": quick,
        "cases": rows,
        "verdict": _campaign_verdict(campaign, outcomes),
    }


def _campaign_verdict(
    campaign: str, outcomes: Sequence[MetastableOutcome]
) -> Dict[str, object]:
    """Campaign-level comparison along the campaign's axis."""
    if campaign == "retry_storm":
        by_preset = {o.case.admission: o for o in outcomes}
        naive = by_preset.get("naive_retries")
        kit = by_preset.get("survival_kit")
        return {
            "axis": "admission",
            "violation_seconds": {
                name: o.slo_violation_seconds for name, o in by_preset.items()
            },
            "post_trigger_violation_s": {
                name: o.post_trigger_violation_s for name, o in by_preset.items()
            },
            "amplification": {
                name: o.amplification for name, o in by_preset.items()
            },
            "kit_damps_storm": (
                naive is not None
                and kit is not None
                and kit.post_trigger_violation_s <= naive.post_trigger_violation_s
            ),
        }
    if campaign == "shed_vs_violate":
        curve = []
        for outcome in outcomes:
            stats = outcome.admission or {}
            submitted = float(stats.get("submitted") or 0.0)
            shed = float(stats.get("shed") or 0.0)
            curve.append(
                {
                    "rate_limit_rps": outcome.case.rate_limit_rps,
                    "shed_fraction": shed / submitted if submitted else 0.0,
                    "violation_rate": outcome.summary.get("violation_rate", 0.0),
                    "violation_seconds": outcome.slo_violation_seconds,
                }
            )
        return {"axis": "rate_limit_rps", "tradeoff_curve": curve}
    cells = [
        {
            "dispatchers": outcome.case.dispatchers,
            "staleness_s": outcome.case.dispatch_staleness_s,
            "p99_ms": outcome.summary.get("p99_ms", 0.0),
            "violation_seconds": outcome.slo_violation_seconds,
        }
        for outcome in outcomes
    ]
    return {"axis": "dispatchers x staleness", "grid": cells}


# ---------------------------------------------------------------------------
# Admission sweep grid (the ``sweep --admission`` front end)
# ---------------------------------------------------------------------------

def metastable_sweep_grid(
    presets: Sequence[str],
    seeds: Sequence[int] = (0,),
    base: Optional[MetastableCase] = None,
    **case_overrides,
) -> List[MetastableCase]:
    """Expand the admission-preset × seed cross product.

    ``base`` supplies defaults for every field the grid does not set;
    extra keyword arguments override fields on every case.  Preset-major
    order, mirroring :func:`repro.experiments.sweep.sweep_grid`.
    """
    for preset in presets:
        if preset not in ADMISSION_PRESETS:
            known = ", ".join(sorted(ADMISSION_PRESETS))
            raise ValueError(f"unknown admission preset {preset!r}; known: {known}")
    template = base if base is not None else MetastableCase()
    if case_overrides:
        template = template.with_overrides(**case_overrides)
    return [
        template.with_overrides(admission=preset, seed=int(seed))
        for preset in presets
        for seed in seeds
    ]


def run_metastable_sweep(
    cases: Sequence[MetastableCase],
    workers: int = 1,
    progress=None,
) -> List[MetastableOutcome]:
    """Run every case, optionally across ``workers`` spawned processes.

    Returns outcomes **in the input order** regardless of worker finish
    order; every stochastic stream derives from the case's own seed, so
    the parallel sweep is bit-identical to the serial one.
    """
    from repro.experiments.sweep import run_parallel

    return run_parallel(cases, _run_one_metastable, workers=workers, progress=progress)


# ---------------------------------------------------------------------------
# The dispatch_admission perf macro
# ---------------------------------------------------------------------------

def metastable_macro_spec(duration_s: float, seed: int = 0) -> ScenarioSpec:
    """The distributed-dispatch + admission perf macro (see :mod:`repro.perf`).

    A replicated social network behind three stale-JIQ dispatchers with
    the full survival kit attached and a transient anomaly early in the
    run: every request crosses the dispatcher views and the admission
    gate, failures exercise the retry/hedge paths, and the breaker and
    token-bucket bookkeeping run hot — the new subsystems' end-to-end
    cost, timed against the classic router baseline.
    """
    case = MetastableCase(
        seed=seed,
        duration_s=duration_s,
        admission="survival_kit",
        dispatchers=3,
        dispatch_variant="jiq",
        # Arrivals must hit the anomaly inside even the 5 s quick-mode
        # window, or the CI perf gate would time an anomaly-free run.
        anomaly_start_s=0.5,
        anomaly_duration_s=min(5.0, duration_s / 3.0),
    )
    return metastable_scenario_spec(case)
