"""Headline-number summary (§1 / §4.4 of the paper).

Aggregates the Fig. 9/10/11 experiments into the paper's headline claims:

* SLO-violation reduction versus Kubernetes autoscaling and AIMD;
* requested-CPU reduction;
* tail-latency (performance predictability) improvement;
* localization accuracy;
* mitigation-time speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.experiments.fig9_localization import run_fig9b_for_application
from repro.experiments.fig10_end_to_end import Fig10Result, run_fig10
from repro.experiments.fig11_rl_training import MitigationComparison, run_fig11b


@dataclass
class HeadlineNumbers:
    """The reproduction's headline numbers next to the paper's claims."""

    slo_violation_factor_vs_k8s: float
    slo_violation_factor_vs_aimd: float
    p99_factor_vs_k8s: float
    requested_cpu_reduction_vs_k8s: float
    localization_accuracy: float
    mitigation_speedup_vs_aimd: float
    mitigation_speedup_vs_k8s: float

    #: Paper-reported values for side-by-side comparison.
    PAPER = {
        "slo_violation_factor_vs_k8s": 16.7,
        "slo_violation_factor_vs_aimd": 9.8,
        "p99_factor_vs_k8s": 11.5,
        "requested_cpu_reduction_vs_k8s": 0.623,
        "localization_accuracy": 0.938,
        "mitigation_speedup_vs_aimd": 9.6,
        "mitigation_speedup_vs_k8s": 30.1,
    }

    def as_dict(self) -> Dict[str, float]:
        return {
            "slo_violation_factor_vs_k8s": self.slo_violation_factor_vs_k8s,
            "slo_violation_factor_vs_aimd": self.slo_violation_factor_vs_aimd,
            "p99_factor_vs_k8s": self.p99_factor_vs_k8s,
            "requested_cpu_reduction_vs_k8s": self.requested_cpu_reduction_vs_k8s,
            "localization_accuracy": self.localization_accuracy,
            "mitigation_speedup_vs_aimd": self.mitigation_speedup_vs_aimd,
            "mitigation_speedup_vs_k8s": self.mitigation_speedup_vs_k8s,
        }

    def comparison_rows(self):
        """(metric, paper value, measured value) rows for EXPERIMENTS.md."""
        measured = self.as_dict()
        return [
            {"metric": key, "paper": self.PAPER[key], "measured": round(value, 3)}
            for key, value in measured.items()
        ]


def run_summary(
    fig10: Optional[Fig10Result] = None,
    fig11b: Optional[MitigationComparison] = None,
    localization_accuracy: Optional[float] = None,
    quick: bool = True,
) -> HeadlineNumbers:
    """Compute the headline numbers (running the experiments when not given).

    ``quick`` shrinks durations so the summary completes in a couple of
    minutes of wall-clock time; the full-scale run uses the experiment
    modules' defaults.
    """
    if fig10 is None:
        fig10 = run_fig10(
            duration_s=90.0 if quick else 180.0,
            load_rps=50.0 if quick else 80.0,
            include_multi_rl=False,
        )
    if fig11b is None:
        fig11b = run_fig11b(episodes=4 if quick else 8)
    if localization_accuracy is None:
        localization_accuracy = run_fig9b_for_application(
            "social_network", windows=5 if quick else 10
        ).accuracy

    vs_k8s = fig10.improvement_over("k8s")
    vs_aimd = fig10.improvement_over("aimd")
    return HeadlineNumbers(
        slo_violation_factor_vs_k8s=vs_k8s["violation_factor"],
        slo_violation_factor_vs_aimd=vs_aimd["violation_factor"],
        p99_factor_vs_k8s=vs_k8s["p99_factor"],
        requested_cpu_reduction_vs_k8s=vs_k8s["requested_cpu_reduction"],
        localization_accuracy=localization_accuracy,
        mitigation_speedup_vs_aimd=fig11b.speedup_vs_aimd(),
        mitigation_speedup_vs_k8s=fig11b.speedup_vs_k8s(),
    )
