"""Resilience evaluation: controllers × anomaly campaigns × applications.

The paper's headline claims are scored against the anomaly injector's
ground truth: Fig. 9 localization accuracy and the §4.1 mitigation
comparison both depend on knowing exactly which services were under
injection when.  This module promotes that experiment shape to a
first-class grid:

* a :class:`ResilienceCase` names one cell — application, controller,
  campaign kind (``single_sweep`` / ``multi_anomaly`` / ``random``),
  anomaly scope, seed — as pure picklable data;
* :func:`run_resilience_case` runs the cell end to end and scores it on
  two axes: **localization** (per-window precision/recall of the
  critical-component extractor's flags against the injector's
  ``[start_s, end_s)`` ground truth, co-located services on injected
  nodes counting as genuine victims) and **mitigation**
  (SLO-violation-seconds and time-to-mitigate from the violation-episode
  tracker, plus the SLO summary);
* :func:`resilience_sweep_grid` + :func:`run_resilience_sweep` expand and
  run the controller × campaign × application × seed cross product,
  optionally across worker processes — each case derives every stochastic
  stream from its own seed, so the parallel sweep is bit-identical to the
  serial one;
* the ``multi_tenant`` preset co-locates a victim tenant with a loaded
  neighbour and targets the campaign at the victim alone (tenant scope),
  scoring interference on the victim's own SLOs.

The CLI front ends are ``repro.cli run resilience --preset ...`` and
``repro.cli sweep --campaigns ...``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.anomaly.anomalies import ANOMALY_TYPES, AnomalyScope, AnomalyType
from repro.anomaly.campaigns import (
    AnomalyCampaign,
    multi_anomaly_campaign,
    random_campaign,
    single_anomaly_sweep,
)
from repro.apps.catalog import build_application
from repro.core.critical_component import CriticalComponentExtractor
from repro.core.critical_path import CriticalPathExtractor
from repro.core.svm import IncrementalSVM
from repro.experiments.scenario import ScenarioSpec, TenantSpec
from repro.sim.rng import SeededRNG

#: The campaign kinds a resilience case can run.
CAMPAIGN_KINDS: Tuple[str, ...] = ("single_sweep", "multi_anomaly", "random")

#: Default controller axis of the resilience grid.
DEFAULT_CONTROLLERS: Tuple[str, ...] = ("firm", "kubernetes_hpa", "aimd", "none")

#: Resource-pressure anomaly types (workload variation excluded: it has no
#: node-local ground truth for localization to recover).
_RESOURCE_TYPES: Tuple[AnomalyType, ...] = tuple(
    a for a in ANOMALY_TYPES if a is not AnomalyType.WORKLOAD_VARIATION
)


@dataclass
class ResilienceCase:
    """One cell of the resilience grid, as pure picklable data.

    Attributes
    ----------
    application / controller / seed / load_rps:
        As on :class:`~repro.experiments.scenario.ScenarioSpec`.
    campaign:
        Campaign kind (one of :data:`CAMPAIGN_KINDS`).
    duration_s:
        Scenario duration; None derives it from the campaign schedule
        (campaign end + one analysis window; ``random`` campaigns default
        to 60 s).
    window_s:
        Localization analysis window — flags are scored against ground
        truth every ``window_s`` simulated seconds.
    campaign_windows:
        Window count for ``multi_anomaly`` campaigns.
    scope:
        Anomaly scope name (see
        :class:`~repro.anomaly.anomalies.AnomalyScope`); the default
        ``service_wide`` pressures every node hosting a live replica of
        each target.
    replicas_per_service:
        Initial replica count for every service (>1 makes replica-aware
        injection observable: single-node pressure under replication is
        nearly invisible to localization).
    multi_tenant:
        Run the victim/neighbour co-location shape instead of the
        single-tenant one: the campaign targets the victim tenant only and
        interference is scored on the victim's SLOs.
    neighbor_load_rps:
        Offered load of the co-located neighbour tenant.
    significant_intensity:
        Injections weaker than this are not expected to cause SLO
        violations and are not counted as ground-truth culprits.
    train_svm:
        Train the localization SVM online from ground truth between
        windows (the Fig. 9(b) protocol).  Off by default: the resilience
        scoreboard evaluates the detector as deployed, and training from
        the very ground truth being scored inside one run contaminates
        the precision/recall it reports.
    cluster_nodes:
        Optional (x86, ppc64) topology override; None keeps the paper's
        15-node default (multi-tenant cases default to a small shared
        cluster where interference is visible).
    telemetry_mode:
        Telemetry pipeline mode: ``"sketch"`` (the default; constant-
        memory sketches feed the detector) or ``"raw"`` (full
        sample/trace retention, the historical behaviour).
    """

    application: str = "social_network"
    controller: str = "none"
    campaign: str = "multi_anomaly"
    seed: int = 0
    load_rps: float = 60.0
    duration_s: Optional[float] = None
    window_s: float = 10.0
    campaign_windows: int = 6
    scope: str = AnomalyScope.SERVICE_WIDE.value
    replicas_per_service: int = 1
    multi_tenant: bool = False
    neighbor_load_rps: float = 150.0
    significant_intensity: float = 0.5
    train_svm: bool = False
    cluster_nodes: Optional[Tuple[int, int]] = None
    telemetry_mode: str = "sketch"

    def __post_init__(self) -> None:
        if self.campaign not in CAMPAIGN_KINDS:
            known = ", ".join(CAMPAIGN_KINDS)
            raise ValueError(f"unknown campaign kind {self.campaign!r}; known: {known}")
        if self.telemetry_mode not in ("raw", "sketch"):
            raise ValueError(
                f"telemetry_mode must be 'raw' or 'sketch', got {self.telemetry_mode!r}"
            )
        self.scope = AnomalyScope(self.scope).value

    @property
    def case_id(self) -> str:
        """Stable human-readable identity (keys sweep results)."""
        shape = "multi_tenant" if self.multi_tenant else "single"
        return (
            f"resilience[{self.application}/{self.controller}/{self.campaign}"
            f"/{self.scope}]/seed={self.seed}/load={self.load_rps:g}/{shape}"
        )

    def with_overrides(self, **overrides) -> "ResilienceCase":
        """A copy of this case with the given fields replaced."""
        return replace(self, **overrides)


@dataclass
class WindowScore:
    """Localization score of one analysis window.

    ``truth`` is the injector's ground truth restricted to services that
    appeared on critical paths in the window (targets of significant
    injections overlapping ``[start_s, end_s)`` plus services co-located
    on their injected nodes); ``flagged`` is what the extractor reported.
    """

    start_s: float
    end_s: float
    truth: List[str] = field(default_factory=list)
    flagged: List[str] = field(default_factory=list)
    precision: float = 1.0
    recall: float = 1.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "truth": list(self.truth),
            "flagged": list(self.flagged),
            "precision": self.precision,
            "recall": self.recall,
        }


@dataclass
class ResilienceOutcome:
    """Scored result of one resilience case."""

    case: ResilienceCase
    windows: List[WindowScore] = field(default_factory=list)
    #: Micro-averaged over all windows (flag- and culprit-weighted).
    precision: float = 1.0
    recall: float = 1.0
    #: Total seconds the (victim's) SLO was in violation.
    slo_violation_seconds: float = 0.0
    #: Mean violation-episode duration (the paper's mitigation time).
    time_to_mitigate_s: float = 0.0
    #: Headline SLO numbers (the victim tenant's for multi-tenant cases).
    summary: Dict[str, float] = field(default_factory=dict)
    #: The neighbour tenant's headline numbers (multi-tenant cases only).
    neighbor_summary: Optional[Dict[str, float]] = None

    @property
    def case_id(self) -> str:
        return self.case.case_id

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly row (used by the CLI and reports)."""
        row: Dict[str, object] = {
            "case_id": self.case_id,
            "application": self.case.application,
            "controller": self.case.controller,
            "campaign": self.case.campaign,
            "scope": self.case.scope,
            "seed": self.case.seed,
            "multi_tenant": self.case.multi_tenant,
            "precision": self.precision,
            "recall": self.recall,
            "windows_scored": len(self.windows),
            "slo_violation_seconds": self.slo_violation_seconds,
            "time_to_mitigate_s": self.time_to_mitigate_s,
            "summary": dict(self.summary),
            "windows": [window.as_dict() for window in self.windows],
        }
        if self.neighbor_summary is not None:
            row["neighbor_summary"] = dict(self.neighbor_summary)
        return row


# ---------------------------------------------------------------------------
# Campaign and scenario construction
# ---------------------------------------------------------------------------

def build_resilience_campaign(case: ResilienceCase) -> AnomalyCampaign:
    """The case's anomaly campaign (pure data, derived from the seed).

    Multi-tenant cases target the victim tenant's namespaced services so
    the campaign lands on the victim alone.
    """
    app = build_application(case.application)
    if case.multi_tenant:
        app = app.namespaced("victim")
    services = app.service_names()
    scope = AnomalyScope(case.scope)
    if case.campaign == "single_sweep":
        return single_anomaly_sweep(
            AnomalyType.CPU_UTILIZATION,
            services[0],
            intensities=(0.6, 0.8, 0.95),
            step_duration_s=case.window_s,
            gap_s=case.window_s / 2.0,
            start_s=case.window_s / 2.0,
            scope=scope,
        )
    if case.campaign == "multi_anomaly":
        return multi_anomaly_campaign(
            services,
            SeededRNG(case.seed),
            windows=case.campaign_windows,
            window_s=case.window_s,
            anomaly_types=_RESOURCE_TYPES,
            start_s=case.window_s / 2.0,
            scope=scope,
        )
    return random_campaign(
        services,
        SeededRNG(case.seed),
        duration_s=case.duration_s if case.duration_s is not None else 60.0,
        anomaly_types=_RESOURCE_TYPES,
        min_intensity=case.significant_intensity,
        scope=scope,
    )


def _resolved_duration(case: ResilienceCase, campaign: AnomalyCampaign) -> float:
    if case.duration_s is not None:
        return float(case.duration_s)
    return campaign.end_time() + case.window_s


def resilience_scenario_spec(case: ResilienceCase) -> ScenarioSpec:
    """Expand one case into the scenario spec the harness builds from."""
    from repro.experiments.routing import replicated_services

    campaign = build_resilience_campaign(case)
    duration = _resolved_duration(case, campaign)
    replicas = (
        replicated_services(case.application, case.replicas_per_service)
        if case.replicas_per_service > 1
        else None
    )
    if case.multi_tenant:
        return ScenarioSpec(
            seed=case.seed,
            duration_s=duration,
            telemetry_mode=case.telemetry_mode,
            cluster_nodes=case.cluster_nodes or (2, 0),
            tenants=[
                TenantSpec(
                    name="victim",
                    application=case.application,
                    load_rps=case.load_rps,
                    controller=case.controller,
                    campaign=campaign,
                    replicas=replicas,
                ),
                TenantSpec(
                    name="neighbor",
                    application=case.application,
                    load_rps=case.neighbor_load_rps,
                    controller="none",
                ),
            ],
        )
    return ScenarioSpec(
        application=case.application,
        seed=case.seed,
        duration_s=duration,
        load_rps=case.load_rps,
        controller=case.controller,
        campaign=campaign,
        replicas=replicas,
        cluster_nodes=case.cluster_nodes,
        telemetry_mode=case.telemetry_mode,
    )


# ---------------------------------------------------------------------------
# Running and scoring one case
# ---------------------------------------------------------------------------

class LocalizationScorer:
    """Windowed localization scoring against the injector's ground truth.

    Owns the recurring evaluation loop one resilience (or metastable)
    run attaches to its harness: every ``window_s`` simulated seconds the
    critical-component extractor's flags are compared with the injector's
    ground truth over the same window, and the resulting
    :class:`WindowScore` list accumulates on :attr:`windows`.  Extracted
    from :func:`run_resilience_case` so the metastable scenario family
    scores localization with byte-identical machinery.
    """

    def __init__(
        self,
        harness,
        tenant,
        window_s: float,
        significant_intensity: float = 0.5,
        train_svm: bool = False,
    ) -> None:
        self.harness = harness
        self.tenant = tenant
        self.window_s = float(window_s)
        self.significant_intensity = float(significant_intensity)
        self.train_svm = bool(train_svm)
        self.component_extractor = CriticalComponentExtractor(
            svm=IncrementalSVM(input_dim=2)
        )
        self.path_extractor = CriticalPathExtractor()
        self.windows: List[WindowScore] = []

    def attach(self, until_s: float, name: str = "resilience-evaluate") -> None:
        """Schedule the recurring evaluation on the harness engine."""
        self.harness.engine.schedule_recurring(
            self.window_s, self.evaluate, name=name, until=until_s
        )

    def evaluate(self, engine) -> None:
        """Score the window ``[now - window_s, now)`` (the recurring body).

        Ground truth covers every significant injection overlapping the
        analysis window — not just the ones still active at the probe
        instant, since the window's traces carry the symptoms of
        anomalies that ended mid-window too.
        """
        injector = self.tenant.injector
        coordinator = self.tenant.coordinator
        component_extractor = self.component_extractor
        targets, node_names = injector.ground_truth_window(
            engine.now - self.window_s,
            engine.now,
            min_intensity=self.significant_intensity,
        )
        truth_targets = set(targets)
        injected_nodes = set(node_names)
        traces = coordinator.recent_traces(self.window_s)
        if not traces:
            return
        paths = self.path_extractor.extract_all(traces)
        if coordinator.telemetry_mode == "sketch":
            # Windowed (RI, CI) from the coordinator's per-instance
            # sketches, restricted to instances on the window's CPs.
            instances = sorted(
                {span.instance for path in paths for span in path.spans}
            )
            features = coordinator.instance_features(
                self.window_s,
                instances=instances,
                min_samples=component_extractor.min_samples,
            )
        else:
            features = component_extractor.compute_features(paths, traces)
        if not features:
            return
        truth = set()
        flagged = set()
        # Classify the already-computed features directly instead of
        # extract(), which would recompute RI/CI over every path — and as
        # one vectorized SVM call rather than per-instance classify_one.
        matrix = np.vstack([feature.as_vector() for feature in features])
        decisions = component_extractor.svm.classify(matrix)
        for feature, flag in zip(features, decisions):
            service = feature.service
            on_injected_node = False
            try:
                instance = self.harness.cluster.instance_by_name(feature.instance)
                node = instance.container.node
                on_injected_node = node is not None and node.name in injected_nodes
            except KeyError:
                pass
            if service in truth_targets or on_injected_node:
                truth.add(service)
            if flag:
                flagged.add(service)
        hits = len(flagged & truth)
        self.windows.append(
            WindowScore(
                start_s=engine.now - self.window_s,
                end_s=engine.now,
                truth=sorted(truth),
                flagged=sorted(flagged),
                precision=1.0 if not flagged else hits / len(flagged),
                recall=1.0 if not truth else hits / len(truth),
            )
        )
        if self.train_svm:
            if coordinator.telemetry_mode == "sketch":
                labels = [
                    1 if feature.service in truth_targets else 0
                    for feature in features
                ]
                component_extractor.svm.partial_fit(matrix, labels)
            else:
                component_extractor.train_from_ground_truth(
                    paths, traces, sorted(truth_targets)
                )

    def micro_averages(self) -> Tuple[float, float]:
        """Micro-averaged (precision, recall) over all scored windows."""
        total_flagged = sum(len(window.flagged) for window in self.windows)
        total_truth = sum(len(window.truth) for window in self.windows)
        total_hits = sum(
            len(set(window.flagged) & set(window.truth)) for window in self.windows
        )
        return (
            1.0 if total_flagged == 0 else total_hits / total_flagged,
            1.0 if total_truth == 0 else total_hits / total_truth,
        )


def run_resilience_case(case: ResilienceCase) -> ResilienceOutcome:
    """Run one resilience cell end to end and score it.

    Every ``window_s`` the extractor's flags are compared with the
    injector's ground truth over the same window: a service counts as a
    true culprit when a significant injection targeting it (or pressuring
    a node it lives on) overlapped the window; scoring is restricted to
    services that appeared on critical paths (localization can only rank
    what the traces show).  With ``case.train_svm`` the SVM filter is additionally
    trained online from ground truth between windows, as in Fig. 9(b).
    """
    spec = resilience_scenario_spec(case)
    from repro.experiments.harness import ExperimentHarness

    harness = ExperimentHarness.from_spec(spec)
    tenant = harness.tenant("victim") if case.multi_tenant else harness.tenants[0]
    scorer = LocalizationScorer(
        harness,
        tenant,
        window_s=case.window_s,
        significant_intensity=case.significant_intensity,
        train_svm=case.train_svm,
    )
    scorer.attach(until_s=spec.duration_s)
    windows = scorer.windows
    result = harness.run(
        duration_s=spec.duration_s, sample_period_s=spec.sample_period_s
    )

    if case.multi_tenant:
        victim = result.tenant_results["victim"]
        summary = victim.summary()
        mitigation = victim.mitigation
        neighbor_summary = result.tenant_results["neighbor"].summary()
    else:
        summary = result.summary()
        mitigation = result.mitigation
        neighbor_summary = None

    precision, recall = scorer.micro_averages()
    return ResilienceOutcome(
        case=case,
        windows=windows,
        precision=precision,
        recall=recall,
        slo_violation_seconds=float(sum(mitigation.mitigation_times_s())),
        time_to_mitigate_s=mitigation.mean_mitigation_time_s(),
        summary=summary,
        neighbor_summary=neighbor_summary,
    )


# ---------------------------------------------------------------------------
# The controller × campaign grid
# ---------------------------------------------------------------------------

def resilience_sweep_grid(
    controllers: Sequence[str] = DEFAULT_CONTROLLERS,
    campaigns: Sequence[str] = CAMPAIGN_KINDS,
    applications: Sequence[str] = ("social_network",),
    seeds: Sequence[int] = (0,),
    base: Optional[ResilienceCase] = None,
    **case_overrides,
) -> List[ResilienceCase]:
    """Expand the controller × campaign × application × seed cross product.

    ``base`` supplies defaults for every field the grid does not set;
    extra keyword arguments override fields on every case (e.g.
    ``duration_s=30.0, replicas_per_service=2``) — the grid axes always
    win over them.  Application-major, campaign-then-controller order,
    mirroring :func:`repro.experiments.sweep.sweep_grid`.
    """
    from repro.baselines.base import resolve_controller_name

    for controller in controllers:
        resolve_controller_name(controller)  # fail fast on typos
    template = base if base is not None else ResilienceCase()
    if case_overrides:
        template = template.with_overrides(**case_overrides)
    cases: List[ResilienceCase] = []
    for application in applications:
        for campaign in campaigns:
            for controller in controllers:
                for seed in seeds:
                    cases.append(
                        template.with_overrides(
                            application=application,
                            campaign=campaign,
                            controller=controller,
                            seed=int(seed),
                        )
                    )
    return cases


def _run_one_case(case: ResilienceCase) -> ResilienceOutcome:
    """Worker entry point (module-level so it pickles across processes)."""
    return run_resilience_case(case)


def run_resilience_sweep(
    cases: Sequence[ResilienceCase],
    workers: int = 1,
    progress=None,
) -> List[ResilienceOutcome]:
    """Run every case, optionally across ``workers`` spawned processes.

    Returns one :class:`ResilienceOutcome` per case **in the input
    order** regardless of which worker finished first (see
    :func:`repro.experiments.sweep.run_parallel`).  Every stochastic
    stream derives from the case's own seed, so the parallel sweep is
    bit-identical to the serial one.
    """
    from repro.experiments.sweep import run_parallel

    return run_parallel(cases, _run_one_case, workers=workers, progress=progress)


def campaign_macro_spec(duration_s: float, seed: int = 0) -> ScenarioSpec:
    """The campaign-heavy perf macro scenario (see :mod:`repro.perf`).

    Dense random service-wide anomalies (≈1 arrival/s) over a replicated
    social network: every injection resolves, pressures, and later
    releases multiple nodes, and scale events trigger target
    re-resolution — the anomaly subsystem's hot paths, timed end to end.
    """
    from functools import partial

    from repro.experiments.routing import replicated_services
    from repro.experiments.scenario import random_campaign_builder

    return ScenarioSpec(
        application="social_network",
        seed=seed,
        duration_s=duration_s,
        load_rps=40.0,
        controller="none",
        replicas=replicated_services("social_network", 2),
        campaign_builder=partial(
            random_campaign_builder,
            duration_s=duration_s,
            rate_per_s=1.0,
            resource_only=True,
            scope=AnomalyScope.SERVICE_WIDE.value,
            # Arrivals must start inside even the 5 s quick-mode window,
            # or the CI perf gate would time an anomaly-free scenario.
            start_s=0.5,
        ),
    )


# ---------------------------------------------------------------------------
# Presets (the CLI front end)
# ---------------------------------------------------------------------------

#: Named single-case presets for ``repro.cli run resilience --preset ...``.
PRESETS: Dict[str, ResilienceCase] = {
    "single_sweep": ResilienceCase(campaign="single_sweep"),
    "multi_anomaly": ResilienceCase(campaign="multi_anomaly"),
    "random": ResilienceCase(campaign="random", duration_s=60.0),
    "multi_tenant": ResilienceCase(
        campaign="random",
        duration_s=45.0,
        scope=AnomalyScope.TENANT.value,
        multi_tenant=True,
        application="hotel_reservation",
        load_rps=20.0,
    ),
}


def run_resilience(preset: str = "multi_anomaly", **overrides) -> ResilienceOutcome:
    """Run one named resilience preset (None-valued overrides are ignored)."""
    try:
        case = PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown resilience preset {preset!r}; known: {known}")
    effective = {key: value for key, value in overrides.items() if value is not None}
    if effective:
        case = case.with_overrides(**effective)
    return run_resilience_case(case)
