"""Composed-policy experiment: the staged controller stack end to end.

One canonical two-tenant scenario exercising the whole
:mod:`repro.controllers` framework at once — a latency-sensitive victim
tenant under an anomaly campaign, managed by the ``composed`` controller
in ``svm_gated_rl`` mode (FIRM's RL estimator behind the critic-trust /
admission-calm gate, AIMD as the heuristic fallback, online DDPG
fine-tuning while serving), co-located with an aggressor tenant running a
``priority_chain`` composition of the same members.  The same spec backs
the ``controller_stack`` perf macro (run once with the controller-manager
off and once on, so the shared per-window detection win is measured on
byte-identical workloads) and the ``controllers-smoke`` CI step.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict

from repro.experiments.scenario import (
    ScenarioSpec,
    TenantSpec,
    random_campaign_builder,
)


def composed_stack_spec(
    duration_s: float = 20.0,
    seed: int = 0,
    mode: str = "svm_gated_rl",
    online_learning: bool = True,
    controller_manager: bool = False,
) -> ScenarioSpec:
    """The canonical composed-controller-stack scenario.

    Two co-located tenants on a small shared cluster: ``victim`` runs the
    gated composition under a resource-anomaly campaign (so detection,
    the SVM, and the RL estimator all do real work), ``aggressor`` runs a
    priority chain of the same members and supplies the interference.
    """
    return ScenarioSpec(
        seed=seed,
        duration_s=duration_s,
        cluster_nodes=(2, 0),
        controller_manager=controller_manager,
        tenants=[
            TenantSpec(
                name="victim",
                application="social_network",
                load_rps=30.0,
                controller="composed",
                controller_kwargs={
                    "mode": mode,
                    "members": ["firm", "aimd"],
                    "online_learning": online_learning,
                },
                campaign_builder=partial(
                    random_campaign_builder,
                    duration_s=duration_s,
                    rate_per_s=0.4,
                    resource_only=True,
                    start_s=0.5,
                ),
            ),
            TenantSpec(
                name="aggressor",
                application="hotel_reservation",
                load_rps=40.0,
                controller="composed",
                controller_kwargs={
                    "mode": "priority_chain",
                    "members": ["firm", "aimd"],
                },
            ),
        ],
    )


def run_composed(
    duration_s: float = 10.0,
    seed: int = 0,
    mode: str = "svm_gated_rl",
    online_learning: bool = True,
    controller_manager: bool = True,
) -> Dict[str, Any]:
    """Run the composed stack and report the gate's behaviour.

    Returns headline numbers plus, per tenant: the active composition,
    every journaled-style policy switch, and the tenant manager's stage
    cache counters (``computed`` vs ``hits`` — the shared-detection win).
    """
    from repro.experiments.harness import ExperimentHarness

    spec = composed_stack_spec(
        duration_s=duration_s,
        seed=seed,
        mode=mode,
        online_learning=online_learning,
        controller_manager=controller_manager,
    )
    harness = ExperimentHarness.from_spec(spec)
    result = harness.run(
        duration_s=spec.duration_s,
        sample_period_s=spec.sample_period_s,
        warmup_s=spec.warmup_s,
    )
    tenants: Dict[str, Any] = {}
    for tenant in harness.tenants:
        controller = tenant.controller
        entry: Dict[str, Any] = {
            "controller": tenant.controller_name,
            "mode": getattr(controller, "mode", None),
            "online_learning": getattr(controller, "online_learning", None),
            "rounds": len(getattr(controller, "rounds", ())),
            "active_policy": getattr(controller, "active_policy", None),
            "stage_stats": dict(tenant.manager.stats),
            "policy_switches": [
                {
                    "time_s": switch.time_s,
                    "from": switch.from_policy,
                    "to": switch.to_policy,
                    "reason": switch.reason,
                    "td_error": switch.td_error,
                }
                for switch in getattr(controller, "switches", ())
            ],
        }
        rl = getattr(controller, "rl_member", None)
        if rl is not None:
            entry["last_critic_loss"] = rl.last_critic_loss
        tenants[tenant.display_name] = entry
    return {
        "scenario_id": spec.scenario_id,
        "controller_manager": controller_manager,
        "summary": result.summary(),
        "per_tenant": result.per_tenant_summary(),
        "controllers": tenants,
    }
