"""Parallel scenario sweeps.

Low-latency cloud-service studies get their results from large
seed x load x policy grids (cf. the Distributed Join-the-Idle-Queue
evaluation in PAPERS.md).  This module makes that experiment shape cheap:

* :func:`sweep_grid` expands the cross product of applications,
  controllers, seeds, and loads into a list of
  :class:`~repro.experiments.scenario.ScenarioSpec`;
* :func:`tenant_sweep_grid` expands a consolidation grid of multi-tenant
  specs (N identical co-located tenants x seeds);
* :func:`routing_sweep_grid` crosses load-balancing policies x controllers
  x tenant counts, so routing regimes are evaluated against every scaling
  policy instead of only the default balancer;
* :func:`run_sweep` runs any list of specs (single- or multi-tenant)
  either serially or fanned out over ``multiprocessing`` workers,
  returning one :class:`SweepOutcome` per spec **in the input order**
  regardless of which worker finished first.

Each spec carries its own master seed, and every stochastic subsystem
derives named substreams from it, so a scenario's result is a pure
function of its spec: the parallel sweep is bit-identical to the serial
one.  Workers are started with the ``spawn`` method so no parent-process
state (RNG, request-id counters) leaks into the runs.

The process fan-out is built on :class:`WorkerTeam`, a persistent pool of
*actor* processes driven over pipes.  Unlike ``multiprocessing.Pool``,
team members hold state between calls and expose a split send/receive
API, which is what the sharded engine
(:mod:`repro.experiments.sharded`) needs: every shard worker keeps a
live simulation between window barriers and all shards must advance
concurrently (send to all, then collect from all).  :func:`run_parallel`
is rebased on the same pool, keeping its contract — input-order results
and in-order progress callbacks — unchanged.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from functools import partial
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.scenario import (
    ScenarioSpec,
    random_campaign_builder,
    run_scenario,
)


@dataclass
class SweepOutcome:
    """Result of one scenario of a sweep: its spec plus headline numbers.

    Multi-tenant scenarios additionally carry ``tenant_summaries`` (one
    headline dict per tenant, in tenant order); single-tenant rows are
    unchanged.
    """

    spec: ScenarioSpec
    summary: Dict[str, float] = field(default_factory=dict)
    tenant_summaries: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def scenario_id(self) -> str:
        return self.spec.scenario_id

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-friendly row (used by the CLI and reports)."""
        row: Dict[str, Any] = {
            "application": self.spec.application,
            "controller": self.spec.controller,
            "seed": self.spec.seed,
            "load_rps": self.spec.load_rps,
            "duration_s": self.spec.duration_s,
            **self.summary,
        }
        if self.spec.routing:
            row["routing"] = self.spec.routing
        if self.spec.tenants:
            row["application"] = "+".join(t.application for t in self.spec.tenants)
            row["controller"] = "+".join(t.controller for t in self.spec.tenants)
            # Total constant offered load across tenants (pattern-driven
            # tenants contribute no constant rate and are excluded).
            row["load_rps"] = sum(
                t.load_rps for t in self.spec.tenants if t.pattern is None
            )
            row["tenant_count"] = len(self.spec.tenants)
            row["tenants"] = dict(self.tenant_summaries)
        return row


def sweep_grid(
    applications: Sequence[str] = ("social_network",),
    controllers: Sequence[str] = ("firm", "aimd", "k8s"),
    seeds: Sequence[int] = (0,),
    loads_rps: Sequence[float] = (50.0,),
    duration_s: float = 60.0,
    anomaly_rate_per_s: float = 0.0,
    min_intensity: float = 0.5,
    base: Optional[ScenarioSpec] = None,
    controller_manager: bool = False,
) -> List[ScenarioSpec]:
    """Expand a grid of scenarios into specs (application-major order).

    ``anomaly_rate_per_s > 0`` adds a seed-derived random anomaly campaign
    to every scenario.  ``base`` supplies defaults for every field the grid
    does not set (warmup, sample period, request mix, ...).
    ``controller_manager=True`` runs every spec with the staged
    controller-manager (memoized per-window stages — byte-identical
    results, cheaper control rounds on multi-consumer stacks).
    """
    template = base if base is not None else ScenarioSpec()
    campaign_builder: Optional[Callable] = None
    if anomaly_rate_per_s > 0:
        campaign_builder = partial(
            random_campaign_builder,
            duration_s=duration_s,
            rate_per_s=anomaly_rate_per_s,
            min_intensity=min_intensity,
        )
    specs: List[ScenarioSpec] = []
    for application in applications:
        for load in loads_rps:
            for controller in controllers:
                for seed in seeds:
                    specs.append(
                        template.with_overrides(
                            application=application,
                            seed=int(seed),
                            duration_s=duration_s,
                            load_rps=float(load),
                            controller=controller,
                            campaign_builder=campaign_builder,
                            campaign=None,
                            controller_manager=controller_manager,
                        )
                    )
    return specs


def tenant_sweep_grid(
    tenant_counts: Sequence[int] = (1, 2, 4),
    application: str = "hotel_reservation",
    controller: str = "none",
    seeds: Sequence[int] = (0,),
    load_rps: float = 25.0,
    duration_s: float = 30.0,
    cluster_nodes: Optional[tuple] = (1, 0),
    placement: Optional[str] = None,
    node_quota: Optional[int] = None,
    anomaly_rate_per_s: float = 0.0,
    controller_manager: bool = False,
) -> List[ScenarioSpec]:
    """Expand a consolidation grid: N identical co-located tenants x seeds.

    Each spec hosts ``n`` identical tenants (same application, load, and
    controller — the controller runs once *per tenant*, scoped to that
    tenant's services) on one shared cluster, so sweeping ``tenant_counts``
    traces how per-tenant SLO statistics degrade as consolidation grows.
    ``anomaly_rate_per_s`` adds a per-tenant random resource-anomaly
    campaign, as in :func:`sweep_grid`.

    Note the default topology is a deliberately small single-node cluster
    (``cluster_nodes=(1, 0)``) so consolidation pressure is visible at few
    tenants; pass ``cluster_nodes=None`` for the paper's 15-node default
    when comparing against single-tenant sweeps.
    """
    from repro.experiments.interference import identical_tenants

    specs: List[ScenarioSpec] = []
    for count in tenant_counts:
        for seed in seeds:
            specs.append(
                identical_tenants(
                    int(count),
                    application=application,
                    load_rps=load_rps,
                    controller=controller,
                    duration_s=duration_s,
                    seed=int(seed),
                    cluster_nodes=cluster_nodes,
                    placement=placement,
                    node_quota=node_quota,
                    anomaly_rate_per_s=anomaly_rate_per_s,
                ).with_overrides(controller_manager=controller_manager)
            )
    return specs


def routing_sweep_grid(
    policies: Sequence[str] = (
        "least_in_flight",
        "round_robin",
        "power_of_two_choices",
        "join_the_idle_queue",
    ),
    controllers: Sequence[str] = ("none", "aimd"),
    tenant_counts: Sequence[int] = (1, 2),
    application: str = "hotel_reservation",
    seeds: Sequence[int] = (0,),
    load_rps: float = 25.0,
    duration_s: float = 30.0,
    cluster_nodes: Optional[tuple] = (3, 0),
    placement: Optional[str] = None,
    anomaly_rate_per_s: float = 0.25,
    replicas_per_service: int = 3,
) -> List[ScenarioSpec]:
    """Expand a routing grid: policies x controllers x tenant counts x seeds.

    Every scenario is the :func:`~repro.experiments.interference.identical_tenants`
    consolidation shape with the spec-level ``routing`` field set, so each
    load-balancing policy is evaluated under every scaling policy and
    consolidation level (policy-major order: all scenarios of one policy
    are adjacent, mirroring :func:`sweep_grid`'s controller-major order).

    By default every tenant's services are replicated
    (``replicas_per_service``) over a small multi-node cluster and hit by
    per-tenant resource anomalies, so replicas of one service run at
    different speeds and the routing policy has real choices to make —
    the regime where policies separate (see :mod:`repro.experiments.routing`).
    Routing draws come from dedicated RNG substreams, so scenarios of
    different policies still share identical arrivals, service times, and
    campaigns — and the parallel sweep stays bit-identical to the serial
    one.
    """
    from repro.experiments.interference import identical_tenants
    from repro.experiments.routing import replicated_services
    from repro.routing.base import resolve_policy_name

    replicas = (
        replicated_services(application, replicas_per_service)
        if replicas_per_service > 1
        else None
    )
    specs: List[ScenarioSpec] = []
    for policy in policies:
        canonical = resolve_policy_name(policy)
        for controller in controllers:
            for count in tenant_counts:
                for seed in seeds:
                    spec = identical_tenants(
                        int(count),
                        application=application,
                        load_rps=load_rps,
                        controller=controller,
                        duration_s=duration_s,
                        seed=int(seed),
                        cluster_nodes=cluster_nodes,
                        placement=placement,
                        anomaly_rate_per_s=anomaly_rate_per_s,
                    )
                    if replicas:
                        spec = spec.with_overrides(
                            tenants=[
                                tenant.with_overrides(replicas=dict(replicas))
                                for tenant in spec.tenants
                            ]
                        )
                    specs.append(spec.with_overrides(routing=canonical))
    return specs


def _run_one(spec: ScenarioSpec) -> SweepOutcome:
    """Worker entry point: run one spec and return its headline summary."""
    result = run_scenario(spec)
    return SweepOutcome(
        spec=spec,
        summary=result.summary(),
        tenant_summaries=result.per_tenant_summary(),
    )


class WorkerError(RuntimeError):
    """An actor method raised inside a worker process.

    The remote traceback is embedded in the message; the original
    exception object stays in the worker (it may not be picklable).
    """


def _team_member_main(conn, actor_factory: Callable[[int], Any], index: int) -> None:
    """Worker-process loop: build the actor, then serve method calls.

    Protocol (one request, one response, strictly alternating per pipe):
    parent sends ``(method_name, args_tuple)``; worker replies
    ``("ok", result)`` or ``("error", formatted_traceback)``.  The
    ``"__stop__"`` method exits the loop without a reply.
    """
    try:
        actor = actor_factory(index)
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", None))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        method, args = message
        if method == "__stop__":
            # No reply: the parent closes its pipe end right after sending
            # the stop, so an acknowledgement would hit a broken pipe.
            break
        try:
            result = getattr(actor, method)(*args)
        except BaseException:
            conn.send(("error", traceback.format_exc()))
        else:
            conn.send(("ok", result))
    conn.close()


class WorkerTeam:
    """A persistent team of actor processes controlled over pipes.

    Each member is a ``spawn``-started process hosting one actor built by
    ``actor_factory(member_index)`` (the factory must be picklable, e.g.
    a module-level class or :func:`functools.partial` thereof).  Spawn
    keeps parent-process state (RNG, request-id counters) out of the
    workers, matching the sweep's determinism contract.

    The API is deliberately split into :meth:`send` and :meth:`recv` so
    callers can fan a call out to every member before collecting any
    reply — the two-phase shape both the dynamic sweep dispatcher and the
    sharded engine's window barrier need.  Each pipe strictly alternates
    one request with one response; interleave sends to *different*
    members freely, but never send twice to one member without receiving.
    """

    def __init__(self, actor_factory: Callable[[int], Any], size: int) -> None:
        if size < 1:
            raise ValueError(f"team size must be >= 1, got {size}")
        context = multiprocessing.get_context("spawn")
        self._pipes = []
        self._processes = []
        self._closed = False
        try:
            for index in range(size):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_team_member_main,
                    args=(child_end, actor_factory, index),
                    daemon=True,
                )
                process.start()
                child_end.close()
                self._pipes.append(parent_end)
                self._processes.append(process)
            # Collect the construction acknowledgement from every member so
            # a factory that blows up surfaces here, not at first use.
            for index in range(size):
                self.recv(index)
        except BaseException:
            self.close(graceful=False)
            raise

    @property
    def size(self) -> int:
        return len(self._processes)

    def send(self, member: int, method: str, *args: Any) -> None:
        """Dispatch ``method(*args)`` to ``member`` without waiting."""
        self._pipes[member].send((method, args))

    def recv(self, member: int) -> Any:
        """Collect the pending reply from ``member`` (blocking)."""
        try:
            status, payload = self._pipes[member].recv()
        except EOFError:
            raise WorkerError(f"worker {member} exited without replying")
        if status == "error":
            raise WorkerError(f"worker {member} raised:\n{payload}")
        return payload

    def call(self, member: int, method: str, *args: Any) -> Any:
        """Synchronous convenience: send to one member and await the reply."""
        self.send(member, method, *args)
        return self.recv(member)

    def call_all(self, method: str, *args: Any) -> List[Any]:
        """Fan ``method`` out to every member, collect replies in member order."""
        for member in range(self.size):
            self.send(member, method, *args)
        return [self.recv(member) for member in range(self.size)]

    def wait(self, members: Sequence[int]) -> List[int]:
        """Block until at least one of ``members`` has a reply ready."""
        index_of = {self._pipes[member]: member for member in members}
        ready = _wait_connections(list(index_of))
        return [index_of[conn] for conn in ready]

    def close(self, graceful: bool = True) -> None:
        """Stop every member and reap the processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if graceful:
            for pipe, process in zip(self._pipes, self._processes):
                if not process.is_alive():
                    continue
                try:
                    pipe.send(("__stop__", ()))
                except (BrokenPipeError, OSError):
                    pass
        for pipe in self._pipes:
            try:
                pipe.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)

    def __enter__(self) -> "WorkerTeam":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close(graceful=exc_info[0] is None)


class _FunctionActor:
    """Adapter: expose a plain ``worker(item)`` callable as a team actor."""

    def __init__(self, worker: Callable, index: int) -> None:
        self._worker = worker

    def run(self, item: Any) -> Any:
        return self._worker(item)


def run_parallel(
    items: Iterable,
    worker: Callable,
    workers: int = 1,
    progress: Optional[Callable[[int, int, Any], None]] = None,
) -> List:
    """Run ``worker(item)`` for every item, optionally across processes.

    The generic engine behind :func:`run_sweep` (and the resilience
    sweep): results come back **in input order** regardless of which
    worker finished first, and ``progress(done_count, total, outcome)``
    fires in the parent process as each item completes (in input order).
    ``worker`` must be a picklable module-level callable; workers use the
    ``spawn`` start method (via :class:`WorkerTeam`) so no parent-process
    state (RNG, request-id counters) leaks into the runs.
    """
    item_list = list(items)
    total = len(item_list)
    outcomes: List = []
    if workers <= 1 or total <= 1:
        for index, item in enumerate(item_list):
            outcome = worker(item)
            outcomes.append(outcome)
            if progress is not None:
                progress(index + 1, total, outcome)
        return outcomes

    results: List = [None] * total
    completed = [False] * total
    next_to_emit = 0
    with WorkerTeam(partial(_FunctionActor, worker), size=min(workers, total)) as team:
        busy: Dict[int, int] = {}
        next_item = 0
        for member in range(team.size):
            team.send(member, "run", item_list[next_item])
            busy[member] = next_item
            next_item += 1
        while busy:
            for member in team.wait(sorted(busy)):
                item_index = busy.pop(member)
                results[item_index] = team.recv(member)
                completed[item_index] = True
                if next_item < total:
                    team.send(member, "run", item_list[next_item])
                    busy[member] = next_item
                    next_item += 1
            while next_to_emit < total and completed[next_to_emit]:
                if progress is not None:
                    progress(next_to_emit + 1, total, results[next_to_emit])
                next_to_emit += 1
    return results


def run_sweep(
    specs: Iterable[ScenarioSpec],
    workers: int = 1,
    progress: Optional[Callable[[int, int, SweepOutcome], None]] = None,
) -> List[SweepOutcome]:
    """Run every spec, optionally across ``workers`` processes.

    Returns one :class:`SweepOutcome` per spec, in the order the specs were
    given.  ``progress(done_count, total, outcome)`` is invoked in the
    parent process as each scenario finishes (in input order).
    """
    return run_parallel(specs, _run_one, workers=workers, progress=progress)
