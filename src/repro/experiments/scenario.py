"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures everything that defines one experiment
scenario — application, seed, duration, workload shape, request mix,
controller (by registry name) and its options, and the anomaly campaign —
as plain data.  Specs are the currency of the experiment stack: every
figure/table module builds its harnesses from specs via
:meth:`repro.experiments.harness.ExperimentHarness.from_spec`, and the
sweep runner (:mod:`repro.experiments.sweep`) fans grids of specs out over
worker processes.

A spec describes either a classic **single-tenant** scenario (one
application, one workload, one controller — the fields on the spec itself)
or a **multi-tenant** one: a list of :class:`TenantSpec` entries, each with
its own application graph, workload, SLO targets, anomaly campaign, and
controller, all co-located on one shared simulated cluster so contention
flows across tenants.  Single-tenant specs are untouched by the
multi-tenant machinery and produce byte-identical results.

Specs must stay picklable so they can cross process boundaries: prefer
module-level functions (or :func:`functools.partial` over them) for
``campaign_builder``, never lambdas or closures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence, Tuple

from repro.anomaly.anomalies import ANOMALY_TYPES, AnomalyType
from repro.anomaly.campaigns import AnomalyCampaign, random_campaign
from repro.workload.patterns import ArrivalPattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.harness import ExperimentHarness, ExperimentResult


def _admission_name(admission: Optional[Any]) -> Optional[str]:
    """The display name of an ``admission`` field value (None when unset)."""
    if admission is None:
        return None
    return admission if isinstance(admission, str) else admission.name


@dataclass
class TenantSpec:
    """One tenant of a multi-tenant scenario.

    Attributes
    ----------
    name:
        Unique tenant identity within the scenario (e.g. ``"victim"``).
        Service names are namespaced under it (``victim/nginx``), traces,
        spans, containers, and telemetry samples are tagged with it.
    application:
        Benchmark application name (see :mod:`repro.apps.catalog`).
    load_rps / pattern / request_mix:
        The tenant's own workload, exactly as on :class:`ScenarioSpec`.
    controller / controller_kwargs:
        The tenant's own resource controller (registry name); controllers
        of different tenants run side by side, each scoped to its tenant's
        services through a
        :class:`~repro.cluster.cluster.TenantClusterView`.
    campaign / campaign_builder:
        Optional per-tenant anomaly campaign.  The builder is invoked with
        the tenant's runtime context (which exposes ``.app`` and ``.rng``
        like a single-tenant harness, so
        :func:`random_campaign_builder` works unchanged) and must stay
        picklable for parallel sweeps.
    slo_scale:
        Multiplier applied to the application's declared per-request-type
        SLO latencies (e.g. ``0.5`` = a premium tenant with twice-as-tight
        targets).
    slo_latency_ms:
        Optional per-request-type SLO overrides (by request-type name);
        applied after ``slo_scale``.
    node_quota:
        Optional cap on how many distinct nodes this tenant's containers
        may occupy (enforced by the scheduler for deployments and
        scale-outs alike).
    routing:
        Optional load-balancing policy (registry name, see
        :mod:`repro.routing`) applied to every service this tenant owns;
        tenants of one shared cluster may each run a different policy.
        None inherits the scenario's cluster-wide ``routing`` (and, when
        that is unset too, the default ``least_in_flight``).
    replicas:
        Optional per-service initial replica overrides (by the tenant's
        un-namespaced service name).  Services are topped up to the given
        count right after deployment — the knob routing studies need,
        since policies only differ where a replica set offers a choice.
    admission:
        Optional admission-control policy for this tenant's workload: a
        preset name (see
        :data:`~repro.admission.config.ADMISSION_PRESETS`) or a full
        :class:`~repro.admission.config.AdmissionConfig`.  None inherits
        the scenario-wide ``admission`` (and, when that is unset too,
        requests bypass admission entirely).
    """

    name: str
    application: str = "social_network"
    load_rps: float = 50.0
    pattern: Optional[ArrivalPattern] = None
    request_mix: Optional[Sequence[Tuple[str, float]]] = None
    controller: str = "none"
    controller_kwargs: Dict[str, Any] = field(default_factory=dict)
    campaign: Optional[AnomalyCampaign] = None
    campaign_builder: Optional[Callable] = None
    slo_scale: float = 1.0
    slo_latency_ms: Optional[Dict[str, float]] = None
    node_quota: Optional[int] = None
    routing: Optional[str] = None
    replicas: Optional[Dict[str, int]] = None
    admission: Optional[Any] = None

    def with_overrides(self, **overrides) -> "TenantSpec":
        """A copy of this tenant spec with the given fields replaced."""
        return replace(self, **overrides)


@dataclass
class ScenarioSpec:
    """One fully specified experiment scenario.

    Attributes
    ----------
    application:
        Benchmark application name (see :mod:`repro.apps.catalog`).
    seed:
        Master seed; fully determines the run (workload arrivals, service
        times, campaigns, RL exploration all derive substreams from it).
    duration_s:
        Scenario duration in simulated seconds.
    load_rps:
        Offered load for the default constant arrival pattern; ignored when
        ``pattern`` is given.
    pattern:
        Optional explicit arrival pattern (diurnal, spike, ...).
    request_mix:
        Optional ``(request_type, weight)`` pairs overriding the
        application's declared mix.
    controller:
        Registry name of the resource controller (``"firm"``, ``"aimd"``,
        ``"kubernetes_hpa"``/``"k8s"``, ``"firm_multi"``, ``"none"``, ...).
    controller_kwargs:
        Keyword arguments forwarded to the controller factory.
    campaign:
        Optional pre-built anomaly campaign.
    campaign_builder:
        Optional callable ``builder(harness) -> AnomalyCampaign | None``
        invoked against the freshly built harness (use for campaigns that
        need the harness RNG or service names); ignored when ``campaign``
        is given.  Must be picklable for parallel sweeps.
    warmup_s:
        Seconds at the start excluded from SLO accounting.
    sample_period_s:
        Period of the harness's utilization/mitigation sampling.
    tenants:
        Optional list of :class:`TenantSpec`.  When given, the scenario is
        multi-tenant: the single-tenant fields ``application``, ``load_rps``,
        ``pattern``, ``request_mix``, ``controller``, ``controller_kwargs``,
        ``campaign`` and ``campaign_builder`` are ignored and each tenant
        brings its own.  ``seed``, ``duration_s``, ``warmup_s`` and
        ``sample_period_s`` stay scenario-wide.
    placement:
        Optional scheduler placement policy name (see
        :class:`~repro.cluster.scheduler.PlacementPolicy`), e.g.
        ``"tenant_anti_affinity"`` to keep tenants on disjoint nodes or
        ``"binpack"`` to maximize interference.  None keeps the default
        spreading scheduler (byte-identical to the pre-multi-tenant
        behaviour).
    cluster_nodes:
        Optional ``(x86_nodes, ppc64_nodes)`` pair overriding the default
        15-node topology — small clusters make cross-tenant contention easy
        to provoke.  None keeps the paper's 9+6 default.
    routing:
        Optional cluster-wide load-balancing policy (registry name, see
        :mod:`repro.routing`): how the runtimes pick which replica serves
        each span.  Applies to every service of every tenant unless a
        tenant overrides it; None keeps the default ``least_in_flight``
        (byte-identical to the pre-routing-subsystem behaviour).
    dispatchers / dispatch_variant / dispatch_staleness_s:
        Distributed-dispatch knobs.  ``dispatchers >= 2`` replaces the
        omniscient router with a :class:`~repro.routing.DispatcherSet` of
        that many dispatchers, each holding a bounded-staleness partial
        view refreshed every ``dispatch_staleness_s`` simulated seconds,
        selecting replicas per ``dispatch_variant`` (``"jiq"``,
        ``"ewma"``, or ``"p2c"``; see
        :data:`~repro.routing.DISPATCH_VARIANTS`).  Mutually exclusive
        with ``routing``.  ``dispatchers=1`` (the default) never
        instantiates a dispatcher set — the classic router runs
        byte-identically.
    admission:
        Optional admission-control policy applied to every tenant's
        workload entry: a preset name (``"naive_retries"``,
        ``"survival_kit"``, ...; see
        :data:`~repro.admission.config.ADMISSION_PRESETS`) or a full
        :class:`~repro.admission.config.AdmissionConfig`.  None (and the
        ``"none"`` preset) leaves request submission byte-identical to
        the pre-admission runtime.
    replicas:
        Optional per-service initial replica overrides for single-tenant
        scenarios (service name -> replica count); services are topped up
        right after deployment, so load-balancing policies have a replica
        set to choose over from the first request.  Multi-tenant scenarios
        use the per-tenant field instead.
    telemetry_mode:
        ``"sketch"`` (default) runs the constant-memory telemetry pipeline:
        ring-buffer windowed statistics, P² quantile estimators, and
        reservoir-sampled trace retention.  ``"raw"`` restores the
        historical full-history pipeline byte-identically (full per-sample
        telemetry deques, FIFO trace store, per-query windowed scans) —
        the compatibility flag for trace-distribution studies and
        regression baselines.  The mode is deliberately excluded from
        ``scenario_id`` so sweep keys stay stable.
    observability:
        When true, the harness carries a per-run
        :class:`~repro.obs.run.Observability` bundle — a structured event
        journal (controller decisions, routing picks, anomaly
        inject/clear, SLO-window transitions) plus a metrics registry —
        and the result exposes them as ``result.journal`` /
        ``result.metrics``.  Off by default: with it off no
        instrumentation site records anything, so every pinned
        determinism family stays byte-identical.  Like
        ``telemetry_mode``, excluded from ``scenario_id``.
    """

    application: str = "social_network"
    seed: int = 0
    duration_s: float = 60.0
    load_rps: float = 50.0
    pattern: Optional[ArrivalPattern] = None
    request_mix: Optional[Sequence[Tuple[str, float]]] = None
    controller: str = "none"
    controller_kwargs: Dict[str, Any] = field(default_factory=dict)
    campaign: Optional[AnomalyCampaign] = None
    campaign_builder: Optional[Callable[["ExperimentHarness"], Optional[AnomalyCampaign]]] = None
    warmup_s: float = 0.0
    sample_period_s: float = 1.0
    tenants: Optional[Sequence[TenantSpec]] = None
    placement: Optional[str] = None
    cluster_nodes: Optional[Tuple[int, int]] = None
    routing: Optional[str] = None
    dispatchers: int = 1
    dispatch_variant: str = "jiq"
    dispatch_staleness_s: float = 0.25
    admission: Optional[Any] = None
    replicas: Optional[Dict[str, int]] = None
    telemetry_mode: str = "sketch"
    observability: bool = False
    #: Memoize controller stages per control window through each tenant's
    #: ControllerManager.  Stages are pure reads, so results are
    #: byte-identical either way (pinned by the determinism suite);
    #: excluded from scenario_id for the same reason telemetry_mode and
    #: observability are.
    controller_manager: bool = False

    @property
    def is_multi_tenant(self) -> bool:
        """Whether this spec describes a multi-tenant scenario."""
        return bool(self.tenants)

    @property
    def scenario_id(self) -> str:
        """Stable human-readable identity (used to key sweep results)."""
        routing_part = f"/routing={self.routing}" if self.routing else ""
        if self.dispatchers > 1:
            routing_part += (
                f"/dispatchers={self.dispatchers}:{self.dispatch_variant}"
                f"@{self.dispatch_staleness_s:g}"
            )
        admission = _admission_name(self.admission)
        if admission is not None and admission != "none":
            routing_part += f"/admission={admission}"
        if self.tenants:
            tenant_part = "+".join(
                f"{tenant.name}:{tenant.application}/{tenant.controller}"
                + (f"/{tenant.routing}" if tenant.routing else "")
                + f"@{'pattern' if tenant.pattern is not None else f'{tenant.load_rps:g}'}"
                for tenant in self.tenants
            )
            placement_part = f"/placement={self.placement}" if self.placement else ""
            return (
                f"multi[{tenant_part}]"
                f"/seed={self.seed}/duration={self.duration_s:g}"
                f"{placement_part}{routing_part}"
            )
        return (
            f"{self.application}/{self.controller}"
            f"/seed={self.seed}/load={self.load_rps:g}/duration={self.duration_s:g}"
            f"{routing_part}"
        )

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **overrides)

    def build(self) -> "ExperimentHarness":
        """Build the fully wired harness for this spec."""
        from repro.experiments.harness import ExperimentHarness

        return ExperimentHarness.from_spec(self)


def run_scenario(spec: ScenarioSpec) -> "ExperimentResult":
    """Build and run one scenario end to end, returning its result."""
    harness = spec.build()
    return harness.run(
        duration_s=spec.duration_s,
        sample_period_s=spec.sample_period_s,
        warmup_s=spec.warmup_s,
    )


def random_campaign_builder(
    harness: "ExperimentHarness",
    duration_s: float,
    rate_per_s: float = 0.33,
    min_intensity: float = 0.3,
    resource_only: bool = False,
    scope: Optional[str] = None,
    start_s: float = 5.0,
):
    """The canonical picklable ``campaign_builder`` for random injection.

    Use with :func:`functools.partial` to bind parameters into a spec;
    ``resource_only`` excludes workload-variation anomalies (the §4.1
    baseline-comparison setting) and ``scope`` selects each injection's
    :class:`~repro.anomaly.anomalies.AnomalyScope` (None keeps the
    historical first-replica ``node`` scope).  ``harness`` may be either a
    full :class:`~repro.experiments.harness.ExperimentHarness` or one
    tenant's :class:`~repro.experiments.harness.TenantRuntime` — both
    expose the ``.app`` and ``.rng`` this builder needs, so the same
    builder serves single- and multi-tenant specs.
    """
    from repro.anomaly.anomalies import AnomalyScope

    anomaly_types = (
        [a for a in ANOMALY_TYPES if a is not AnomalyType.WORKLOAD_VARIATION]
        if resource_only
        else ANOMALY_TYPES
    )
    return random_campaign(
        harness.app.service_names(),
        harness.rng,
        duration_s=duration_s,
        rate_per_s=rate_per_s,
        min_intensity=min_intensity,
        anomaly_types=anomaly_types,
        scope=AnomalyScope.NODE if scope is None else AnomalyScope(scope),
        start_s=start_s,
    )
