"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures everything that defines one experiment
scenario — application, seed, duration, workload shape, request mix,
controller (by registry name) and its options, and the anomaly campaign —
as plain data.  Specs are the currency of the experiment stack: every
figure/table module builds its harnesses from specs via
:meth:`repro.experiments.harness.ExperimentHarness.from_spec`, and the
sweep runner (:mod:`repro.experiments.sweep`) fans grids of specs out over
worker processes.

Specs must stay picklable so they can cross process boundaries: prefer
module-level functions (or :func:`functools.partial` over them) for
``campaign_builder``, never lambdas or closures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence, Tuple

from repro.anomaly.anomalies import ANOMALY_TYPES, AnomalyType
from repro.anomaly.campaigns import AnomalyCampaign, random_campaign
from repro.workload.patterns import ArrivalPattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.harness import ExperimentHarness, ExperimentResult


@dataclass
class ScenarioSpec:
    """One fully specified experiment scenario.

    Attributes
    ----------
    application:
        Benchmark application name (see :mod:`repro.apps.catalog`).
    seed:
        Master seed; fully determines the run (workload arrivals, service
        times, campaigns, RL exploration all derive substreams from it).
    duration_s:
        Scenario duration in simulated seconds.
    load_rps:
        Offered load for the default constant arrival pattern; ignored when
        ``pattern`` is given.
    pattern:
        Optional explicit arrival pattern (diurnal, spike, ...).
    request_mix:
        Optional ``(request_type, weight)`` pairs overriding the
        application's declared mix.
    controller:
        Registry name of the resource controller (``"firm"``, ``"aimd"``,
        ``"kubernetes_hpa"``/``"k8s"``, ``"firm_multi"``, ``"none"``, ...).
    controller_kwargs:
        Keyword arguments forwarded to the controller factory.
    campaign:
        Optional pre-built anomaly campaign.
    campaign_builder:
        Optional callable ``builder(harness) -> AnomalyCampaign | None``
        invoked against the freshly built harness (use for campaigns that
        need the harness RNG or service names); ignored when ``campaign``
        is given.  Must be picklable for parallel sweeps.
    warmup_s:
        Seconds at the start excluded from SLO accounting.
    sample_period_s:
        Period of the harness's utilization/mitigation sampling.
    """

    application: str = "social_network"
    seed: int = 0
    duration_s: float = 60.0
    load_rps: float = 50.0
    pattern: Optional[ArrivalPattern] = None
    request_mix: Optional[Sequence[Tuple[str, float]]] = None
    controller: str = "none"
    controller_kwargs: Dict[str, Any] = field(default_factory=dict)
    campaign: Optional[AnomalyCampaign] = None
    campaign_builder: Optional[Callable[["ExperimentHarness"], Optional[AnomalyCampaign]]] = None
    warmup_s: float = 0.0
    sample_period_s: float = 1.0

    @property
    def scenario_id(self) -> str:
        """Stable human-readable identity (used to key sweep results)."""
        return (
            f"{self.application}/{self.controller}"
            f"/seed={self.seed}/load={self.load_rps:g}/duration={self.duration_s:g}"
        )

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy of this spec with the given fields replaced."""
        return replace(self, **overrides)

    def build(self) -> "ExperimentHarness":
        """Build the fully wired harness for this spec."""
        from repro.experiments.harness import ExperimentHarness

        return ExperimentHarness.from_spec(self)


def run_scenario(spec: ScenarioSpec) -> "ExperimentResult":
    """Build and run one scenario end to end, returning its result."""
    harness = spec.build()
    return harness.run(
        duration_s=spec.duration_s,
        sample_period_s=spec.sample_period_s,
        warmup_s=spec.warmup_s,
    )


def random_campaign_builder(
    harness: "ExperimentHarness",
    duration_s: float,
    rate_per_s: float = 0.33,
    min_intensity: float = 0.3,
    resource_only: bool = False,
):
    """The canonical picklable ``campaign_builder`` for random injection.

    Use with :func:`functools.partial` to bind parameters into a spec;
    ``resource_only`` excludes workload-variation anomalies (the §4.1
    baseline-comparison setting).
    """
    anomaly_types = (
        [a for a in ANOMALY_TYPES if a is not AnomalyType.WORKLOAD_VARIATION]
        if resource_only
        else ANOMALY_TYPES
    )
    return random_campaign(
        harness.app.service_names(),
        harness.rng,
        duration_s=duration_s,
        rate_per_s=rate_per_s,
        min_intensity=min_intensity,
        anomaly_types=anomaly_types,
    )
