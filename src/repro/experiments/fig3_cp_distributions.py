"""Fig. 3 — latency distributions of minimum vs maximum critical paths.

For each of the four benchmark applications the paper plots the CDF of
end-to-end latency for the CP (grouped by service signature) with the
lowest and the highest latency, observing roughly 1.6x spread in median
latency and up to 2.5x in the 99th percentile.  The experiment runs each
application under a random anomaly campaign, extracts every request's CP,
groups CPs by signature, and reports the latency distributions of the
fastest and slowest groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List

from repro.apps.catalog import APPLICATIONS
from repro.core.critical_path import CriticalPathExtractor
from repro.experiments.harness import ExperimentHarness
from repro.experiments.scenario import ScenarioSpec, random_campaign_builder
from repro.metrics.latency import LatencyStats, cdf_points


@dataclass
class CPDistribution:
    """Min-CP vs max-CP latency distributions for one application."""

    application: str
    min_cp: LatencyStats
    max_cp: LatencyStats
    min_cp_samples: List[float]
    max_cp_samples: List[float]

    @property
    def median_ratio(self) -> float:
        """Max-CP median divided by min-CP median (paper reports ≈1.6x)."""
        if self.min_cp.median <= 0:
            return 0.0
        return self.max_cp.median / self.min_cp.median

    @property
    def p99_ratio(self) -> float:
        """Max-CP p99 divided by min-CP p99 (paper reports up to ≈2.5x)."""
        if self.min_cp.p99 <= 0:
            return 0.0
        return self.max_cp.p99 / self.min_cp.p99

    def cdf(self, points: int = 50) -> Dict[str, List]:
        """CDF points for both groups (the series plotted in Fig. 3)."""
        return {
            "min_cp": cdf_points(self.min_cp_samples, points),
            "max_cp": cdf_points(self.max_cp_samples, points),
        }


def run_fig3_for_application(
    application: str,
    duration_s: float = 90.0,
    load_rps: float = 60.0,
    seed: int = 11,
) -> CPDistribution:
    """Collect min/max-CP latency distributions for one application."""
    spec = ScenarioSpec(
        application=application,
        seed=seed,
        duration_s=duration_s,
        load_rps=load_rps,
        controller="none",
        campaign_builder=partial(
            random_campaign_builder, duration_s=duration_s, rate_per_s=0.15
        ),
    )
    harness = ExperimentHarness.from_spec(spec)
    harness.run(duration_s=duration_s, load_rps=load_rps)

    extractor = CriticalPathExtractor()
    traces = harness.coordinator.store.completed_traces()
    paths = extractor.extract_all(traces)
    split = extractor.min_max_signature_latencies(paths)
    return CPDistribution(
        application=application,
        min_cp=LatencyStats.from_samples(split["min_cp"]),
        max_cp=LatencyStats.from_samples(split["max_cp"]),
        min_cp_samples=split["min_cp"],
        max_cp_samples=split["max_cp"],
    )


def run_fig3(
    applications: List[str] = None,
    duration_s: float = 90.0,
    load_rps: float = 60.0,
    seed: int = 11,
) -> Dict[str, CPDistribution]:
    """Reproduce Fig. 3 for all (or a subset of) the benchmark applications."""
    if applications is None:
        applications = list(APPLICATIONS)
    return {
        application: run_fig3_for_application(
            application, duration_s=duration_s, load_rps=load_rps, seed=seed
        )
        for application in applications
    }
