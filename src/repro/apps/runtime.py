"""Application runtime: executes requests against the simulated cluster.

The runtime is the glue between the application model (:mod:`repro.apps`),
the cluster substrate (:mod:`repro.cluster`), and the tracing substrate
(:mod:`repro.tracing`).  Given a :class:`~repro.apps.graph.ServiceGraph`
it deploys every service onto the cluster and then, for each arriving user
request, walks the request type's call plan:

* **sequential** children run one after another,
* **parallel** children are dispatched together and joined,
* **background** children are dispatched fire-and-forget (they complete and
  are traced, but the parent does not wait for them).

Every span is reported to the Tracing Coordinator as it completes, so the
execution history graph is available to FIRM's Extractor in near-real time,
exactly as in the paper's architecture (Fig. 6, modules 1-3).

Replica selection for the entry service and every downstream call goes
through the cluster's pluggable request router (:mod:`repro.routing`);
each span is stamped with the routing decision that placed it — policy
name plus the selected replica's queue depth and in-flight count at
decision time — so traces expose how the balancer distributed the load.

When an :class:`~repro.admission.gate.AdmissionGate` is attached
(``runtime.admission``), :meth:`ApplicationRuntime.submit_request` routes
through it — rate limiting, shedding, retries, hedging, and circuit
breaking all happen before :meth:`ApplicationRuntime.submit_attempt`
launches each physical attempt.  With no gate attached the fast path is
byte-identical to the pre-admission runtime.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence

from repro.apps.graph import CallEdge, CallPattern, RequestType, ServiceGraph
from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceLimits
from repro.sim.engine import SimulationEngine
from repro.tracing.coordinator import TracingCoordinator
from repro.tracing.span import Span, SpanKind
from repro.tracing.trace import Trace

_request_ids = itertools.count(1)


class ApplicationRuntime:
    """Deploys an application and executes user requests on the cluster.

    Parameters
    ----------
    app:
        The application's service graph.
    cluster:
        The simulated cluster to deploy onto — either the shared
        :class:`~repro.cluster.cluster.Cluster` or a tenant-scoped
        :class:`~repro.cluster.cluster.TenantClusterView`.
    coordinator:
        Tracing coordinator receiving spans and completions.
    engine:
        Shared simulation engine.
    default_limits:
        Optional resource limits applied to every deployed container
        (defaults to the overprovisioned container defaults).
    tenant:
        Optional tenant identity; spans produced by this runtime are tagged
        with it so per-tenant analysis can filter a shared trace stream.
    request_counter:
        Optional request-id counter overriding the process-wide default.
        Request ids never influence simulation results, but the sharded
        engine hands every shard its own counter so an in-process shard
        session numbers requests exactly like a shard in a freshly spawned
        worker process would (the process-wide counter is per-interpreter
        state).
    """

    def __init__(
        self,
        app: ServiceGraph,
        cluster: Cluster,
        coordinator: TracingCoordinator,
        engine: SimulationEngine,
        default_limits: Optional[ResourceLimits] = None,
        tenant: Optional[str] = None,
        request_counter: Optional["itertools.count"] = None,
    ) -> None:
        self.app = app
        self.cluster = cluster
        self.coordinator = coordinator
        self.engine = engine
        self.default_limits = default_limits
        self.tenant = tenant
        self.completed_requests = 0
        self.dropped_requests = 0
        #: Optional :class:`~repro.admission.gate.AdmissionGate`; when set,
        #: :meth:`submit_request` routes through it.
        self.admission = None
        self._deployed = False
        self._request_ids = request_counter if request_counter is not None else _request_ids

    # -------------------------------------------------------------- deploy
    def deploy(self) -> None:
        """Deploy every service in the graph and register request-type SLOs."""
        if self._deployed:
            return
        for node in self.app.services.values():
            limits = (
                ResourceLimits(dict(self.default_limits.values))
                if self.default_limits is not None
                else None
            )
            self.cluster.deploy_service(
                node.profile, replicas=node.initial_replicas, limits=limits
            )
        for request_type in self.app.request_types.values():
            self.coordinator.register_slo(
                request_type.name,
                request_type.slo_latency_ms,
                services=request_type.services(),
            )
        self._deployed = True

    # -------------------------------------------------------------- execute
    def submit_request(
        self,
        request_type_name: str,
        on_complete: Optional[Callable[[Trace], None]] = None,
    ) -> Trace:
        """Submit one logical user request of the given type.

        Returns a trace immediately; spans are appended as the request
        progresses through the simulation, and ``on_complete`` (if given) is
        invoked with the finished trace when the response is sent.  With an
        admission gate attached the request passes through it first — it may
        be shed before launching (the returned trace is already dropped), and
        retried or hedged attempts each carry their own trace, with
        ``on_complete`` receiving the attempt that settled the request.
        """
        if self.admission is not None:
            return self.admission.submit(request_type_name, on_complete)
        return self.submit_attempt(request_type_name, on_complete)

    def submit_attempt(
        self,
        request_type_name: str,
        on_complete: Optional[Callable[[Trace], None]] = None,
        label: Optional[str] = None,
    ) -> Trace:
        """Launch one physical attempt of a request (no admission control).

        ``label`` (e.g. ``"retry1"``, ``"hedge1"``) suffixes the request id
        so retried/hedged attempts are first-class, distinguishable traces;
        ``None`` keeps the id byte-identical to the pre-admission format.
        When the entry replica rejects the attempt the returned trace is
        already dropped and ``on_complete`` is never invoked — callers that
        need synchronous rejection must check ``trace.dropped`` on return.
        """
        if not self._deployed:
            raise RuntimeError("application must be deployed before submitting requests")
        request_type = self.app.request_types[request_type_name]
        request_id = self.next_request_id(request_type_name, label)
        trace = self.coordinator.begin_trace(request_id, request_type_name, self.engine.now)
        self._execute_entry(trace, request_type, on_complete)
        return trace

    def next_request_id(self, request_type_name: str, label: Optional[str] = None) -> str:
        """Mint the next request id (ids never influence simulation results)."""
        request_id = f"{self.app.name}-{request_type_name}-{next(self._request_ids)}"
        if label is not None:
            request_id = f"{request_id}-{label}"
        return request_id

    # ------------------------------------------------------------ internals
    def _execute_entry(
        self,
        trace: Trace,
        request_type: RequestType,
        on_complete: Optional[Callable[[Trace], None]],
    ) -> None:
        decision = self.cluster.route(request_type.entry_service)
        entry_instance = decision.instance

        def _entry_done(entry_span: Span) -> None:
            self.coordinator.complete_trace(trace, self.engine.now)
            self.completed_requests += 1
            if on_complete is not None:
                on_complete(trace)

        def _entry_finished(eq: float, st: float, ft: float) -> None:
            # The entry span's own compute is done; now run its call plan,
            # then close the span when all foreground children complete.
            entry_span = Span(
                request_id=trace.request_id,
                service=request_type.entry_service,
                instance=entry_instance.name,
                kind=SpanKind.ROOT,
                parent_id=None,
                enqueue_time=eq,
                start_time=st,
                tenant=self.tenant,
                tags=decision.span_tags(),
            )

            def _children_done() -> None:
                entry_span.end_time = self.engine.now
                self.coordinator.record_span(trace, entry_span)
                _entry_done(entry_span)

            self._execute_children(trace, entry_span, request_type.call_plan, _children_done)

        accepted = entry_instance.submit(
            trace.request_id, request_type.entry_service, _entry_finished
        )
        if not accepted:
            self.coordinator.drop_trace(trace)
            self.dropped_requests += 1

    def _execute_children(
        self,
        trace: Trace,
        parent_span: Span,
        calls: Sequence[CallEdge],
        done: Callable[[], None],
    ) -> None:
        """Execute a list of sibling calls honouring their workflow patterns.

        Parallel siblings are grouped into consecutive runs and dispatched
        together; sequential siblings wait for all previously dispatched
        foreground work; background siblings are dispatched immediately and
        never waited on.
        """
        foreground = [c for c in calls if c.pattern is not CallPattern.BACKGROUND]
        background = [c for c in calls if c.pattern is CallPattern.BACKGROUND]

        # Background calls: fire-and-forget.
        for call in background:
            self._execute_call(trace, parent_span, call, on_done=None)

        if not foreground:
            done()
            return

        # Group foreground calls into stages: consecutive PARALLEL calls form
        # one stage dispatched concurrently; a SEQUENTIAL call is its own stage.
        stages: List[List[CallEdge]] = []
        for call in foreground:
            if (
                call.pattern is CallPattern.PARALLEL
                and stages
                and stages[-1][0].pattern is CallPattern.PARALLEL
            ):
                stages[-1].append(call)
            else:
                stages.append([call])

        def _run_stage(index: int) -> None:
            if index >= len(stages):
                done()
                return
            stage = stages[index]
            remaining = len(stage)

            def _one_done() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining == 0:
                    _run_stage(index + 1)

            for call in stage:
                self._execute_call(trace, parent_span, call, on_done=_one_done)

        _run_stage(0)

    def _execute_call(
        self,
        trace: Trace,
        parent_span: Span,
        call: CallEdge,
        on_done: Optional[Callable[[], None]],
    ) -> None:
        """Execute one RPC: run the callee's compute, then its own children."""
        try:
            decision = self.cluster.route(call.callee)
            instance = decision.instance
        except KeyError:
            # Service not deployed (should not happen for validated graphs);
            # treat the call as instantly failed so the request can proceed.
            if on_done is not None:
                on_done()
            return

        kind = {
            CallPattern.SEQUENTIAL: SpanKind.SEQUENTIAL,
            CallPattern.PARALLEL: SpanKind.PARALLEL,
            CallPattern.BACKGROUND: SpanKind.BACKGROUND,
        }[call.pattern]

        def _compute_finished(eq: float, st: float, ft: float) -> None:
            span = Span(
                request_id=trace.request_id,
                service=call.callee,
                instance=instance.name,
                kind=kind,
                parent_id=parent_span.span_id,
                enqueue_time=eq,
                start_time=st,
                tenant=self.tenant,
                tags=decision.span_tags(),
            )

            def _children_done() -> None:
                span.end_time = self.engine.now
                self.coordinator.record_span(trace, span)
                if on_done is not None:
                    on_done()

            self._execute_children(trace, span, call.children, _children_done)

        accepted = instance.submit(trace.request_id, call.callee, _compute_finished)
        if not accepted:
            # The downstream queue is saturated; record a dropped span and
            # unblock the caller so the request either completes degraded or
            # is counted as dropped by the caller's SLO accounting.
            span = Span(
                request_id=trace.request_id,
                service=call.callee,
                instance=instance.name,
                kind=kind,
                parent_id=parent_span.span_id,
                enqueue_time=self.engine.now,
                start_time=self.engine.now,
                end_time=self.engine.now,
                dropped=True,
                tenant=self.tenant,
                tags=decision.span_tags(),
            )
            self.coordinator.record_span(trace, span)
            if not trace.dropped:
                self.coordinator.drop_trace(trace)
                self.dropped_requests += 1
            if on_done is not None:
                on_done()
