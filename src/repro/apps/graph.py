"""Service dependency graph and request-type model.

A deployment of microservices is described by a :class:`ServiceGraph`:
vertices are microservices, edges are RPC dependencies.  Each
:class:`RequestType` (e.g. ``post-compose``) traverses a subset of the graph
following a *call plan*, a small tree describing which downstream services a
service invokes and whether those invocations are sequential, parallel, or
background (fire-and-forget) — the three workflow patterns the paper's
critical-path extractor must handle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.cluster.instance import ServiceProfile
from repro.cluster.resources import Resource, ResourceVector


class CallPattern(str, enum.Enum):
    """Workflow pattern of a set of child calls (paper §3.2)."""

    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"
    BACKGROUND = "background"


@dataclass
class CallEdge:
    """One RPC dependency in a request's call plan.

    Attributes
    ----------
    callee:
        Name of the downstream service being invoked.
    pattern:
        Whether the call is part of a sequential chain, a parallel fan-out,
        or a background (no-reply) workflow.
    children:
        Nested calls the callee makes while serving this RPC.
    """

    callee: str
    pattern: CallPattern = CallPattern.SEQUENTIAL
    children: List["CallEdge"] = field(default_factory=list)

    def walk(self) -> Iterable["CallEdge"]:
        """Depth-first iteration over this edge and all nested calls."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class RequestType:
    """A user-visible request type (e.g. ``post-compose``).

    Attributes
    ----------
    name:
        Request type name.
    entry_service:
        The frontend service that receives the request (e.g. ``nginx``).
    call_plan:
        Calls made by the entry service, with nesting describing the full
        execution structure.
    slo_latency_ms:
        End-to-end latency SLO for this request type.
    weight:
        Relative frequency in the application's default request mix.
    """

    name: str
    entry_service: str
    call_plan: List[CallEdge] = field(default_factory=list)
    slo_latency_ms: float = 500.0
    weight: float = 1.0

    def services(self) -> List[str]:
        """All services touched by this request type (entry first, no dupes)."""
        seen: List[str] = [self.entry_service]
        for edge in self.call_plan:
            for nested in edge.walk():
                if nested.callee not in seen:
                    seen.append(nested.callee)
        return seen


@dataclass
class ServiceNode:
    """A microservice in the dependency graph with its performance profile."""

    profile: ServiceProfile
    initial_replicas: int = 1

    @property
    def name(self) -> str:
        return self.profile.name


class ServiceGraph:
    """A complete application: services, dependencies, and request types."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._services: Dict[str, ServiceNode] = {}
        self._request_types: Dict[str, RequestType] = {}

    # --------------------------------------------------------------- builders
    def add_service(
        self,
        profile: ServiceProfile,
        replicas: int = 1,
    ) -> ServiceNode:
        """Register a microservice.  Re-adding an existing name is an error."""
        if profile.name in self._services:
            raise ValueError(f"service {profile.name!r} already registered in {self.name!r}")
        node = ServiceNode(profile=profile, initial_replicas=replicas)
        self._services[profile.name] = node
        return node

    def add_request_type(self, request_type: RequestType) -> RequestType:
        """Register a request type; all referenced services must exist."""
        missing = [
            service
            for service in request_type.services()
            if service not in self._services
        ]
        if missing:
            raise ValueError(
                f"request type {request_type.name!r} references unknown services {missing}"
            )
        self._request_types[request_type.name] = request_type
        return request_type

    # ---------------------------------------------------------------- queries
    @property
    def services(self) -> Dict[str, ServiceNode]:
        return dict(self._services)

    @property
    def request_types(self) -> Dict[str, RequestType]:
        return dict(self._request_types)

    def service_names(self) -> List[str]:
        return sorted(self._services)

    def request_type_names(self) -> List[str]:
        return sorted(self._request_types)

    def request_mix(self) -> List[Tuple[str, float]]:
        """Normalized (request type, probability) pairs from the weights."""
        total = sum(rt.weight for rt in self._request_types.values())
        if total <= 0:
            raise ValueError(f"application {self.name!r} has no weighted request types")
        return [
            (name, self._request_types[name].weight / total)
            for name in sorted(self._request_types)
        ]

    def dependency_graph(self) -> nx.DiGraph:
        """Caller -> callee dependency graph aggregated over request types."""
        graph = nx.DiGraph()
        for service in self._services:
            graph.add_node(service)
        for request_type in self._request_types.values():
            self._add_edges(graph, request_type.entry_service, request_type.call_plan)
        return graph

    def _add_edges(self, graph: nx.DiGraph, caller: str, calls: Sequence[CallEdge]) -> None:
        for edge in calls:
            graph.add_edge(caller, edge.callee, pattern=edge.pattern.value)
            self._add_edges(graph, edge.callee, edge.children)

    # ------------------------------------------------------------ namespacing
    def namespaced(self, prefix: str) -> "ServiceGraph":
        """A copy of this graph with every service name prefixed ``prefix/``.

        Used by multi-tenant deployments: two tenants running the same
        application must not collide in the shared cluster's replica sets,
        so each tenant deploys ``tenant/nginx``, ``tenant/composePost``, ...
        Request-type *names* are left untouched (SLO accounting is per
        tenant already), but their entry services and call plans are
        rewritten to the prefixed service names.  The application name
        becomes ``prefix/name`` so seeded RNG substreams (workload arrivals,
        service times) decouple between tenants automatically.
        """
        def _rename(service: str) -> str:
            return f"{prefix}/{service}"

        def _rewrite(edge: CallEdge) -> CallEdge:
            return CallEdge(
                callee=_rename(edge.callee),
                pattern=edge.pattern,
                children=[_rewrite(child) for child in edge.children],
            )

        clone = ServiceGraph(f"{prefix}/{self.name}")
        for node in self._services.values():
            profile = replace(
                node.profile,
                name=_rename(node.profile.name),
                resource_weights=dict(node.profile.resource_weights),
            )
            clone.add_service(profile, replicas=node.initial_replicas)
        for request_type in self._request_types.values():
            clone.add_request_type(
                RequestType(
                    name=request_type.name,
                    entry_service=_rename(request_type.entry_service),
                    call_plan=[_rewrite(edge) for edge in request_type.call_plan],
                    slo_latency_ms=request_type.slo_latency_ms,
                    weight=request_type.weight,
                )
            )
        return clone

    def validate(self) -> None:
        """Sanity checks: at least one request type, acyclic dependencies."""
        if not self._request_types:
            raise ValueError(f"application {self.name!r} defines no request types")
        graph = self.dependency_graph()
        if not nx.is_directed_acyclic_graph(graph):
            cycles = list(nx.simple_cycles(graph))
            raise ValueError(f"application {self.name!r} has cyclic dependencies: {cycles}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceGraph(name={self.name!r}, services={len(self._services)}, "
            f"request_types={len(self._request_types)})"
        )


# --------------------------------------------------------------------------
# Profile helpers shared by the four benchmark applications
# --------------------------------------------------------------------------

def frontend_profile(name: str, base_ms: float = 2.0) -> ServiceProfile:
    """An nginx-like frontend: light CPU, network-sensitive."""
    return ServiceProfile(
        name=name,
        base_service_time_ms=base_ms,
        service_time_cv=0.2,
        resource_weights={Resource.CPU: 0.5, Resource.NETWORK: 0.8},
        demand_per_request=ResourceVector.from_kwargs(cpu=0.2, network=0.05),
        threads=16,
    )


def logic_profile(name: str, base_ms: float = 8.0, cv: float = 0.3) -> ServiceProfile:
    """A business-logic service: CPU-bound."""
    return ServiceProfile(
        name=name,
        base_service_time_ms=base_ms,
        service_time_cv=cv,
        resource_weights={Resource.CPU: 0.9, Resource.MEMORY_BANDWIDTH: 0.3},
        demand_per_request=ResourceVector.from_kwargs(cpu=0.6, memory_bandwidth=0.4),
        threads=8,
    )


def cache_profile(name: str, base_ms: float = 1.5) -> ServiceProfile:
    """A memcached-like cache: memory-bandwidth and LLC sensitive."""
    return ServiceProfile(
        name=name,
        base_service_time_ms=base_ms,
        service_time_cv=0.35,
        resource_weights={
            Resource.CPU: 0.3,
            Resource.MEMORY_BANDWIDTH: 0.9,
            Resource.LLC: 0.8,
        },
        demand_per_request=ResourceVector.from_kwargs(
            cpu=0.2, memory_bandwidth=1.2, llc=0.3
        ),
        threads=4,
    )


def database_profile(name: str, base_ms: float = 6.0) -> ServiceProfile:
    """A mongoDB-like store: disk-I/O sensitive, moderate CPU."""
    return ServiceProfile(
        name=name,
        base_service_time_ms=base_ms,
        service_time_cv=0.4,
        resource_weights={
            Resource.CPU: 0.4,
            Resource.DISK_IO: 0.9,
            Resource.MEMORY_BANDWIDTH: 0.4,
        },
        demand_per_request=ResourceVector.from_kwargs(
            cpu=0.3, disk_io=15.0, memory_bandwidth=0.5
        ),
        threads=8,
    )


def media_profile(name: str, base_ms: float = 12.0) -> ServiceProfile:
    """A video/image processing service: CPU and memory-bandwidth heavy."""
    return ServiceProfile(
        name=name,
        base_service_time_ms=base_ms,
        service_time_cv=0.45,
        resource_weights={
            Resource.CPU: 0.8,
            Resource.MEMORY_BANDWIDTH: 0.7,
            Resource.NETWORK: 0.4,
        },
        demand_per_request=ResourceVector.from_kwargs(
            cpu=0.9, memory_bandwidth=1.5, network=0.1
        ),
        threads=8,
    )


def background_profile(name: str, base_ms: float = 20.0) -> ServiceProfile:
    """A background worker (e.g. write-timeline fan-out)."""
    return ServiceProfile(
        name=name,
        base_service_time_ms=base_ms,
        service_time_cv=0.5,
        resource_weights={Resource.CPU: 0.6, Resource.DISK_IO: 0.5},
        demand_per_request=ResourceVector.from_kwargs(cpu=0.4, disk_io=5.0),
        threads=4,
        background=True,
    )
