"""Catalog of the four benchmark applications.

These graphs model the applications used in the paper's evaluation:

* **Social Network** (DeathStarBench): broadcast-style social network with
  post-compose, read-timeline, and follow-user request types.  The
  post-compose call plan mirrors Fig. 2: nginx fans out to media services
  (video, image, text, userTag, uniqueID, urlShorten) in parallel, then
  composePost persists the post and triggers writeTimeline in the
  background.
* **Media Service** (DeathStarBench): movie reviewing/rating/streaming.
* **Hotel Reservation** (DeathStarBench): search, recommend, and reserve.
* **Train-Ticket Booking**: ticket enquiry, reservation, and payment.

The topologies are faithful to the published service counts in spirit
(36/38/15/41 unique services respectively, here modelled with the subset of
services that carry the load-bearing behaviour plus generic replicas of the
remaining tiers), and every application exercises the three workflow
patterns the critical-path extractor must distinguish.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.graph import (
    CallEdge,
    CallPattern,
    RequestType,
    ServiceGraph,
    background_profile,
    cache_profile,
    database_profile,
    frontend_profile,
    logic_profile,
    media_profile,
)


def _storage_pair(graph: ServiceGraph, prefix: str) -> None:
    """Register a memcached + mongodb storage pair for a logical store."""
    graph.add_service(cache_profile(f"{prefix}-memcached"))
    graph.add_service(database_profile(f"{prefix}-mongodb"))


def _storage_calls(prefix: str) -> CallEdge:
    """Cache-then-database sequential access pattern for a store."""
    return CallEdge(
        callee=f"{prefix}-memcached",
        pattern=CallPattern.SEQUENTIAL,
        children=[CallEdge(callee=f"{prefix}-mongodb", pattern=CallPattern.SEQUENTIAL)],
    )


# ---------------------------------------------------------------------------
# Social Network
# ---------------------------------------------------------------------------

def social_network() -> ServiceGraph:
    """DeathStarBench Social Network (post-compose, read-timeline, follow)."""
    graph = ServiceGraph("social_network")

    graph.add_service(frontend_profile("nginx"), replicas=2)
    graph.add_service(media_profile("video", base_ms=14.0))
    graph.add_service(media_profile("image", base_ms=10.0))
    graph.add_service(logic_profile("text", base_ms=6.0, cv=0.6))
    graph.add_service(logic_profile("userTag", base_ms=5.0))
    graph.add_service(logic_profile("uniqueID", base_ms=2.0, cv=0.15))
    graph.add_service(logic_profile("urlShorten", base_ms=3.0))
    graph.add_service(logic_profile("composePost", base_ms=12.0, cv=0.2))
    graph.add_service(logic_profile("userInfo", base_ms=4.0))
    graph.add_service(logic_profile("readTimeline", base_ms=7.0))
    graph.add_service(logic_profile("recommender", base_ms=9.0))
    graph.add_service(logic_profile("followUser", base_ms=5.0))
    graph.add_service(logic_profile("search", base_ms=8.0))
    graph.add_service(background_profile("writeTimeline", base_ms=18.0))
    graph.add_service(background_profile("writeGraph", base_ms=10.0))
    _storage_pair(graph, "post-storage")
    _storage_pair(graph, "user-timeline")
    _storage_pair(graph, "social-graph")
    _storage_pair(graph, "user")
    _storage_pair(graph, "media")

    compose_children = [
        CallEdge("uniqueID", CallPattern.PARALLEL),
        CallEdge("video", CallPattern.PARALLEL, children=[_storage_calls("media")]),
        CallEdge("image", CallPattern.PARALLEL),
        CallEdge("text", CallPattern.PARALLEL, children=[CallEdge("urlShorten", CallPattern.SEQUENTIAL)]),
        CallEdge("userTag", CallPattern.PARALLEL, children=[_storage_calls("user")]),
        CallEdge(
            "composePost",
            CallPattern.SEQUENTIAL,
            children=[
                _storage_calls("post-storage"),
                CallEdge(
                    "writeTimeline",
                    CallPattern.BACKGROUND,
                    children=[_storage_calls("user-timeline")],
                ),
                CallEdge("writeGraph", CallPattern.BACKGROUND),
            ],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="post-compose",
            entry_service="nginx",
            call_plan=compose_children,
            slo_latency_ms=200.0,
            weight=0.4,
        )
    )

    read_children = [
        CallEdge(
            "readTimeline",
            CallPattern.SEQUENTIAL,
            children=[
                _storage_calls("user-timeline"),
                CallEdge("userInfo", CallPattern.PARALLEL, children=[_storage_calls("user")]),
                _storage_calls("post-storage"),
            ],
        ),
        CallEdge("recommender", CallPattern.PARALLEL, children=[_storage_calls("social-graph")]),
    ]
    graph.add_request_type(
        RequestType(
            name="read-timeline",
            entry_service="nginx",
            call_plan=read_children,
            slo_latency_ms=150.0,
            weight=0.5,
        )
    )

    follow_children = [
        CallEdge(
            "followUser",
            CallPattern.SEQUENTIAL,
            children=[
                _storage_calls("social-graph"),
                CallEdge("writeGraph", CallPattern.BACKGROUND),
            ],
        ),
        CallEdge("search", CallPattern.PARALLEL, children=[_storage_calls("user")]),
    ]
    graph.add_request_type(
        RequestType(
            name="follow-user",
            entry_service="nginx",
            call_plan=follow_children,
            slo_latency_ms=120.0,
            weight=0.1,
        )
    )

    graph.validate()
    return graph


# ---------------------------------------------------------------------------
# Media Service
# ---------------------------------------------------------------------------

def media_service() -> ServiceGraph:
    """DeathStarBench Media Service (review, rent/stream, rate)."""
    graph = ServiceGraph("media_service")

    graph.add_service(frontend_profile("nginx-web"), replicas=2)
    graph.add_service(logic_profile("composeReview", base_ms=10.0, cv=0.3))
    graph.add_service(logic_profile("reviewStorage", base_ms=6.0))
    graph.add_service(logic_profile("userReview", base_ms=5.0))
    graph.add_service(logic_profile("movieReview", base_ms=5.0))
    graph.add_service(logic_profile("movieId", base_ms=3.0, cv=0.15))
    graph.add_service(logic_profile("movieInfo", base_ms=6.0))
    graph.add_service(logic_profile("plot", base_ms=4.0))
    graph.add_service(logic_profile("rating", base_ms=4.0, cv=0.5))
    graph.add_service(logic_profile("userService", base_ms=4.0))
    graph.add_service(media_profile("videoStreaming", base_ms=20.0))
    graph.add_service(logic_profile("castInfo", base_ms=5.0))
    graph.add_service(background_profile("analytics", base_ms=25.0))
    _storage_pair(graph, "review")
    _storage_pair(graph, "movie")
    _storage_pair(graph, "user-profile")
    _storage_pair(graph, "rating-store")

    compose_review = [
        CallEdge("movieId", CallPattern.PARALLEL, children=[_storage_calls("movie")]),
        CallEdge("userService", CallPattern.PARALLEL, children=[_storage_calls("user-profile")]),
        CallEdge("rating", CallPattern.PARALLEL, children=[_storage_calls("rating-store")]),
        CallEdge(
            "composeReview",
            CallPattern.SEQUENTIAL,
            children=[
                CallEdge("reviewStorage", CallPattern.SEQUENTIAL, children=[_storage_calls("review")]),
                CallEdge("userReview", CallPattern.PARALLEL),
                CallEdge("movieReview", CallPattern.PARALLEL),
                CallEdge("analytics", CallPattern.BACKGROUND),
            ],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="compose-review",
            entry_service="nginx-web",
            call_plan=compose_review,
            slo_latency_ms=250.0,
            weight=0.35,
        )
    )

    browse = [
        CallEdge(
            "movieInfo",
            CallPattern.SEQUENTIAL,
            children=[
                _storage_calls("movie"),
                CallEdge("plot", CallPattern.PARALLEL),
                CallEdge("castInfo", CallPattern.PARALLEL),
                CallEdge("rating", CallPattern.PARALLEL, children=[_storage_calls("rating-store")]),
            ],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="browse-movie",
            entry_service="nginx-web",
            call_plan=browse,
            slo_latency_ms=150.0,
            weight=0.45,
        )
    )

    stream = [
        CallEdge("userService", CallPattern.SEQUENTIAL, children=[_storage_calls("user-profile")]),
        CallEdge(
            "videoStreaming",
            CallPattern.SEQUENTIAL,
            children=[_storage_calls("movie"), CallEdge("analytics", CallPattern.BACKGROUND)],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="stream-movie",
            entry_service="nginx-web",
            call_plan=stream,
            slo_latency_ms=300.0,
            weight=0.2,
        )
    )

    graph.validate()
    return graph


# ---------------------------------------------------------------------------
# Hotel Reservation
# ---------------------------------------------------------------------------

def hotel_reservation() -> ServiceGraph:
    """DeathStarBench Hotel Reservation (search, recommend, reserve)."""
    graph = ServiceGraph("hotel_reservation")

    graph.add_service(frontend_profile("frontend"), replicas=2)
    graph.add_service(logic_profile("search", base_ms=8.0, cv=0.4))
    graph.add_service(logic_profile("geo", base_ms=5.0))
    graph.add_service(logic_profile("rate", base_ms=5.0, cv=0.5))
    graph.add_service(logic_profile("recommendation", base_ms=7.0))
    graph.add_service(logic_profile("profile", base_ms=4.0))
    graph.add_service(logic_profile("reservation", base_ms=9.0, cv=0.3))
    graph.add_service(logic_profile("user", base_ms=3.0))
    graph.add_service(background_profile("notify", base_ms=15.0))
    _storage_pair(graph, "geo-store")
    _storage_pair(graph, "rate-store")
    _storage_pair(graph, "profile-store")
    _storage_pair(graph, "reservation-store")

    search_plan = [
        CallEdge(
            "search",
            CallPattern.SEQUENTIAL,
            children=[
                CallEdge("geo", CallPattern.PARALLEL, children=[_storage_calls("geo-store")]),
                CallEdge("rate", CallPattern.PARALLEL, children=[_storage_calls("rate-store")]),
            ],
        ),
        CallEdge("profile", CallPattern.SEQUENTIAL, children=[_storage_calls("profile-store")]),
    ]
    graph.add_request_type(
        RequestType(
            name="search-hotel",
            entry_service="frontend",
            call_plan=search_plan,
            slo_latency_ms=150.0,
            weight=0.55,
        )
    )

    recommend_plan = [
        CallEdge(
            "recommendation",
            CallPattern.SEQUENTIAL,
            children=[
                CallEdge("profile", CallPattern.SEQUENTIAL, children=[_storage_calls("profile-store")]),
                CallEdge("rate", CallPattern.PARALLEL, children=[_storage_calls("rate-store")]),
            ],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="recommend",
            entry_service="frontend",
            call_plan=recommend_plan,
            slo_latency_ms=120.0,
            weight=0.25,
        )
    )

    reserve_plan = [
        CallEdge("user", CallPattern.SEQUENTIAL),
        CallEdge(
            "reservation",
            CallPattern.SEQUENTIAL,
            children=[
                _storage_calls("reservation-store"),
                CallEdge("notify", CallPattern.BACKGROUND),
            ],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="reserve",
            entry_service="frontend",
            call_plan=reserve_plan,
            slo_latency_ms=200.0,
            weight=0.2,
        )
    )

    graph.validate()
    return graph


# ---------------------------------------------------------------------------
# Train-Ticket Booking
# ---------------------------------------------------------------------------

def train_ticket() -> ServiceGraph:
    """Train-Ticket booking service (enquiry, reservation, payment)."""
    graph = ServiceGraph("train_ticket")

    graph.add_service(frontend_profile("gateway"), replicas=2)
    graph.add_service(logic_profile("travel", base_ms=10.0, cv=0.4))
    graph.add_service(logic_profile("route", base_ms=6.0))
    graph.add_service(logic_profile("trainType", base_ms=3.0))
    graph.add_service(logic_profile("ticketInfo", base_ms=7.0, cv=0.5))
    graph.add_service(logic_profile("basicInfo", base_ms=4.0))
    graph.add_service(logic_profile("seat", base_ms=6.0, cv=0.5))
    graph.add_service(logic_profile("order", base_ms=9.0, cv=0.3))
    graph.add_service(logic_profile("preserve", base_ms=12.0, cv=0.3))
    graph.add_service(logic_profile("price", base_ms=3.0))
    graph.add_service(logic_profile("payment", base_ms=8.0))
    graph.add_service(logic_profile("insidePayment", base_ms=5.0))
    graph.add_service(logic_profile("security", base_ms=4.0))
    graph.add_service(logic_profile("contacts", base_ms=3.0))
    graph.add_service(logic_profile("stationFood", base_ms=5.0))
    graph.add_service(logic_profile("consign", base_ms=5.0))
    graph.add_service(background_profile("notification", base_ms=20.0))
    _storage_pair(graph, "order-store")
    _storage_pair(graph, "route-store")
    _storage_pair(graph, "user-store")
    _storage_pair(graph, "payment-store")

    enquiry_plan = [
        CallEdge(
            "travel",
            CallPattern.SEQUENTIAL,
            children=[
                CallEdge("route", CallPattern.PARALLEL, children=[_storage_calls("route-store")]),
                CallEdge("trainType", CallPattern.PARALLEL),
                CallEdge(
                    "ticketInfo",
                    CallPattern.SEQUENTIAL,
                    children=[
                        CallEdge("basicInfo", CallPattern.SEQUENTIAL),
                        CallEdge("price", CallPattern.PARALLEL),
                        CallEdge("seat", CallPattern.PARALLEL, children=[_storage_calls("order-store")]),
                    ],
                ),
            ],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="ticket-enquiry",
            entry_service="gateway",
            call_plan=enquiry_plan,
            slo_latency_ms=250.0,
            weight=0.5,
        )
    )

    reserve_plan = [
        CallEdge("security", CallPattern.SEQUENTIAL, children=[_storage_calls("user-store")]),
        CallEdge("contacts", CallPattern.PARALLEL),
        CallEdge(
            "preserve",
            CallPattern.SEQUENTIAL,
            children=[
                CallEdge("ticketInfo", CallPattern.SEQUENTIAL, children=[CallEdge("basicInfo", CallPattern.SEQUENTIAL)]),
                CallEdge("seat", CallPattern.SEQUENTIAL, children=[_storage_calls("order-store")]),
                CallEdge("order", CallPattern.SEQUENTIAL, children=[_storage_calls("order-store")]),
                CallEdge("stationFood", CallPattern.PARALLEL),
                CallEdge("consign", CallPattern.PARALLEL),
                CallEdge("notification", CallPattern.BACKGROUND),
            ],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="ticket-reserve",
            entry_service="gateway",
            call_plan=reserve_plan,
            slo_latency_ms=400.0,
            weight=0.3,
        )
    )

    payment_plan = [
        CallEdge(
            "payment",
            CallPattern.SEQUENTIAL,
            children=[
                CallEdge("insidePayment", CallPattern.SEQUENTIAL, children=[_storage_calls("payment-store")]),
                CallEdge("order", CallPattern.SEQUENTIAL, children=[_storage_calls("order-store")]),
                CallEdge("notification", CallPattern.BACKGROUND),
            ],
        ),
    ]
    graph.add_request_type(
        RequestType(
            name="ticket-payment",
            entry_service="gateway",
            call_plan=payment_plan,
            slo_latency_ms=300.0,
            weight=0.2,
        )
    )

    graph.validate()
    return graph


#: Registry used by the experiment harness to instantiate applications by name.
APPLICATIONS: Dict[str, Callable[[], ServiceGraph]] = {
    "social_network": social_network,
    "media_service": media_service,
    "hotel_reservation": hotel_reservation,
    "train_ticket": train_ticket,
}


def build_application(name: str) -> ServiceGraph:
    """Build one of the four benchmark applications by name."""
    if name not in APPLICATIONS:
        raise KeyError(f"unknown application {name!r}; choose from {sorted(APPLICATIONS)}")
    return APPLICATIONS[name]()
