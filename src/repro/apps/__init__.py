"""Benchmark microservice applications.

The paper evaluates FIRM on four applications: Social Network, Media
Service, and Hotel Reservation from DeathStarBench, plus the Train-Ticket
booking service.  We reproduce each one as a service dependency graph with
per-service performance profiles and request types that exercise
sequential, parallel, and background workflows (paper §2 / §3.2).
"""

from repro.apps.graph import (
    CallEdge,
    CallPattern,
    RequestType,
    ServiceGraph,
    ServiceNode,
)
from repro.apps.catalog import (
    APPLICATIONS,
    build_application,
    hotel_reservation,
    media_service,
    social_network,
    train_ticket,
)

__all__ = [
    "CallEdge",
    "CallPattern",
    "RequestType",
    "ServiceGraph",
    "ServiceNode",
    "APPLICATIONS",
    "build_application",
    "social_network",
    "media_service",
    "hotel_reservation",
    "train_ticket",
]
