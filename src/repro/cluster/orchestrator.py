"""Orchestrator: the Kubernetes-API substitute.

FIRM's deployment module (paper §3.5) executes actions through the cluster
orchestrator: re-partitioning a resource type for a container (cgroups CFS
quota, Intel MBA/CAT, blkio, tc/HTB) or scaling the number of replicas.
The :class:`Orchestrator` implements those verbs against the simulated
cluster and charges the Table-6 actuation latencies before an action takes
effect, so mitigation time is bounded below exactly as on real hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.actuation import ActuationModel
from repro.cluster.cluster import Cluster
from repro.cluster.instance import MicroserviceInstance
from repro.cluster.resources import Resource, ResourceLimits, ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG


class ScaleAction(str, enum.Enum):
    """The verbs the deployment module can actuate."""

    PARTITION = "partition"          # change one resource limit of a container
    SCALE_OUT = "scale_out"          # add a replica
    SCALE_IN = "scale_in"            # remove a replica
    SCALE_UP = "scale_up"            # grow all limits of a container
    SCALE_DOWN = "scale_down"        # shrink all limits of a container


@dataclass
class ActionRecord:
    """Audit record of one actuated action (used by Table 6 and tests)."""

    time: float
    action: ScaleAction
    service: str
    resource: Optional[Resource]
    value: Optional[float]
    latency_ms: float
    succeeded: bool
    detail: str = ""


class Orchestrator:
    """Executes resource-management actions with realistic actuation delays.

    ``cluster`` may be the shared :class:`~repro.cluster.cluster.Cluster`
    or one tenant's :class:`~repro.cluster.cluster.TenantClusterView`; in
    the latter case every scale-out deploys containers tagged with (and
    placed under the quotas of) that tenant, so each tenant of a
    multi-tenant harness gets its own orchestrator over the shared nodes.
    """

    def __init__(
        self,
        cluster: Cluster,
        engine: SimulationEngine,
        rng: SeededRNG,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.actuation = ActuationModel(rng)
        self.history: List[ActionRecord] = []
        #: Services that have been scaled out at least once keep warm images.
        self._warm_services: set = set()
        #: Observability bundle (set by the harness when enabled; None
        #: keeps actuation uninstrumented).
        self.obs = None
        self.obs_source = "orchestrator"

    def _observe_action(self, **data) -> None:
        if self.obs is not None:
            self.obs.journal.record(
                self.engine.now, "scale_action", self.obs_source, **data
            )
            self.obs.registry.counter(
                "scale_actions_total", action=data["action"]
            ).inc()

    # ----------------------------------------------------------- partitions
    def set_resource_limit(
        self,
        instance: MicroserviceInstance,
        resource: Resource,
        value: float,
    ) -> ActionRecord:
        """Re-partition one resource for the instance's container.

        The new limit becomes effective after the Table-6 partition latency.
        The request is validated against the node's capacity: the limit is
        clamped so a single container can never be granted more than the
        node physically has.
        """
        resource = Resource(resource)
        node = instance.container.node
        cap = node.capacity[resource] if node is not None else value
        clamped = max(0.0, min(float(value), cap))
        latency_ms = self.actuation.partition_latency_ms(resource)

        def _apply(engine: SimulationEngine) -> None:
            instance.container.set_limit(resource, clamped)
            instance.container.partition_enforced = True

        self.engine.schedule_after(latency_ms / 1000.0, _apply, name=f"partition:{resource.value}")
        record = ActionRecord(
            time=self.engine.now,
            action=ScaleAction.PARTITION,
            service=instance.profile.name,
            resource=resource,
            value=clamped,
            latency_ms=latency_ms,
            succeeded=True,
            detail=f"instance={instance.name}",
        )
        self.history.append(record)
        self._observe_action(
            action="partition",
            service=instance.profile.name,
            instance=instance.name,
            resource=resource.value,
            value=clamped,
        )
        return record

    def set_resource_limits(
        self, instance: MicroserviceInstance, limits: ResourceVector
    ) -> List[ActionRecord]:
        """Re-partition every resource type of one container."""
        return [
            self.set_resource_limit(instance, resource, limits[resource])
            for resource in limits
        ]

    # -------------------------------------------------------------- scaling
    def scale_up(
        self, instance: MicroserviceInstance, factor: float = 2.0
    ) -> List[ActionRecord]:
        """Grow all limits of one container by ``factor`` (scale-up)."""
        new_limits = instance.container.limits * factor
        records = self.set_resource_limits(instance, new_limits)
        for record in records:
            record.action = ScaleAction.SCALE_UP
        return records

    def scale_down(
        self, instance: MicroserviceInstance, factor: float = 0.5
    ) -> List[ActionRecord]:
        """Shrink all limits of one container by ``factor`` (scale-down)."""
        new_limits = instance.container.limits * factor
        records = self.set_resource_limits(instance, new_limits)
        for record in records:
            record.action = ScaleAction.SCALE_DOWN
        return records

    def scale_out(
        self,
        service_name: str,
        limits: Optional[ResourceLimits] = None,
    ) -> ActionRecord:
        """Add a replica of ``service_name`` (scale-out).

        Warm starts are used after the first scale-out of a service (the
        image is cached on the nodes); the very first replica addition pays
        the cold-start latency.
        """
        profile = self.cluster.profile_of(service_name)
        template = self.cluster.replicas_of(service_name)
        if limits is None and template:
            limits = ResourceLimits(dict(template[0].container.limits.values))
        warm = service_name in self._warm_services
        latency_ms = self.actuation.container_start_latency_ms(warm=warm)
        self._warm_services.add(service_name)

        def _apply(engine: SimulationEngine) -> None:
            self.cluster.deploy_service(profile, replicas=1, limits=limits)

        self.engine.schedule_after(latency_ms / 1000.0, _apply, name=f"scale-out:{service_name}")
        record = ActionRecord(
            time=self.engine.now,
            action=ScaleAction.SCALE_OUT,
            service=service_name,
            resource=None,
            value=None,
            latency_ms=latency_ms,
            succeeded=True,
            detail="warm" if warm else "cold",
        )
        self.history.append(record)
        self._observe_action(
            action="scale_out",
            service=service_name,
            before=len(template),
            after=len(template) + 1,
        )
        return record

    def scale_in(self, service_name: str) -> ActionRecord:
        """Remove one replica of ``service_name`` (never below one replica)."""
        replicas = self.cluster.replicas_of(service_name)
        succeeded = len(replicas) > 1
        latency_ms = 0.0
        if succeeded:
            victim = max(replicas, key=lambda instance: instance.replica_index)
            self.cluster.remove_instance(victim)
        record = ActionRecord(
            time=self.engine.now,
            action=ScaleAction.SCALE_IN,
            service=service_name,
            resource=None,
            value=None,
            latency_ms=latency_ms,
            succeeded=succeeded,
            detail="" if succeeded else "refused: last replica",
        )
        self.history.append(record)
        self._observe_action(
            action="scale_in",
            service=service_name,
            before=len(replicas),
            after=len(replicas) - 1 if succeeded else len(replicas),
        )
        return record

    # -------------------------------------------------------------- queries
    def replica_count(self, service_name: str) -> int:
        """Current number of replicas of a service."""
        return len(self.cluster.replicas_of(service_name))

    def actions_since(self, time_s: float) -> List[ActionRecord]:
        """All actions actuated at or after ``time_s``."""
        return [record for record in self.history if record.time >= time_s]
