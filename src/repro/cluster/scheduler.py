"""Placement policies for container scheduling.

The default cluster placement spreads containers across the least-allocated
nodes (the Kubernetes default scheduler's behaviour).  This module makes
the policy pluggable so experiments can study how placement interacts with
contention — bin-packing concentrates load (higher utilization, more
interference), spreading dilutes it, and anti-affinity keeps replicas of
the same service apart so a single node-level anomaly cannot take out a
whole replica set.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from repro.cluster.node import Node
from repro.cluster.resources import RESOURCE_TYPES, Resource, ResourceLimits, ResourceVector
from repro.sim.rng import SeededRNG


class PlacementPolicy(str, enum.Enum):
    """Available placement strategies."""

    SPREAD = "spread"            # least-allocated first (Kubernetes default)
    BINPACK = "binpack"          # most-allocated node that still fits
    RANDOM = "random"            # uniformly random among fitting nodes
    ANTI_AFFINITY = "anti_affinity"  # spread, avoiding nodes already hosting the service


class Scheduler:
    """Chooses the node for a new container under a configurable policy.

    Parameters
    ----------
    policy:
        Placement strategy.
    rng:
        Seeded RNG (used by the random policy; harmless otherwise).
    """

    def __init__(
        self,
        policy: PlacementPolicy = PlacementPolicy.SPREAD,
        rng: Optional[SeededRNG] = None,
    ) -> None:
        self.policy = PlacementPolicy(policy)
        self.rng = rng if rng is not None else SeededRNG(0)

    # ------------------------------------------------------------------ API
    def place(
        self,
        nodes: Sequence[Node],
        limits: Optional[ResourceLimits],
        service_name: Optional[str] = None,
    ) -> Node:
        """Pick a node for a container with the given limits.

        Falls back to the least-allocated node when nothing fits (the
        cluster is oversubscribed on limits, which is allowed — limits are
        caps, not reservations, until partitions are enforced).
        """
        if not nodes:
            raise ValueError("cannot place a container on an empty cluster")
        want = limits if limits is not None else ResourceLimits()
        fitting = [node for node in nodes if node.can_fit(want)]
        candidates = fitting if fitting else list(nodes)

        if self.policy is PlacementPolicy.SPREAD:
            return min(candidates, key=self._allocation_score)
        if self.policy is PlacementPolicy.BINPACK:
            return max(candidates, key=self._allocation_score)
        if self.policy is PlacementPolicy.RANDOM:
            index = self.rng.integers("scheduler:random", 0, len(candidates))
            return candidates[index]
        if self.policy is PlacementPolicy.ANTI_AFFINITY:
            return self._anti_affinity(candidates, service_name)
        raise ValueError(f"unknown placement policy {self.policy!r}")

    # ------------------------------------------------------------- internals
    @staticmethod
    def _allocation_score(node: Node) -> float:
        """Fraction of the node's most-allocated resource (0 = empty node)."""
        allocated = node.allocated_limits()
        capacity = node.capacity
        ratios = [
            allocated[resource] / capacity[resource]
            for resource in RESOURCE_TYPES
            if capacity[resource] > 0
        ]
        return max(ratios) if ratios else 0.0

    def _anti_affinity(self, candidates: List[Node], service_name: Optional[str]) -> Node:
        """Prefer nodes not already hosting a replica of the same service."""
        if service_name is None:
            return min(candidates, key=self._allocation_score)
        without_replica = [
            node
            for node in candidates
            if all(container.service_name != service_name for container in node.containers)
        ]
        pool = without_replica if without_replica else candidates
        return min(pool, key=self._allocation_score)
