"""Placement policies for container scheduling.

The default cluster placement spreads containers across the least-allocated
nodes (the Kubernetes default scheduler's behaviour).  This module makes
the policy pluggable so experiments can study how placement interacts with
contention — bin-packing concentrates load (higher utilization, more
interference), spreading dilutes it, and anti-affinity keeps replicas of
the same service apart so a single node-level anomaly cannot take out a
whole replica set.

Placement is also tenant-aware: every container may carry the identity of
the tenant that deployed it, and the scheduler can isolate tenants from
each other (``TENANT_ANTI_AFFINITY`` prefers nodes hosting no *other*
tenant's containers) or cap a tenant's footprint (``node_quotas`` pins each
tenant to at most N distinct nodes, after which new containers only land on
nodes the tenant already occupies).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro.cluster.node import Node
from repro.cluster.resources import RESOURCE_TYPES, ResourceLimits
from repro.sim.rng import SeededRNG


class PlacementPolicy(str, enum.Enum):
    """Available placement strategies."""

    SPREAD = "spread"            # least-allocated first (Kubernetes default)
    BINPACK = "binpack"          # most-allocated node that still fits
    RANDOM = "random"            # uniformly random among fitting nodes
    ANTI_AFFINITY = "anti_affinity"  # spread, avoiding nodes already hosting the service
    TENANT_ANTI_AFFINITY = "tenant_anti_affinity"  # spread, avoiding other tenants' nodes


class Scheduler:
    """Chooses the node for a new container under a configurable policy.

    Parameters
    ----------
    policy:
        Placement strategy.
    rng:
        Seeded RNG (used by the random policy; harmless otherwise).
    node_quotas:
        Optional per-tenant node quotas: once a tenant's containers occupy
        that many distinct nodes, further containers of the tenant are only
        placed on nodes it already occupies.  Applied under every policy.
    """

    def __init__(
        self,
        policy: PlacementPolicy = PlacementPolicy.SPREAD,
        rng: Optional[SeededRNG] = None,
        node_quotas: Optional[Dict[str, int]] = None,
    ) -> None:
        self.policy = PlacementPolicy(policy)
        self.rng = rng if rng is not None else SeededRNG(0)
        self.node_quotas: Dict[str, int] = dict(node_quotas or {})

    # ------------------------------------------------------------------ API
    def place(
        self,
        nodes: Sequence[Node],
        limits: Optional[ResourceLimits],
        service_name: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Node:
        """Pick a node for a container with the given limits.

        Falls back to the least-allocated node when nothing fits (the
        cluster is oversubscribed on limits, which is allowed — limits are
        caps, not reservations, until partitions are enforced).  When the
        deploying ``tenant`` has a node quota, the candidate set is first
        restricted to the nodes the tenant already occupies (once the quota
        is exhausted); the quota always wins over the fit check.
        """
        if not nodes:
            raise ValueError("cannot place a container on an empty cluster")
        want = limits if limits is not None else ResourceLimits()
        fitting = [node for node in nodes if node.can_fit(want)]
        candidates = fitting if fitting else list(nodes)
        candidates = self._apply_node_quota(nodes, candidates, tenant)

        if self.policy is PlacementPolicy.SPREAD:
            return min(candidates, key=self._allocation_score)
        if self.policy is PlacementPolicy.BINPACK:
            return max(candidates, key=self._allocation_score)
        if self.policy is PlacementPolicy.RANDOM:
            index = self.rng.integers("scheduler:random", 0, len(candidates))
            return candidates[index]
        if self.policy is PlacementPolicy.ANTI_AFFINITY:
            return self._anti_affinity(candidates, service_name)
        if self.policy is PlacementPolicy.TENANT_ANTI_AFFINITY:
            return self._tenant_anti_affinity(candidates, tenant)
        raise ValueError(f"unknown placement policy {self.policy!r}")

    # ------------------------------------------------------------- internals
    @staticmethod
    def _allocation_score(node: Node) -> float:
        """Fraction of the node's most-allocated resource (0 = empty node)."""
        allocated = node.allocated_limits()
        capacity = node.capacity
        ratios = [
            allocated[resource] / capacity[resource]
            for resource in RESOURCE_TYPES
            if capacity[resource] > 0
        ]
        return max(ratios) if ratios else 0.0

    def _anti_affinity(self, candidates: List[Node], service_name: Optional[str]) -> Node:
        """Prefer nodes not already hosting a replica of the same service."""
        if service_name is None:
            return min(candidates, key=self._allocation_score)
        without_replica = [
            node
            for node in candidates
            if all(container.service_name != service_name for container in node.containers)
        ]
        pool = without_replica if without_replica else candidates
        return min(pool, key=self._allocation_score)

    def _tenant_anti_affinity(self, candidates: List[Node], tenant: Optional[str]) -> Node:
        """Prefer nodes hosting no containers of *other* tenants.

        Untenanted containers (``tenant is None``) are neutral: they block
        nobody, so shared infrastructure can co-exist with every tenant.
        When every candidate already hosts a foreign tenant the policy
        degrades to plain spreading (co-location is then unavoidable, which
        is exactly the contention regime interference scenarios study).
        """
        if tenant is None:
            return min(candidates, key=self._allocation_score)
        exclusive = [
            node
            for node in candidates
            if all(
                container.tenant is None or container.tenant == tenant
                for container in node.containers
            )
        ]
        pool = exclusive if exclusive else candidates
        return min(pool, key=self._allocation_score)

    def _apply_node_quota(
        self,
        nodes: Sequence[Node],
        candidates: List[Node],
        tenant: Optional[str],
    ) -> List[Node]:
        """Restrict candidates to a tenant's occupied nodes once its quota fills."""
        if tenant is None:
            return candidates
        quota = self.node_quotas.get(tenant)
        if not quota or quota <= 0:
            return candidates
        occupied = [
            node
            for node in nodes
            if any(container.tenant == tenant for container in node.containers)
        ]
        if len(occupied) < quota:
            return candidates
        restricted = [node for node in candidates if node in occupied]
        return restricted if restricted else occupied
