"""Cluster: the collection of nodes, containers, and microservice replica sets.

The cluster is the substrate equivalent of the paper's 15-node Kubernetes
deployment.  It owns node placement, tracks the replica sets of every
deployed microservice, and offers the aggregate queries the orchestrator,
telemetry collector, and experiment harness rely on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.cluster.container import Container
from repro.cluster.instance import MicroserviceInstance, ServiceProfile
from repro.cluster.node import Node, NodeSpec
from repro.cluster.resources import Resource, ResourceLimits, ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG


class Cluster:
    """A set of nodes hosting microservice replica sets.

    Parameters
    ----------
    engine:
        Shared simulation engine.
    rng:
        Seeded RNG family for service-time draws and placement tie-breaking.
    node_specs:
        Hardware description of each node.  Defaults to a 15-node cluster
        matching the paper's scale (9 x86 nodes + 6 ppc64 nodes).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        rng: SeededRNG,
        node_specs: Optional[List[NodeSpec]] = None,
        scheduler: Optional["Scheduler"] = None,  # noqa: F821 - forward reference
    ) -> None:
        self.engine = engine
        self.rng = rng
        if node_specs is None:
            node_specs = self.default_node_specs()
        self.nodes: List[Node] = [Node(spec) for spec in node_specs]
        self._replicas: Dict[str, List[MicroserviceInstance]] = defaultdict(list)
        self._profiles: Dict[str, ServiceProfile] = {}
        if scheduler is None:
            from repro.cluster.scheduler import Scheduler

            scheduler = Scheduler(rng=rng)
        self.scheduler = scheduler

    # ------------------------------------------------------------- topology
    @staticmethod
    def default_node_specs(x86_nodes: int = 9, ppc64_nodes: int = 6) -> List[NodeSpec]:
        """Node specs mirroring the paper's mixed x86 / ppc64 testbed."""
        specs: List[NodeSpec] = []
        for index in range(x86_nodes):
            specs.append(NodeSpec(name=f"x86-{index}", architecture="x86"))
        for index in range(ppc64_nodes):
            specs.append(NodeSpec(name=f"ppc64-{index}", architecture="ppc64"))
        return specs

    def node_by_name(self, name: str) -> Node:
        """Look up a node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def all_containers(self) -> List[Container]:
        """Every container currently placed on any node."""
        containers: List[Container] = []
        for node in self.nodes:
            containers.extend(node.containers)
        return containers

    # ------------------------------------------------------------ deployment
    def deploy_service(
        self,
        profile: ServiceProfile,
        replicas: int = 1,
        limits: Optional[ResourceLimits] = None,
        node: Optional[Node] = None,
    ) -> List[MicroserviceInstance]:
        """Deploy ``replicas`` instances of a microservice.

        Placement uses a least-allocated heuristic (the Kubernetes default
        scheduler's spreading behaviour) unless a node is pinned explicitly.
        """
        self._profiles[profile.name] = profile
        instances: List[MicroserviceInstance] = []
        for _ in range(replicas):
            instances.append(self._deploy_one(profile, limits, node))
        return instances

    def _deploy_one(
        self,
        profile: ServiceProfile,
        limits: Optional[ResourceLimits],
        node: Optional[Node],
    ) -> MicroserviceInstance:
        target = (
            node
            if node is not None
            else self.scheduler.place(self.nodes, limits, service_name=profile.name)
        )
        container = Container(profile.name, limits=limits, threads=profile.threads)
        target.add_container(container)
        replica_index = len(self._replicas[profile.name])
        instance = MicroserviceInstance(
            profile, container, self.engine, self.rng, replica_index=replica_index
        )
        self._replicas[profile.name].append(instance)
        return instance

    def _pick_node(self, limits: Optional[ResourceLimits]) -> Node:
        """Delegate placement to the configured scheduler (kept for API compatibility)."""
        return self.scheduler.place(self.nodes, limits)

    def remove_instance(self, instance: MicroserviceInstance) -> None:
        """Scale down: remove one replica and free its container."""
        replicas = self._replicas.get(instance.profile.name, [])
        if instance in replicas:
            replicas.remove(instance)
        node = instance.container.node
        if node is not None:
            node.remove_container(instance.container)

    # --------------------------------------------------------------- queries
    def services(self) -> List[str]:
        """Names of all deployed microservices."""
        return sorted(name for name, replicas in self._replicas.items() if replicas)

    def replicas_of(self, service_name: str) -> List[MicroserviceInstance]:
        """All replicas of a service (empty list if not deployed)."""
        return list(self._replicas.get(service_name, []))

    def profile_of(self, service_name: str) -> ServiceProfile:
        """The registered profile of a deployed service."""
        return self._profiles[service_name]

    def instance_by_name(self, instance_name: str) -> MicroserviceInstance:
        """Look up an instance by its ``service#replica`` name."""
        service = instance_name.split("#", 1)[0]
        for instance in self._replicas.get(service, []):
            if instance.name == instance_name:
                return instance
        raise KeyError(f"no instance named {instance_name!r}")

    def pick_replica(self, service_name: str) -> MicroserviceInstance:
        """Load-balance: choose the replica with the fewest in-flight spans."""
        replicas = self._replicas.get(service_name, [])
        if not replicas:
            raise KeyError(f"service {service_name!r} is not deployed")
        return min(replicas, key=lambda instance: instance.in_flight)

    def total_requested_cpu(self) -> float:
        """Sum of CPU limits across all containers (Fig. 10(b)'s metric)."""
        return sum(container.limits[Resource.CPU] for container in self.all_containers())

    def total_capacity(self) -> ResourceVector:
        """Aggregate capacity across all nodes."""
        total = ResourceVector()
        for node in self.nodes:
            total = total + node.capacity
        return total

    def cluster_cpu_utilization(self) -> float:
        """Mean CPU utilization across nodes (Fig. 10 discussion metric)."""
        if not self.nodes:
            return 0.0
        values = [node.utilization()[Resource.CPU] for node in self.nodes]
        return float(sum(values) / len(values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(nodes={len(self.nodes)}, services={len(self.services())}, "
            f"containers={len(self.all_containers())})"
        )
