"""Cluster: the collection of nodes, containers, and microservice replica sets.

The cluster is the substrate equivalent of the paper's 15-node Kubernetes
deployment.  It owns node placement, tracks the replica sets of every
deployed microservice, and offers the aggregate queries the orchestrator,
telemetry collector, and experiment harness rely on.

One cluster can host **multiple tenants**: each deployed service may carry
the identity of the tenant that owns it, containers inherit that identity,
and per-tenant aggregate queries sit next to the cluster-wide ones.
:class:`TenantClusterView` narrows the cluster API to one tenant so that
per-tenant controllers and orchestrators operate on their own services
while contention still flows through the shared nodes.

Request routing is delegated to a pluggable
:class:`~repro.routing.router.RequestRouter`: :meth:`Cluster.route` (and
the legacy :meth:`Cluster.pick_replica`) resolve each service to a
registered load-balancing policy — per-service override, then tenant
default, then the cluster default ``least_in_flight`` — so experiments
can swap balancers without touching the cluster or the runtimes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

from repro.cluster.container import Container
from repro.cluster.instance import MicroserviceInstance, ServiceProfile
from repro.cluster.node import Node, NodeSpec
from repro.cluster.resources import (
    RESOURCE_TYPES,
    Resource,
    ResourceLimits,
    ResourceVector,
)
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG


class Cluster:
    """A set of nodes hosting microservice replica sets.

    Parameters
    ----------
    engine:
        Shared simulation engine.
    rng:
        Seeded RNG family for service-time draws and placement tie-breaking.
    node_specs:
        Hardware description of each node.  Defaults to a 15-node cluster
        matching the paper's scale (9 x86 nodes + 6 ppc64 nodes).
    routing:
        Default load-balancing policy name (see :mod:`repro.routing`);
        None keeps ``least_in_flight``, the pre-subsystem behaviour.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        rng: SeededRNG,
        node_specs: Optional[List[NodeSpec]] = None,
        scheduler: Optional["Scheduler"] = None,  # noqa: F821 - forward reference
        routing: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.rng = rng
        if node_specs is None:
            node_specs = self.default_node_specs()
        self.nodes: List[Node] = [Node(spec) for spec in node_specs]
        self._replicas: Dict[str, List[MicroserviceInstance]] = defaultdict(list)
        self._profiles: Dict[str, ServiceProfile] = {}
        #: Tenant owning each deployed service (None = untenanted).
        self._service_tenants: Dict[str, Optional[str]] = {}
        if scheduler is None:
            from repro.cluster.scheduler import Scheduler

            scheduler = Scheduler(rng=rng)
        self.scheduler = scheduler
        from repro.routing.base import DEFAULT_POLICY
        from repro.routing.router import RequestRouter

        #: Pluggable request router (policy resolution + decision audit).
        self.router = RequestRouter(self, default_policy=routing or DEFAULT_POLICY)
        #: Scale listeners, invoked as ``listener(service_name, instance,
        #: added)`` after every replica addition (deploys and scale-outs
        #: alike) and removal.  The anomaly injector uses this channel to
        #: re-resolve multi-node injection targets as replica sets change,
        #: the same way the router re-reads the live replica set.
        self._scale_listeners: List[Callable[[str, MicroserviceInstance, bool], None]] = []

    # ------------------------------------------------------------- topology
    @staticmethod
    def default_node_specs(x86_nodes: int = 9, ppc64_nodes: int = 6) -> List[NodeSpec]:
        """Node specs mirroring the paper's mixed x86 / ppc64 testbed."""
        specs: List[NodeSpec] = []
        for index in range(x86_nodes):
            specs.append(NodeSpec(name=f"x86-{index}", architecture="x86"))
        for index in range(ppc64_nodes):
            specs.append(NodeSpec(name=f"ppc64-{index}", architecture="ppc64"))
        return specs

    def node_by_name(self, name: str) -> Node:
        """Look up a node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def all_containers(self) -> List[Container]:
        """Every container currently placed on any node."""
        containers: List[Container] = []
        for node in self.nodes:
            containers.extend(node.containers)
        return containers

    # ------------------------------------------------------------ deployment
    def deploy_service(
        self,
        profile: ServiceProfile,
        replicas: int = 1,
        limits: Optional[ResourceLimits] = None,
        node: Optional[Node] = None,
        tenant: Optional[str] = None,
    ) -> List[MicroserviceInstance]:
        """Deploy ``replicas`` instances of a microservice.

        Placement uses a least-allocated heuristic (the Kubernetes default
        scheduler's spreading behaviour) unless a node is pinned explicitly.
        ``tenant`` records which tenant owns the service; its containers are
        tagged with the same identity so tenant-aware placement and
        per-tenant accounting can tell co-located tenants apart.  Scaling a
        service re-uses the tenant it was first deployed under.
        """
        self._profiles[profile.name] = profile
        if tenant is None:
            tenant = self._service_tenants.get(profile.name)
        self._service_tenants[profile.name] = tenant
        instances: List[MicroserviceInstance] = []
        for _ in range(replicas):
            instances.append(self._deploy_one(profile, limits, node, tenant))
        return instances

    def _deploy_one(
        self,
        profile: ServiceProfile,
        limits: Optional[ResourceLimits],
        node: Optional[Node],
        tenant: Optional[str] = None,
    ) -> MicroserviceInstance:
        target = (
            node
            if node is not None
            else self.scheduler.place(
                self.nodes, limits, service_name=profile.name, tenant=tenant
            )
        )
        container = Container(profile.name, limits=limits, threads=profile.threads, tenant=tenant)
        target.add_container(container)
        replica_index = len(self._replicas[profile.name])
        instance = MicroserviceInstance(
            profile, container, self.engine, self.rng, replica_index=replica_index
        )
        self._replicas[profile.name].append(instance)
        self.router.instrument(instance)
        for listener in self._scale_listeners:
            listener(profile.name, instance, True)
        return instance

    def _pick_node(self, limits: Optional[ResourceLimits]) -> Node:
        """Delegate placement to the configured scheduler (kept for API compatibility)."""
        return self.scheduler.place(self.nodes, limits)

    def remove_instance(self, instance: MicroserviceInstance) -> None:
        """Scale down: remove one replica and free its container."""
        replicas = self._replicas.get(instance.profile.name, [])
        if instance in replicas:
            replicas.remove(instance)
        node = instance.container.node
        if node is not None:
            node.remove_container(instance.container)
        for listener in self._scale_listeners:
            listener(instance.profile.name, instance, False)

    # ------------------------------------------------------- scale listeners
    def add_scale_listener(
        self, listener: Callable[[str, MicroserviceInstance, bool], None]
    ) -> None:
        """Register a hook fired after every replica addition or removal."""
        if listener not in self._scale_listeners:
            self._scale_listeners.append(listener)

    def remove_scale_listener(
        self, listener: Callable[[str, MicroserviceInstance, bool], None]
    ) -> None:
        """Deregister a previously added scale listener (no-op if absent)."""
        if listener in self._scale_listeners:
            self._scale_listeners.remove(listener)

    # --------------------------------------------------------------- queries
    def services(self, tenant: Optional[str] = None) -> List[str]:
        """Names of deployed microservices (optionally one tenant's only)."""
        names = sorted(name for name, replicas in self._replicas.items() if replicas)
        if tenant is None:
            return names
        return [name for name in names if self._service_tenants.get(name) == tenant]

    def tenants(self) -> List[str]:
        """Identities of all tenants with at least one deployed service."""
        return sorted(
            {
                tenant
                for name, tenant in self._service_tenants.items()
                if tenant is not None and self._replicas.get(name)
            }
        )

    def tenant_of(self, service_name: str) -> Optional[str]:
        """The tenant owning a deployed service (None when untenanted)."""
        return self._service_tenants.get(service_name)

    def replicas_of(self, service_name: str) -> List[MicroserviceInstance]:
        """All replicas of a service (empty list if not deployed)."""
        return list(self._replicas.get(service_name, []))

    def live_replicas(self, service_name: str) -> Optional[List[MicroserviceInstance]]:
        """The *internal* replica list, for the per-span routing hot path.

        Unlike :meth:`replicas_of` this does not copy: the returned list
        is the cluster's own bookkeeping and mutates on scale events.
        Callers must treat it as read-only and must not retain it across
        events.  Returns None when the service was never deployed.
        """
        return self._replicas.get(service_name)

    def profile_of(self, service_name: str) -> ServiceProfile:
        """The registered profile of a deployed service."""
        return self._profiles[service_name]

    def instance_by_name(self, instance_name: str) -> MicroserviceInstance:
        """Look up an instance by its ``service#replica`` name."""
        service = instance_name.split("#", 1)[0]
        for instance in self._replicas.get(service, []):
            if instance.name == instance_name:
                return instance
        raise KeyError(f"no instance named {instance_name!r}")

    def pick_replica(self, service_name: str) -> MicroserviceInstance:
        """Load-balance: choose a replica through the configured policy.

        The default policy is ``least_in_flight`` (fewest in-flight spans,
        ties broken by lowest replica index); see :meth:`set_routing_policy`
        for swapping it per cluster, tenant, or service.
        """
        return self.route(service_name).instance

    def route(self, service_name: str) -> "RoutingDecision":  # noqa: F821
        """Pick a replica and return the full routing decision (for tags)."""
        return self.router.route(service_name)

    def set_routing_policy(
        self,
        name: str,
        service: Optional[str] = None,
        tenant: Optional[str] = None,
        **kwargs,
    ) -> None:
        """Configure the load-balancing policy at some scope.

        With ``service`` given, pins that one service; with ``tenant``
        given, sets the default for every service the tenant owns; with
        neither, sets the cluster-wide default.  ``kwargs`` are forwarded
        to the policy factory (e.g. ``alpha=0.2`` for ``ewma_latency``).
        """
        if service is not None and tenant is not None:
            raise ValueError("pass at most one of service/tenant")
        if service is not None:
            self.router.set_service_policy(service, name, **kwargs)
        elif tenant is not None:
            self.router.set_tenant_policy(tenant, name, **kwargs)
        else:
            self.router.set_default_policy(name, **kwargs)

    def total_requested_cpu(self, tenant: Optional[str] = None) -> float:
        """Sum of CPU limits across containers (Fig. 10(b)'s metric).

        With ``tenant`` given, only that tenant's containers are counted.
        """
        return sum(
            container.limits[Resource.CPU]
            for container in self.all_containers()
            if tenant is None or container.tenant == tenant
        )

    def total_capacity(self) -> ResourceVector:
        """Aggregate capacity across all nodes."""
        total = ResourceVector()
        for node in self.nodes:
            total = total + node.capacity
        return total

    def cluster_cpu_utilization(self) -> float:
        """Mean CPU utilization across nodes (Fig. 10 discussion metric)."""
        if not self.nodes:
            return 0.0
        values = [node.utilization()[Resource.CPU] for node in self.nodes]
        return float(sum(values) / len(values))

    # --------------------------------------------------------------- sharding
    def node_demand_snapshot(self) -> Dict[str, Dict[Resource, float]]:
        """Per-node demand this cluster exerts, as plain picklable dicts.

        Each node's entry sums its hosted containers' capped demand (in
        container order) plus the node's own anomaly-injected pressure —
        everything a *different* shard simulating the same topology needs
        to reproduce this shard's share of node contention.  Remote
        pressure already applied to this cluster is deliberately excluded
        so snapshots never echo other shards' demand back at them.
        """
        snapshot: Dict[str, Dict[Resource, float]] = {}
        for node in self.nodes:
            totals: Dict[Resource, float] = {r: 0.0 for r in RESOURCE_TYPES}
            for container in node.containers:
                demand_values = container._capped_demand_values()
                for resource in RESOURCE_TYPES:
                    totals[resource] = totals[resource] + demand_values[resource]
            pressure_values = node._injected_pressure.values
            for resource in RESOURCE_TYPES:
                totals[resource] = totals[resource] + pressure_values[resource]
            snapshot[node.name] = totals
        return snapshot

    def apply_remote_pressure(
        self, pressure: Optional[Dict[str, Dict[Resource, float]]]
    ) -> None:
        """Install cross-shard demand per node (None/missing nodes detach)."""
        mapping = pressure or {}
        for node in self.nodes:
            values = mapping.get(node.name)
            if values is None:
                node.set_remote_pressure(None)
            else:
                node.set_remote_pressure(ResourceVector._from_normalized(dict(values)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(nodes={len(self.nodes)}, services={len(self.services())}, "
            f"containers={len(self.all_containers())})"
        )


class TenantClusterView:
    """One tenant's view of a shared cluster.

    The view exposes the :class:`Cluster` API with every service-level query
    scoped to the tenant's own services, while node-level state (topology,
    capacity, utilization) stays shared — so a controller handed a view can
    only see and act on its tenant's containers, yet still experiences the
    contention generated by everyone co-located on the same nodes.

    Controllers, orchestrators, runtimes, and injectors accept a view
    anywhere they accept a cluster; deployments made through the view are
    automatically tagged with the tenant's identity.
    """

    def __init__(self, cluster: Cluster, tenant: str) -> None:
        self.cluster = cluster
        self.tenant = tenant

    # ------------------------------------------------------- shared topology
    @property
    def engine(self) -> SimulationEngine:
        return self.cluster.engine

    @property
    def rng(self) -> SeededRNG:
        return self.cluster.rng

    @property
    def nodes(self) -> List[Node]:
        return self.cluster.nodes

    @property
    def scheduler(self):
        return self.cluster.scheduler

    def node_by_name(self, name: str) -> Node:
        return self.cluster.node_by_name(name)

    def add_scale_listener(self, listener) -> None:
        """Scale events are cluster-wide; listeners filter by service name."""
        self.cluster.add_scale_listener(listener)

    def remove_scale_listener(self, listener) -> None:
        self.cluster.remove_scale_listener(listener)

    def total_capacity(self) -> ResourceVector:
        return self.cluster.total_capacity()

    def cluster_cpu_utilization(self) -> float:
        """Cluster-wide utilization: contention is shared, so is this view."""
        return self.cluster.cluster_cpu_utilization()

    # ------------------------------------------------------- scoped queries
    def _owns(self, service_name: str) -> bool:
        return self.cluster.tenant_of(service_name) == self.tenant

    def all_containers(self) -> List[Container]:
        """Only the tenant's containers (in shared-cluster placement order)."""
        return [
            container
            for container in self.cluster.all_containers()
            if container.tenant == self.tenant
        ]

    def services(self) -> List[str]:
        return self.cluster.services(tenant=self.tenant)

    def replicas_of(self, service_name: str) -> List[MicroserviceInstance]:
        if not self._owns(service_name):
            return []
        return self.cluster.replicas_of(service_name)

    def profile_of(self, service_name: str) -> ServiceProfile:
        if not self._owns(service_name):
            raise KeyError(f"service {service_name!r} is not owned by tenant {self.tenant!r}")
        return self.cluster.profile_of(service_name)

    def instance_by_name(self, instance_name: str) -> MicroserviceInstance:
        service = instance_name.split("#", 1)[0]
        if not self._owns(service):
            raise KeyError(f"instance {instance_name!r} is not owned by tenant {self.tenant!r}")
        return self.cluster.instance_by_name(instance_name)

    def pick_replica(self, service_name: str) -> MicroserviceInstance:
        if not self._owns(service_name):
            raise KeyError(f"service {service_name!r} is not owned by tenant {self.tenant!r}")
        return self.cluster.pick_replica(service_name)

    def route(self, service_name: str) -> "RoutingDecision":  # noqa: F821
        """Route within the tenant's own replicas (ownership enforced)."""
        if not self._owns(service_name):
            raise KeyError(f"service {service_name!r} is not owned by tenant {self.tenant!r}")
        return self.cluster.route(service_name)

    @property
    def router(self):
        """The shared cluster's request router."""
        return self.cluster.router

    def set_routing_policy(
        self, name: str, service: Optional[str] = None, **kwargs
    ) -> None:
        """Configure routing for this tenant (or one of its services).

        Without ``service``, sets the tenant-wide default; per-tenant
        policies coexist on one shared cluster because policy resolution
        is per (tenant-namespaced) service.
        """
        if service is not None:
            if not self._owns(service):
                raise KeyError(
                    f"service {service!r} is not owned by tenant {self.tenant!r}"
                )
            self.cluster.set_routing_policy(name, service=service, **kwargs)
        else:
            self.cluster.set_routing_policy(name, tenant=self.tenant, **kwargs)

    def total_requested_cpu(self) -> float:
        return self.cluster.total_requested_cpu(tenant=self.tenant)

    # ---------------------------------------------------- scoped deployment
    def deploy_service(
        self,
        profile: ServiceProfile,
        replicas: int = 1,
        limits: Optional[ResourceLimits] = None,
        node: Optional[Node] = None,
        tenant: Optional[str] = None,
    ) -> List[MicroserviceInstance]:
        """Deploy on the shared cluster, tagged with this view's tenant."""
        if tenant is not None and tenant != self.tenant:
            raise ValueError(
                f"tenant view {self.tenant!r} cannot deploy for tenant {tenant!r}"
            )
        return self.cluster.deploy_service(
            profile, replicas=replicas, limits=limits, node=node, tenant=self.tenant
        )

    def remove_instance(self, instance: MicroserviceInstance) -> None:
        if not self._owns(instance.profile.name):
            raise KeyError(
                f"instance {instance.name!r} is not owned by tenant {self.tenant!r}"
            )
        self.cluster.remove_instance(instance)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantClusterView(tenant={self.tenant!r}, "
            f"services={len(self.services())}, containers={len(self.all_containers())})"
        )
