"""Container model.

A container is the unit of resource control: it has per-resource limits
(the ``RLT`` vector FIRM's RL agent adjusts) and reports per-resource usage
(``RU``).  Its instantaneous resource *demand* is driven by the
microservice instance it hosts (how many requests are in service and what
each request consumes).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.cluster.resources import (
    RESOURCE_TYPES,
    Resource,
    ResourceLimits,
    ResourceUsage,
    ResourceVector,
    default_container_limits,
)

_container_ids = itertools.count()


class Container:
    """A cgroups-limited container hosting one microservice instance replica.

    Parameters
    ----------
    service_name:
        Name of the microservice this container belongs to.
    limits:
        Initial per-resource limits; defaults to the overprovisioned
        defaults from :func:`repro.cluster.resources.default_container_limits`.
    threads:
        Number of worker threads created by the service.  The paper notes
        the effective CPU limit is the smaller of the configured limit and
        ``threads x 100%``; we model the same cap.
    tenant:
        Identity of the tenant that deployed this container, or None for
        untenanted (single-tenant) deployments.  Used by tenant-aware
        placement and per-tenant telemetry/accounting.
    """

    def __init__(
        self,
        service_name: str,
        limits: Optional[ResourceLimits] = None,
        threads: int = 8,
        tenant: Optional[str] = None,
    ) -> None:
        self.id = f"{service_name}-{next(_container_ids)}"
        self.service_name = service_name
        self.tenant = tenant
        self.limits: ResourceLimits = (
            ResourceLimits(dict(limits.values)) if limits is not None else default_container_limits()
        )
        self.threads = int(threads)
        self.node = None  # type: Optional["Node"]  # noqa: F821
        self.instance = None  # type: Optional["MicroserviceInstance"]  # noqa: F821
        self._started_cold = True
        #: True once a controller has explicitly partitioned this container's
        #: resources (cgroups CFS quota, Intel MBA/CAT, blkio, tc/HTB).  Until
        #: then the container runs best-effort and its limits are only caps.
        self.partition_enforced = False

    # ------------------------------------------------------------- limits
    def effective_cpu_limit(self) -> float:
        """CPU limit capped by the thread count (paper §3.4 footnote)."""
        return min(self.limits[Resource.CPU], float(self.threads))

    def set_limit(self, resource: Resource, value: float) -> None:
        """Set one resource limit, clamped to be non-negative."""
        self.limits[resource] = max(0.0, float(value))

    def set_limits(self, limits: ResourceVector) -> None:
        """Replace all limits at once."""
        for resource in RESOURCE_TYPES:
            self.set_limit(resource, limits[resource])

    # ------------------------------------------------------------- demand
    def current_demand(self) -> ResourceVector:
        """Instantaneous demand, bounded by the container's own limits.

        Demand originates from the hosted instance (requests in service and
        queued work); the cgroups-style limit caps how much of the node each
        container can actually pull.
        """
        if self.instance is None:
            return ResourceVector()
        raw = self.instance.resource_demand()
        capped: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            limit = (
                self.effective_cpu_limit()
                if resource is Resource.CPU
                else self.limits[resource]
            )
            capped[resource] = min(raw[resource], limit) if limit > 0 else 0.0
        return ResourceVector(capped)

    def usage(self) -> ResourceUsage:
        """Usage sample exported to telemetry (same shape as demand)."""
        return ResourceUsage(dict(self.current_demand().values))

    def utilization(self) -> ResourceVector:
        """Usage divided by limit for each resource (RU/RLT in the paper)."""
        usage = self.current_demand()
        result: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            limit = (
                self.effective_cpu_limit()
                if resource is Resource.CPU
                else self.limits[resource]
            )
            result[resource] = usage[resource] / limit if limit > 0 else 0.0
        return ResourceVector(result)

    # ---------------------------------------------------------- throttling
    def _limit_for(self, resource: Resource) -> float:
        """Effective cap for one resource (CPU is additionally thread-capped)."""
        if resource is Resource.CPU:
            return self.effective_cpu_limit()
        return self.limits[resource]

    def _cap_factors(self) -> Dict[Resource, float]:
        """Per-resource slowdown from the container's own limits (caps).

        cgroups CFS quota, MBA, blkio, and HTB throttle a container when it
        wants more of a resource than its limit; the slowdown follows the
        same queueing-delay curve used for node-level contention.
        """
        from repro.cluster.node import Node  # local import avoids a cycle

        factors: Dict[Resource, float] = {}
        if self.instance is None:
            return {resource: 1.0 for resource in RESOURCE_TYPES}
        raw = self.instance.resource_demand()
        for resource in RESOURCE_TYPES:
            want = raw[resource]
            limit = self._limit_for(resource)
            if want <= 0:
                factors[resource] = 1.0
            elif limit <= 0:
                factors[resource] = Node._queueing_factor(Node.MAX_UTILIZATION)
            else:
                factors[resource] = Node._queueing_factor(want / limit)
        return factors

    def throttle_factor(self) -> float:
        """Worst-case slowdown caused by the container's own limits.

        Per-resource cap factors are weighted by how much the service
        actually depends on each resource, and the worst weighted factor is
        returned.
        """
        if self.instance is None:
            return 1.0
        profile = self.instance.profile.resource_weights
        factors = self._cap_factors()
        worst = 1.0
        for resource in RESOURCE_TYPES:
            weight = profile.get(resource, 0.0)
            worst = max(worst, 1.0 + (factors[resource] - 1.0) * weight)
        return worst

    def node_contention_factor(self) -> float:
        """Worst-case slowdown caused by contention on the hosting node.

        Each resource's node-level contention factor (honouring this
        container's partition enforcement) is weighted by the service's
        sensitivity to that resource.
        """
        if self.node is None or self.instance is None:
            return 1.0
        factors = self.node.contention_factors(self)
        profile = self.instance.profile.resource_weights
        slowdown = 1.0
        for resource in RESOURCE_TYPES:
            weight = profile.get(resource, 0.0)
            slowdown = max(slowdown, 1.0 + (factors[resource] - 1.0) * weight)
        return slowdown

    def total_slowdown(self) -> float:
        """Combined slowdown from limits (caps) and node contention.

        For each resource the binding constraint is whichever is worse —
        the container's own cap or the node-level contention it is exposed
        to — so the per-resource factors are combined with ``max`` (not
        multiplied, which would double-count the same saturated resource)
        before being weighted by the service's sensitivity.
        """
        if self.instance is None:
            return 1.0
        cap = self._cap_factors()
        node_factors = (
            self.node.contention_factors(self)
            if self.node is not None
            else {resource: 1.0 for resource in RESOURCE_TYPES}
        )
        profile = self.instance.profile.resource_weights
        slowdown = 1.0
        for resource in RESOURCE_TYPES:
            weight = profile.get(resource, 0.0)
            factor = max(cap[resource], node_factors[resource])
            slowdown = max(slowdown, 1.0 + (factor - 1.0) * weight)
        return slowdown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        node = self.node.name if self.node is not None else None
        return f"Container(id={self.id!r}, service={self.service_name!r}, node={node!r})"
