"""Container model.

A container is the unit of resource control: it has per-resource limits
(the ``RLT`` vector FIRM's RL agent adjusts) and reports per-resource usage
(``RU``).  Its instantaneous resource *demand* is driven by the
microservice instance it hosts (how many requests are in service and what
each request consumes).

Demand, throttle, and contention factors are recomputed for every span a
replica dispatches, so this module is a simulation hot path: the class is
slotted and the per-resource loops work on plain dicts instead of going
through :class:`~repro.cluster.resources.ResourceVector` arithmetic.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.cluster.resources import (
    RESOURCE_TYPES,
    Resource,
    ResourceLimits,
    ResourceUsage,
    ResourceVector,
    default_container_limits,
)

_container_ids = itertools.count()


class Container:
    """A cgroups-limited container hosting one microservice instance replica.

    Parameters
    ----------
    service_name:
        Name of the microservice this container belongs to.
    limits:
        Initial per-resource limits; defaults to the overprovisioned
        defaults from :func:`repro.cluster.resources.default_container_limits`.
    threads:
        Number of worker threads created by the service.  The paper notes
        the effective CPU limit is the smaller of the configured limit and
        ``threads x 100%``; we model the same cap.
    tenant:
        Identity of the tenant that deployed this container, or None for
        untenanted (single-tenant) deployments.  Used by tenant-aware
        placement and per-tenant telemetry/accounting.
    """

    __slots__ = (
        "id",
        "service_name",
        "tenant",
        "limits",
        "threads",
        "node",
        "instance",
        "_started_cold",
        "partition_enforced",
        "_limits_version",
        "_demand_key",
        "_demand_values",
    )

    def __init__(
        self,
        service_name: str,
        limits: Optional[ResourceLimits] = None,
        threads: int = 8,
        tenant: Optional[str] = None,
    ) -> None:
        self.id = f"{service_name}-{next(_container_ids)}"
        self.service_name = service_name
        self.tenant = tenant
        self.limits: ResourceLimits = (
            ResourceLimits(dict(limits.values)) if limits is not None else default_container_limits()
        )
        self.threads = int(threads)
        self.node = None  # type: Optional["Node"]  # noqa: F821
        self.instance = None  # type: Optional["MicroserviceInstance"]  # noqa: F821
        self._started_cold = True
        #: True once a controller has explicitly partitioned this container's
        #: resources (cgroups CFS quota, Intel MBA/CAT, blkio, tc/HTB).  Until
        #: then the container runs best-effort and its limits are only caps.
        self.partition_enforced = False
        # Capped-demand memo: demand only changes when the hosted instance's
        # queue/in-service population or this container's limits change, but
        # node-level contention re-reads it for every container on the node
        # per dispatched span.  Keyed by (queue len, in-service len, limits
        # version); ``threads`` and the profile's per-request demand are
        # fixed after the instance binds, so they stay out of the key.
        self._limits_version = 0
        self._demand_key: Optional[tuple] = None
        self._demand_values: Optional[Dict[Resource, float]] = None

    # ------------------------------------------------------------- limits
    def effective_cpu_limit(self) -> float:
        """CPU limit capped by the thread count (paper §3.4 footnote)."""
        return min(self.limits.values[Resource.CPU], float(self.threads))

    def set_limit(self, resource: Resource, value: float) -> None:
        """Set one resource limit, clamped to be non-negative."""
        self.limits[resource] = max(0.0, float(value))
        self._limits_version += 1

    def set_limits(self, limits: ResourceVector) -> None:
        """Replace all limits at once."""
        for resource in RESOURCE_TYPES:
            self.set_limit(resource, limits[resource])

    # ------------------------------------------------------------- demand
    def _capped_demand_values(self) -> Dict[Resource, float]:
        """Instantaneous demand as a plain dict (internal hot path).

        Demand originates from the hosted instance (requests in service and
        queued work); the cgroups-style limit caps how much of the node each
        container can actually pull.  The result is memoized against the
        instance's population and the limits version — callers treat the
        returned dict as read-only.
        """
        instance = self.instance
        if instance is None:
            return {resource: 0.0 for resource in RESOURCE_TYPES}
        key = (len(instance._queue), len(instance._in_service), self._limits_version)
        if key == self._demand_key:
            return self._demand_values
        raw = instance._demand_values()
        limit_values = self.limits.values
        effective_cpu = self.effective_cpu_limit()
        capped: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            limit = (
                effective_cpu if resource is Resource.CPU else limit_values[resource]
            )
            want = raw[resource]
            capped[resource] = (want if want < limit else limit) if limit > 0 else 0.0
        self._demand_key = key
        self._demand_values = capped
        return capped

    def current_demand(self) -> ResourceVector:
        """Instantaneous demand, bounded by the container's own limits."""
        return ResourceVector._from_normalized(dict(self._capped_demand_values()))

    def usage(self) -> ResourceUsage:
        """Usage sample exported to telemetry (same shape as demand)."""
        return ResourceUsage._from_normalized(dict(self._capped_demand_values()))

    def demand_and_utilization(self) -> "tuple[Dict[Resource, float], Dict[Resource, float]]":
        """Capped demand and RU/RLT utilization from one demand pass.

        The single place that owns the effective-limit special case for
        utilization; telemetry sampling uses it so usage and utilization
        are derived from the same instant without recomputing demand.
        """
        demand = dict(self._capped_demand_values())
        limit_values = self.limits.values
        utilization: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            limit = (
                self.effective_cpu_limit()
                if resource is Resource.CPU
                else limit_values[resource]
            )
            utilization[resource] = demand[resource] / limit if limit > 0 else 0.0
        return demand, utilization

    def utilization(self) -> ResourceVector:
        """Usage divided by limit for each resource (RU/RLT in the paper)."""
        return ResourceVector._from_normalized(self.demand_and_utilization()[1])

    # ---------------------------------------------------------- throttling
    def _limit_for(self, resource: Resource) -> float:
        """Effective cap for one resource (CPU is additionally thread-capped)."""
        if resource is Resource.CPU:
            return self.effective_cpu_limit()
        return self.limits.values[resource]

    def _cap_factors(self) -> Dict[Resource, float]:
        """Per-resource slowdown from the container's own limits (caps).

        cgroups CFS quota, MBA, blkio, and HTB throttle a container when it
        wants more of a resource than its limit; the slowdown follows the
        same queueing-delay curve used for node-level contention.
        """
        from repro.cluster.node import Node  # local import avoids a cycle

        if self.instance is None:
            return {resource: 1.0 for resource in RESOURCE_TYPES}
        queueing_factor = Node._queueing_factor
        raw = self.instance._demand_values()
        factors: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            want = raw[resource]
            limit = self._limit_for(resource)
            if want <= 0:
                factors[resource] = 1.0
            elif limit <= 0:
                factors[resource] = queueing_factor(Node.MAX_UTILIZATION)
            else:
                factors[resource] = queueing_factor(want / limit)
        return factors

    def throttle_factor(self) -> float:
        """Worst-case slowdown caused by the container's own limits.

        Per-resource cap factors are weighted by how much the service
        actually depends on each resource, and the worst weighted factor is
        returned.
        """
        if self.instance is None:
            return 1.0
        profile = self.instance.profile.resource_weights
        factors = self._cap_factors()
        worst = 1.0
        for resource in RESOURCE_TYPES:
            weight = profile.get(resource, 0.0)
            worst = max(worst, 1.0 + (factors[resource] - 1.0) * weight)
        return worst

    def node_contention_factor(self) -> float:
        """Worst-case slowdown caused by contention on the hosting node.

        Each resource's node-level contention factor (honouring this
        container's partition enforcement) is weighted by the service's
        sensitivity to that resource.
        """
        if self.node is None or self.instance is None:
            return 1.0
        factors = self.node.contention_factors(self)
        profile = self.instance.profile.resource_weights
        slowdown = 1.0
        for resource in RESOURCE_TYPES:
            weight = profile.get(resource, 0.0)
            slowdown = max(slowdown, 1.0 + (factors[resource] - 1.0) * weight)
        return slowdown

    def total_slowdown(self) -> float:
        """Combined slowdown from limits (caps) and node contention.

        For each resource the binding constraint is whichever is worse —
        the container's own cap or the node-level contention it is exposed
        to — so the per-resource factors are combined with ``max`` (not
        multiplied, which would double-count the same saturated resource)
        before being weighted by the service's sensitivity.
        """
        if self.instance is None:
            return 1.0
        cap = self._cap_factors()
        node = self.node
        if node is not None:
            node_factors = node.contention_factors(self)
        else:
            node_factors = {resource: 1.0 for resource in RESOURCE_TYPES}
        profile = self.instance.profile.resource_weights
        slowdown = 1.0
        for resource in RESOURCE_TYPES:
            weight = profile.get(resource, 0.0)
            factor = max(cap[resource], node_factors[resource])
            slowdown = max(slowdown, 1.0 + (factor - 1.0) * weight)
        return slowdown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        node = self.node.name if self.node is not None else None
        return f"Container(id={self.id!r}, service={self.service_name!r}, node={node!r})"
