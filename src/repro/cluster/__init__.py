"""Simulated Kubernetes-like cluster substrate.

The paper runs FIRM against a 15-node Kubernetes cluster; this package
provides the equivalent substrate: nodes with finite fine-grained resources
(CPU, memory bandwidth, LLC capacity, disk I/O bandwidth, network
bandwidth), containers with per-resource limits, microservice instances
with request queues whose service times degrade under contention, and an
orchestrator exposing the scale-up / scale-out / partition operations (with
the actuation latencies of Table 6) that FIRM's deployment module drives.
"""

from repro.cluster.resources import (
    RESOURCE_TYPES,
    Resource,
    ResourceLimits,
    ResourceUsage,
    ResourceVector,
)
from repro.cluster.node import Node, NodeSpec
from repro.cluster.container import Container
from repro.cluster.instance import MicroserviceInstance
from repro.cluster.cluster import Cluster, TenantClusterView
from repro.cluster.orchestrator import Orchestrator, ScaleAction
from repro.cluster.scheduler import PlacementPolicy, Scheduler
from repro.cluster.actuation import ACTUATION_LATENCY, ActuationModel
from repro.cluster.telemetry import TelemetrySample, TelemetryCollector

__all__ = [
    "RESOURCE_TYPES",
    "Resource",
    "ResourceLimits",
    "ResourceUsage",
    "ResourceVector",
    "Node",
    "NodeSpec",
    "Container",
    "MicroserviceInstance",
    "Cluster",
    "TenantClusterView",
    "Orchestrator",
    "ScaleAction",
    "PlacementPolicy",
    "Scheduler",
    "ACTUATION_LATENCY",
    "ActuationModel",
    "TelemetrySample",
    "TelemetryCollector",
]
