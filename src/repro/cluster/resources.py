"""Fine-grained resource model.

FIRM manages five resource types per microservice container (paper §3.4):
CPU time, memory bandwidth, last-level-cache (LLC) capacity, disk I/O
bandwidth, and network bandwidth.  This module defines the resource
enumeration and small vector types used everywhere else: node capacities,
container limits, instantaneous demand, and utilization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class Resource(str, enum.Enum):
    """The five fine-grained resource types controlled by FIRM.

    Values double as the telemetry field names used by the tracing
    coordinator and the RL state vector.
    """

    CPU = "cpu"
    MEMORY_BANDWIDTH = "memory_bandwidth"
    LLC = "llc"
    DISK_IO = "disk_io"
    NETWORK = "network"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Canonical ordering of resources used for state/action vectors.
RESOURCE_TYPES: Tuple[Resource, ...] = (
    Resource.CPU,
    Resource.MEMORY_BANDWIDTH,
    Resource.LLC,
    Resource.DISK_IO,
    Resource.NETWORK,
)

#: Default units, for documentation and pretty-printing only.
RESOURCE_UNITS: Dict[Resource, str] = {
    Resource.CPU: "cores",
    Resource.MEMORY_BANDWIDTH: "GB/s",
    Resource.LLC: "MB",
    Resource.DISK_IO: "MB/s",
    Resource.NETWORK: "Gb/s",
}


@dataclass
class ResourceVector:
    """A per-resource-type quantity (capacity, demand, usage, or limit).

    The vector behaves like a small mapping from :class:`Resource` to float
    and supports element-wise arithmetic, which keeps contention and
    utilization computations readable.
    """

    values: Dict[Resource, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            normalized[resource] = float(self.values.get(resource, 0.0))
        self.values = normalized

    # ------------------------------------------------------------ accessors
    def __getitem__(self, resource: Resource) -> float:
        return self.values[Resource(resource)]

    def __setitem__(self, resource: Resource, value: float) -> None:
        self.values[Resource(resource)] = float(value)

    def get(self, resource: Resource, default: float = 0.0) -> float:
        return self.values.get(Resource(resource), default)

    def __iter__(self) -> Iterator[Resource]:
        return iter(RESOURCE_TYPES)

    def items(self) -> Iterable[Tuple[Resource, float]]:
        return ((resource, self.values[resource]) for resource in RESOURCE_TYPES)

    def as_dict(self) -> Dict[str, float]:
        """Plain-string-keyed dictionary (for reports and JSON)."""
        return {resource.value: self.values[resource] for resource in RESOURCE_TYPES}

    def copy(self) -> "ResourceVector":
        return ResourceVector(dict(self.values))

    # ----------------------------------------------------------- arithmetic
    def _combine(self, other: "ResourceVector | Mapping | float", op) -> "ResourceVector":
        result: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            if isinstance(other, (int, float)):
                rhs = float(other)
            elif isinstance(other, ResourceVector):
                rhs = other[resource]
            else:
                rhs = float(other.get(resource, 0.0))
            result[resource] = op(self.values[resource], rhs)
        return ResourceVector(result)

    def __add__(self, other) -> "ResourceVector":
        return self._combine(other, lambda a, b: a + b)

    def __sub__(self, other) -> "ResourceVector":
        return self._combine(other, lambda a, b: a - b)

    def __mul__(self, other) -> "ResourceVector":
        return self._combine(other, lambda a, b: a * b)

    def clamp_nonnegative(self) -> "ResourceVector":
        """Return a copy with all negative entries replaced by zero."""
        return ResourceVector(
            {resource: max(0.0, value) for resource, value in self.values.items()}
        )

    def ratio(self, denominator: "ResourceVector") -> "ResourceVector":
        """Element-wise ratio; a zero denominator maps to a ratio of zero."""
        result: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            denom = denominator[resource]
            result[resource] = self.values[resource] / denom if denom > 0 else 0.0
        return ResourceVector(result)

    def total(self) -> float:
        """Sum across all resource types (used for coarse comparisons)."""
        return float(sum(self.values[resource] for resource in RESOURCE_TYPES))

    def dominates(self, other: "ResourceVector") -> bool:
        """True if every component is >= the corresponding component of ``other``."""
        return all(self.values[r] >= other[r] for r in RESOURCE_TYPES)

    @classmethod
    def uniform(cls, value: float) -> "ResourceVector":
        """Vector with the same ``value`` for every resource type."""
        return cls({resource: value for resource in RESOURCE_TYPES})

    @classmethod
    def from_kwargs(
        cls,
        cpu: float = 0.0,
        memory_bandwidth: float = 0.0,
        llc: float = 0.0,
        disk_io: float = 0.0,
        network: float = 0.0,
    ) -> "ResourceVector":
        """Construct from keyword arguments, one per resource type."""
        return cls(
            {
                Resource.CPU: cpu,
                Resource.MEMORY_BANDWIDTH: memory_bandwidth,
                Resource.LLC: llc,
                Resource.DISK_IO: disk_io,
                Resource.NETWORK: network,
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{r.value}={v:.3g}" for r, v in self.items())
        return f"ResourceVector({pairs})"


class ResourceLimits(ResourceVector):
    """Per-container resource limits (``RLT`` in the paper's notation)."""


class ResourceUsage(ResourceVector):
    """Instantaneous per-container resource usage (``RU`` in the paper)."""


def default_node_capacity() -> ResourceVector:
    """Capacity of one simulated server.

    Loosely modelled on the paper's testbed nodes (56-192 cores, hundreds of
    GB of RAM): 64 cores, 100 GB/s memory bandwidth, 32 MB LLC, 2000 MB/s
    disk bandwidth, 10 Gb/s network.
    """
    return ResourceVector.from_kwargs(
        cpu=64.0,
        memory_bandwidth=100.0,
        llc=32.0,
        disk_io=2000.0,
        network=10.0,
    )


def default_container_limits() -> ResourceLimits:
    """Default (over-provisioned) limits assigned to a fresh container.

    The paper notes limits are "predetermined before deployment (usually
    overprovisioned)" and later tightened by FIRM.
    """
    return ResourceLimits.from_kwargs(
        cpu=8.0,
        memory_bandwidth=20.0,
        llc=8.0,
        disk_io=400.0,
        network=2.0,
    )
