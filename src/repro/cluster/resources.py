"""Fine-grained resource model.

FIRM manages five resource types per microservice container (paper §3.4):
CPU time, memory bandwidth, last-level-cache (LLC) capacity, disk I/O
bandwidth, and network bandwidth.  This module defines the resource
enumeration and small vector types used everywhere else: node capacities,
container limits, instantaneous demand, and utilization.

The vector type is on the per-span hot path (demand, contention, and
utilization are recomputed for every dispatched span), so its accessors
and arithmetic avoid enum construction and per-element callables: since
:class:`Resource` is a ``str`` enum, members hash and compare equal to
their value strings and the backing dict can be indexed directly with
either form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class Resource(str, enum.Enum):
    """The five fine-grained resource types controlled by FIRM.

    Values double as the telemetry field names used by the tracing
    coordinator and the RL state vector.
    """

    CPU = "cpu"
    MEMORY_BANDWIDTH = "memory_bandwidth"
    LLC = "llc"
    DISK_IO = "disk_io"
    NETWORK = "network"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Canonical ordering of resources used for state/action vectors.
RESOURCE_TYPES: Tuple[Resource, ...] = (
    Resource.CPU,
    Resource.MEMORY_BANDWIDTH,
    Resource.LLC,
    Resource.DISK_IO,
    Resource.NETWORK,
)

#: Default units, for documentation and pretty-printing only.
RESOURCE_UNITS: Dict[Resource, str] = {
    Resource.CPU: "cores",
    Resource.MEMORY_BANDWIDTH: "GB/s",
    Resource.LLC: "MB",
    Resource.DISK_IO: "MB/s",
    Resource.NETWORK: "Gb/s",
}


@dataclass
class ResourceVector:
    """A per-resource-type quantity (capacity, demand, usage, or limit).

    The vector behaves like a small mapping from :class:`Resource` to float
    and supports element-wise arithmetic, which keeps contention and
    utilization computations readable.
    """

    values: Dict[Resource, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = self.values
        normalized: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            value = values.get(resource)
            normalized[resource] = float(value) if value is not None else 0.0
        self.values = normalized

    @classmethod
    def _from_normalized(cls, values: Dict[Resource, float]) -> "ResourceVector":
        """Wrap an already-normalized dict without re-validating it.

        Internal fast path for arithmetic results: ``values`` must hold one
        float for every member of :data:`RESOURCE_TYPES`.
        """
        vector = object.__new__(cls)
        vector.values = values
        return vector

    # ------------------------------------------------------------ accessors
    def __getitem__(self, resource: Resource) -> float:
        # Resource is a str enum, so the dict accepts the member or its
        # string value directly; no enum construction on the hot path.
        return self.values[resource]

    def __setitem__(self, resource: Resource, value: float) -> None:
        self.values[Resource(resource)] = float(value)

    def get(self, resource: Resource, default: float = 0.0) -> float:
        return self.values.get(resource, default)

    def __iter__(self) -> Iterator[Resource]:
        return iter(RESOURCE_TYPES)

    def items(self) -> Iterable[Tuple[Resource, float]]:
        values = self.values
        return ((resource, values[resource]) for resource in RESOURCE_TYPES)

    def as_dict(self) -> Dict[str, float]:
        """Plain-string-keyed dictionary (for reports and JSON)."""
        values = self.values
        return {resource.value: values[resource] for resource in RESOURCE_TYPES}

    def copy(self) -> "ResourceVector":
        return ResourceVector._from_normalized(dict(self.values))

    # ----------------------------------------------------------- arithmetic
    def _rhs_values(self, other: "ResourceVector | Mapping | float") -> Dict[Resource, float]:
        """Normalize the right-hand side of an arithmetic op to a dict."""
        if isinstance(other, ResourceVector):
            return other.values
        if isinstance(other, (int, float)):
            rhs = float(other)
            return {resource: rhs for resource in RESOURCE_TYPES}
        return {
            resource: float(other.get(resource, 0.0)) for resource in RESOURCE_TYPES
        }

    def __add__(self, other) -> "ResourceVector":
        values = self.values
        rhs = self._rhs_values(other)
        return ResourceVector._from_normalized(
            {resource: values[resource] + rhs[resource] for resource in RESOURCE_TYPES}
        )

    def __sub__(self, other) -> "ResourceVector":
        values = self.values
        rhs = self._rhs_values(other)
        return ResourceVector._from_normalized(
            {resource: values[resource] - rhs[resource] for resource in RESOURCE_TYPES}
        )

    def __mul__(self, other) -> "ResourceVector":
        values = self.values
        if isinstance(other, (int, float)):
            scale = float(other)
            return ResourceVector._from_normalized(
                {resource: values[resource] * scale for resource in RESOURCE_TYPES}
            )
        rhs = self._rhs_values(other)
        return ResourceVector._from_normalized(
            {resource: values[resource] * rhs[resource] for resource in RESOURCE_TYPES}
        )

    def clamp_nonnegative(self) -> "ResourceVector":
        """Return a copy with all negative entries replaced by zero."""
        return ResourceVector._from_normalized(
            {resource: max(0.0, value) for resource, value in self.values.items()}
        )

    def ratio(self, denominator: "ResourceVector") -> "ResourceVector":
        """Element-wise ratio; a zero denominator maps to a ratio of zero."""
        values = self.values
        denominator_values = denominator.values
        result: Dict[Resource, float] = {}
        for resource in RESOURCE_TYPES:
            denom = denominator_values[resource]
            result[resource] = values[resource] / denom if denom > 0 else 0.0
        return ResourceVector._from_normalized(result)

    def total(self) -> float:
        """Sum across all resource types (used for coarse comparisons)."""
        values = self.values
        return float(sum(values[resource] for resource in RESOURCE_TYPES))

    def dominates(self, other: "ResourceVector") -> bool:
        """True if every component is >= the corresponding component of ``other``."""
        values = self.values
        other_values = other.values
        return all(values[r] >= other_values[r] for r in RESOURCE_TYPES)

    @classmethod
    def uniform(cls, value: float) -> "ResourceVector":
        """Vector with the same ``value`` for every resource type."""
        value = float(value)
        return cls._from_normalized({resource: value for resource in RESOURCE_TYPES})

    @classmethod
    def from_kwargs(
        cls,
        cpu: float = 0.0,
        memory_bandwidth: float = 0.0,
        llc: float = 0.0,
        disk_io: float = 0.0,
        network: float = 0.0,
    ) -> "ResourceVector":
        """Construct from keyword arguments, one per resource type."""
        return cls._from_normalized(
            {
                Resource.CPU: float(cpu),
                Resource.MEMORY_BANDWIDTH: float(memory_bandwidth),
                Resource.LLC: float(llc),
                Resource.DISK_IO: float(disk_io),
                Resource.NETWORK: float(network),
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{r.value}={v:.3g}" for r, v in self.items())
        return f"ResourceVector({pairs})"


class ResourceLimits(ResourceVector):
    """Per-container resource limits (``RLT`` in the paper's notation)."""


class ResourceUsage(ResourceVector):
    """Instantaneous per-container resource usage (``RU`` in the paper)."""


def default_node_capacity() -> ResourceVector:
    """Capacity of one simulated server.

    Loosely modelled on the paper's testbed nodes (56-192 cores, hundreds of
    GB of RAM): 64 cores, 100 GB/s memory bandwidth, 32 MB LLC, 2000 MB/s
    disk bandwidth, 10 Gb/s network.
    """
    return ResourceVector.from_kwargs(
        cpu=64.0,
        memory_bandwidth=100.0,
        llc=32.0,
        disk_io=2000.0,
        network=10.0,
    )


def default_container_limits() -> ResourceLimits:
    """Default (over-provisioned) limits assigned to a fresh container.

    The paper notes limits are "predetermined before deployment (usually
    overprovisioned)" and later tightened by FIRM.
    """
    return ResourceLimits.from_kwargs(
        cpu=8.0,
        memory_bandwidth=20.0,
        llc=8.0,
        disk_io=400.0,
        network=2.0,
    )
