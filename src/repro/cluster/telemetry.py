"""Telemetry collection (the cAdvisor / Prometheus / perf substitute).

Table 2 of the paper lists the telemetry signals FIRM collects per
container: CPU usage, memory usage, filesystem read/write, network
transmit/receive, and perf-counter-derived LLC / DRAM access metrics.  The
:class:`TelemetryCollector` samples the simulated cluster on a fixed period
and keeps a bounded history per container, which the tracing coordinator
exposes to the Extractor and the RL agent.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.cluster.resources import RESOURCE_TYPES, ResourceUsage, ResourceVector
from repro.sim.engine import SimulationEngine


@dataclass(slots=True)
class TelemetrySample:
    """One per-container telemetry observation.

    Samples are allocated once per container per sampling period for the
    whole run, so the dataclass is slotted to keep them small and cheap.

    Attributes
    ----------
    time:
        Simulation time of the sample (seconds).
    container_id:
        Container the sample describes.
    service_name:
        Microservice the container belongs to.
    usage:
        Absolute per-resource usage.
    utilization:
        Usage divided by the container's limits (``RU/RLT``).
    limits:
        The container's limits at sample time.
    node:
        Hosting node name.
    queue_length:
        Instance queue length at sample time.
    in_flight:
        Queued + in-service spans at sample time — the load signal the
        routing layer balances on, sampled per replica so routing
        experiments can audit how evenly a policy spread the work.
    tenant:
        Tenant owning the sampled container (None when untenanted), so
        per-tenant extractors can filter a shared telemetry stream.
    """

    time: float
    container_id: str
    service_name: str
    usage: ResourceVector
    utilization: ResourceVector
    limits: ResourceVector
    node: Optional[str] = None
    queue_length: int = 0
    in_flight: int = 0
    tenant: Optional[str] = None

    def as_row(self) -> Dict[str, float]:
        """Flatten to a plain dict (telemetry export format)."""
        row: Dict[str, float] = {
            "time": self.time,
            "queue_length": float(self.queue_length),
            "in_flight": float(self.in_flight),
        }
        for resource in RESOURCE_TYPES:
            row[f"usage_{resource.value}"] = self.usage[resource]
            row[f"utilization_{resource.value}"] = self.utilization[resource]
            row[f"limit_{resource.value}"] = self.limits[resource]
        return row


class TelemetryCollector:
    """Periodically samples every container in a cluster.

    Parameters
    ----------
    cluster:
        The cluster to observe.
    engine:
        Simulation engine used to schedule the sampling loop.
    period_s:
        Sampling period in seconds (default 1 s, matching the paper's
        near-real-time telemetry granularity).
    history:
        Number of samples retained per container.
    """

    def __init__(
        self,
        cluster: "Cluster",  # noqa: F821 - forward reference
        engine: SimulationEngine,
        period_s: float = 1.0,
        history: int = 600,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.period_s = float(period_s)
        self.history = int(history)
        self._samples: Dict[str, Deque[TelemetrySample]] = defaultdict(
            lambda: deque(maxlen=self.history)
        )
        self._running = False

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Begin periodic sampling."""
        if self._running:
            return
        self._running = True
        self.engine.schedule_recurring(
            self.period_s, lambda eng: self.sample_all(), name="telemetry-sample"
        )

    # --------------------------------------------------------------- sampling
    def sample_all(self) -> List[TelemetrySample]:
        """Take one sample of every container; also returns the batch."""
        batch: List[TelemetrySample] = []
        for container in self.cluster.all_containers():
            sample = self.sample_container(container)
            batch.append(sample)
        return batch

    def sample_container(self, container) -> TelemetrySample:
        """Sample a single container and append to its history.

        The capped demand is computed once and shared between the usage
        and utilization fields (they are derived from the same instant),
        halving the per-sample resource-model work.
        """
        instance = container.instance
        demand, utilization = container.demand_and_utilization()
        sample = TelemetrySample(
            time=self.engine.now,
            container_id=container.id,
            service_name=container.service_name,
            usage=ResourceUsage._from_normalized(dict(demand)),
            utilization=ResourceVector._from_normalized(utilization),
            limits=container.limits.copy(),
            node=container.node.name if container.node is not None else None,
            queue_length=instance.queue_length if instance is not None else 0,
            in_flight=instance.in_flight if instance is not None else 0,
            tenant=container.tenant,
        )
        self._samples[container.id].append(sample)
        return sample

    # ---------------------------------------------------------------- queries
    def latest(self, container_id: str) -> Optional[TelemetrySample]:
        """Most recent sample for a container (None if never sampled)."""
        samples = self._samples.get(container_id)
        if not samples:
            return None
        return samples[-1]

    def window(self, container_id: str, duration_s: float) -> List[TelemetrySample]:
        """Samples for ``container_id`` within the last ``duration_s`` seconds."""
        samples = self._samples.get(container_id, deque())
        cutoff = self.engine.now - duration_s
        return [sample for sample in samples if sample.time >= cutoff]

    def service_utilization(self, service_name: str) -> ResourceVector:
        """Mean utilization across the latest samples of a service's containers."""
        latest = [
            samples[-1]
            for samples in self._samples.values()
            if samples and samples[-1].service_name == service_name
        ]
        if not latest:
            return ResourceVector()
        total = ResourceVector()
        for sample in latest:
            total = total + sample.utilization
        return total * (1.0 / len(latest))

    def container_ids(self) -> List[str]:
        """All container ids with at least one sample."""
        return sorted(self._samples)
