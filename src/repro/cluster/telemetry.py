"""Telemetry collection (the cAdvisor / Prometheus / perf substitute).

Table 2 of the paper lists the telemetry signals FIRM collects per
container: CPU usage, memory usage, filesystem read/write, network
transmit/receive, and perf-counter-derived LLC / DRAM access metrics.  The
:class:`TelemetryCollector` samples the simulated cluster on a fixed period,
which the tracing coordinator exposes to the Extractor and the RL agent.

The collector runs in one of two modes:

* ``"raw"`` — the historical pipeline: a bounded deque of slotted
  :class:`TelemetrySample` objects per container (O(history × containers)
  memory), with windowed queries answered by scanning the deques.
* ``"sketch"`` — constant-memory: one fleet-wide set of ring-buffer numpy
  aggregates (per-bucket count / sum / max of usage and utilization for
  every container at once, updated vectorized once per sampling tick) plus
  a per-container P² CPU-utilization quantile estimator, with only a short
  raw tail retained for ``latest()``-style point queries.  Windowed
  queries fold the ring buckets — window edges are bucket-aligned, so they
  over-include by up to one sampling period (the documented sketch
  accuracy tradeoff).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.cluster.resources import RESOURCE_TYPES, ResourceUsage, ResourceVector
from repro.sim.engine import SimulationEngine
from repro.telemetry.p2 import P2Quantile

#: Raw samples kept per container in sketch mode (point queries only).
SKETCH_RAW_TAIL = 8

#: Ring buckets in sketch mode; at the default 1 s period this spans 96 s,
#: comfortably covering FIRM's 60 s reclaim window.
SKETCH_BUCKETS = 96


@dataclass(slots=True)
class TelemetrySample:
    """One per-container telemetry observation.

    Samples are allocated once per container per sampling period for the
    whole run, so the dataclass is slotted to keep them small and cheap.

    Attributes
    ----------
    time:
        Simulation time of the sample (seconds).
    container_id:
        Container the sample describes.
    service_name:
        Microservice the container belongs to.
    usage:
        Absolute per-resource usage.
    utilization:
        Usage divided by the container's limits (``RU/RLT``).
    limits:
        The container's limits at sample time.
    node:
        Hosting node name.
    queue_length:
        Instance queue length at sample time.
    in_flight:
        Queued + in-service spans at sample time — the load signal the
        routing layer balances on, sampled per replica so routing
        experiments can audit how evenly a policy spread the work.
    tenant:
        Tenant owning the sampled container (None when untenanted), so
        per-tenant extractors can filter a shared telemetry stream.
    """

    time: float
    container_id: str
    service_name: str
    usage: ResourceVector
    utilization: ResourceVector
    limits: ResourceVector
    node: Optional[str] = None
    queue_length: int = 0
    in_flight: int = 0
    tenant: Optional[str] = None

    def as_row(self) -> Dict[str, float]:
        """Flatten to a plain dict (telemetry export format)."""
        row: Dict[str, float] = {
            "time": self.time,
            "queue_length": float(self.queue_length),
            "in_flight": float(self.in_flight),
        }
        for resource in RESOURCE_TYPES:
            row[f"usage_{resource.value}"] = self.usage[resource]
            row[f"utilization_{resource.value}"] = self.utilization[resource]
            row[f"limit_{resource.value}"] = self.limits[resource]
        return row


class TelemetryCollector:
    """Periodically samples every container in a cluster.

    Parameters
    ----------
    cluster:
        The cluster to observe.
    engine:
        Simulation engine used to schedule the sampling loop.
    period_s:
        Sampling period in seconds (default 1 s, matching the paper's
        near-real-time telemetry granularity).
    history:
        Number of samples retained per container (raw mode; sketch mode
        caps the raw tail at :data:`SKETCH_RAW_TAIL`).
    mode:
        ``"raw"`` (full per-sample history, the historical behaviour) or
        ``"sketch"`` (constant-memory ring aggregates).  Defaults to raw
        so direct construction keeps its historical semantics; the
        experiment harness selects the mode from the scenario spec.
    """

    def __init__(
        self,
        cluster: "Cluster",  # noqa: F821 - forward reference
        engine: SimulationEngine,
        period_s: float = 1.0,
        history: int = 600,
        mode: str = "raw",
    ) -> None:
        if mode not in ("raw", "sketch"):
            raise ValueError(f"unknown telemetry mode: {mode!r}")
        self.cluster = cluster
        self.engine = engine
        self.period_s = float(period_s)
        self.mode = mode
        self.history = int(history) if mode == "raw" else min(int(history), SKETCH_RAW_TAIL)
        self._samples: Dict[str, Deque[TelemetrySample]] = defaultdict(
            lambda: deque(maxlen=self.history)
        )
        #: Latest sample per container, grouped by service, in first-sample
        #: order — so ``service_utilization`` no longer scans every
        #: container's deque yet folds the same samples in the same order.
        self._latest_by_service: Dict[str, Dict[str, TelemetrySample]] = defaultdict(dict)
        self._running = False
        if mode == "sketch":
            self._bucket_s = self.period_s
            self._buckets = SKETCH_BUCKETS
            n_resources = len(RESOURCE_TYPES)
            self._cols: Dict[str, int] = {}
            self._bucket_ids = np.full(self._buckets, -1, dtype=np.int64)
            self._counts = np.zeros((self._buckets, 0), dtype=np.int32)
            self._usage_sum = np.zeros((self._buckets, 0, n_resources), dtype=np.float32)
            self._usage_max = np.zeros_like(self._usage_sum)
            self._util_sum = np.zeros_like(self._usage_sum)
            self._util_max = np.zeros_like(self._usage_sum)
            self._cpu_p99: Dict[str, P2Quantile] = {}

    # ----------------------------------------------------------------- start
    def start(self) -> None:
        """Begin periodic sampling."""
        if self._running:
            return
        self._running = True
        self.engine.schedule_recurring(
            self.period_s, lambda eng: self.sample_all(), name="telemetry-sample"
        )

    # --------------------------------------------------------------- sampling
    def sample_all(self) -> List[TelemetrySample]:
        """Take one sample of every container; also returns the batch.

        In sketch mode the whole batch lands in the ring aggregates as a
        single vectorized update (one fancy-indexed add/max per array per
        tick for the entire fleet).
        """
        batch: List[TelemetrySample] = [
            self._sample_one(container) for container in self.cluster.all_containers()
        ]
        if self.mode == "sketch" and batch:
            self._sketch_update(batch)
        return batch

    def sample_container(self, container) -> TelemetrySample:
        """Sample a single container and append to its history."""
        sample = self._sample_one(container)
        if self.mode == "sketch":
            self._sketch_update([sample])
        return sample

    def _sample_one(self, container) -> TelemetrySample:
        """Observe one container and append to its raw history.

        The capped demand is computed once and shared between the usage
        and utilization fields (they are derived from the same instant),
        halving the per-sample resource-model work.
        """
        instance = container.instance
        demand, utilization = container.demand_and_utilization()
        sample = TelemetrySample(
            time=self.engine.now,
            container_id=container.id,
            service_name=container.service_name,
            usage=ResourceUsage._from_normalized(dict(demand)),
            utilization=ResourceVector._from_normalized(utilization),
            limits=container.limits.copy(),
            node=container.node.name if container.node is not None else None,
            queue_length=instance.queue_length if instance is not None else 0,
            in_flight=instance.in_flight if instance is not None else 0,
            tenant=container.tenant,
        )
        self._samples[container.id].append(sample)
        self._latest_by_service[sample.service_name][container.id] = sample
        return sample

    # ------------------------------------------------------- sketch plumbing
    def _column(self, container_id: str) -> int:
        """Column index for a container, growing the arrays on first sight."""
        col = self._cols.get(container_id)
        if col is not None:
            return col
        col = len(self._cols)
        capacity = self._counts.shape[1]
        if col >= capacity:
            new_capacity = max(8, capacity * 2)
            grow = new_capacity - capacity
            self._counts = np.pad(self._counts, ((0, 0), (0, grow)))
            self._usage_sum = np.pad(self._usage_sum, ((0, 0), (0, grow), (0, 0)))
            self._usage_max = np.pad(self._usage_max, ((0, 0), (0, grow), (0, 0)))
            self._util_sum = np.pad(self._util_sum, ((0, 0), (0, grow), (0, 0)))
            self._util_max = np.pad(self._util_max, ((0, 0), (0, grow), (0, 0)))
        self._cols[container_id] = col
        return col

    def _sketch_update(self, batch: List[TelemetrySample]) -> None:
        """Fold one same-instant batch of samples into the ring aggregates."""
        bucket = int(batch[0].time // self._bucket_s)
        slot = bucket % self._buckets
        if self._bucket_ids[slot] != bucket:
            self._bucket_ids[slot] = bucket
            self._counts[slot, :] = 0
            self._usage_sum[slot] = 0.0
            self._usage_max[slot] = 0.0
            self._util_sum[slot] = 0.0
            self._util_max[slot] = 0.0
        n = len(batch)
        cols = np.empty(n, dtype=np.intp)
        usage_rows = np.empty((n, len(RESOURCE_TYPES)), dtype=np.float32)
        util_rows = np.empty_like(usage_rows)
        p2s = self._cpu_p99
        for i, sample in enumerate(batch):
            cols[i] = self._column(sample.container_id)
            # Normalized vectors hold every resource in canonical order.
            usage_rows[i] = list(sample.usage.values.values())
            util_rows[i] = list(sample.utilization.values.values())
            estimator = p2s.get(sample.container_id)
            if estimator is None:
                estimator = p2s[sample.container_id] = P2Quantile(0.99)
            estimator.add(float(util_rows[i, 0]))
        # One container appears at most once per batch, so the fancy-indexed
        # assignment below never aliases.
        self._counts[slot, cols] += 1
        self._usage_sum[slot, cols] += usage_rows
        self._usage_max[slot, cols] = np.maximum(self._usage_max[slot, cols], usage_rows)
        self._util_sum[slot, cols] += util_rows
        self._util_max[slot, cols] = np.maximum(self._util_max[slot, cols], util_rows)

    def _window_slots(self, duration_s: float) -> List[int]:
        """Live ring slots for buckets overlapping the trailing window."""
        now = self.engine.now
        end = int(now // self._bucket_s)
        start = max(int((now - duration_s) // self._bucket_s), end - self._buckets + 1)
        slots: List[int] = []
        ids = self._bucket_ids
        for bucket in range(start, end + 1):
            slot = bucket % self._buckets
            if ids[slot] == bucket:
                slots.append(slot)
        return slots

    # ---------------------------------------------------------------- queries
    def latest(self, container_id: str) -> Optional[TelemetrySample]:
        """Most recent sample for a container (None if never sampled)."""
        samples = self._samples.get(container_id)
        if not samples:
            return None
        return samples[-1]

    def window(self, container_id: str, duration_s: float) -> List[TelemetrySample]:
        """Retained samples for ``container_id`` in the last ``duration_s`` seconds.

        Walks the history backwards and stops at the cutoff instead of
        scanning the whole deque — samples are appended in time order, so
        the result is identical to the historical full scan.  In sketch
        mode only the short raw tail is retained; windowed aggregates come
        from :meth:`windowed_peak_usage` and friends.
        """
        samples = self._samples.get(container_id)
        if not samples:
            return []
        cutoff = self.engine.now - duration_s
        recent: List[TelemetrySample] = []
        for sample in reversed(samples):
            if sample.time < cutoff:
                break
            recent.append(sample)
        recent.reverse()
        return recent

    def windowed_peak_usage(
        self, container_id: str, duration_s: float, min_samples: int
    ) -> Optional[ResourceVector]:
        """Peak per-resource usage over the trailing window.

        Returns ``None`` when fewer than ``min_samples`` observations fall
        inside the window.  The raw path folds the retained samples exactly
        as FIRM's reclaim scan always has; the sketch path folds the
        per-bucket maxima (bucket-aligned window edges).
        """
        if self.mode == "sketch":
            col = self._cols.get(container_id)
            if col is None:
                return None
            slots = self._window_slots(duration_s)
            if not slots:
                return None
            if int(self._counts[slots, col].sum()) < min_samples:
                return None
            peak = self._usage_max[slots, col, :].max(axis=0)
            return ResourceVector(
                {resource: float(peak[i]) for i, resource in enumerate(RESOURCE_TYPES)}
            )
        samples = self.window(container_id, duration_s)
        if len(samples) < min_samples:
            return None
        peak = {resource: 0.0 for resource in RESOURCE_TYPES}
        for sample in samples:
            for resource in RESOURCE_TYPES:
                peak[resource] = max(peak[resource], sample.usage[resource])
        return ResourceVector(peak)

    def cpu_utilization_p99(self, container_id: str) -> float:
        """Run-long streaming p99 of a container's CPU utilization.

        Served by the per-container P² estimator in sketch mode; in raw
        mode it is computed from the retained history on demand.
        """
        if self.mode == "sketch":
            estimator = self._cpu_p99.get(container_id)
            return estimator.value() if estimator is not None else 0.0
        samples = self._samples.get(container_id)
        if not samples:
            return 0.0
        cpu = RESOURCE_TYPES[0]
        values = [sample.utilization[cpu] for sample in samples]
        return float(np.percentile(values, 99.0))

    def service_utilization(self, service_name: str) -> ResourceVector:
        """Mean utilization across the latest samples of a service's containers.

        Reads the per-service latest-sample index instead of scanning every
        container's history; the index preserves first-sample order, so the
        float summation order (and hence the result) matches the historical
        full scan bit for bit.
        """
        latest = self._latest_by_service.get(service_name)
        if not latest:
            return ResourceVector()
        total = ResourceVector()
        for sample in latest.values():
            total = total + sample.utilization
        return total * (1.0 / len(latest))

    def container_ids(self) -> List[str]:
        """All container ids with at least one sample."""
        return sorted(self._samples)

    # ---------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Retained telemetry footprint (samples, indexes, and sketches)."""
        from repro.telemetry.memory import deep_sizeof

        roots: List[object] = [self._samples, self._latest_by_service]
        if self.mode == "sketch":
            roots.extend(
                (
                    self._cols,
                    self._bucket_ids,
                    self._counts,
                    self._usage_sum,
                    self._usage_max,
                    self._util_sum,
                    self._util_max,
                    self._cpu_p99,
                )
            )
        return deep_sizeof(tuple(roots))
