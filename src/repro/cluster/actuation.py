"""Actuation latency model for resource-management operations.

Table 6 of the paper reports the mean and standard deviation of the time
taken to (a) re-partition each resource type (scale up/down) and (b) start
a container (warm vs. cold).  These latencies lower-bound how fast any
mitigation can take effect, so the simulator charges them before an action
becomes visible to the instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.resources import Resource
from repro.sim.rng import SeededRNG


@dataclass(frozen=True)
class OperationLatency:
    """Mean and standard deviation (milliseconds) of one actuation operation."""

    mean_ms: float
    std_ms: float


#: Table 6 of the paper: latency of resource-management operations.
ACTUATION_LATENCY: Dict[str, OperationLatency] = {
    "partition_cpu": OperationLatency(mean_ms=2.1, std_ms=0.3),
    "partition_memory_bandwidth": OperationLatency(mean_ms=42.4, std_ms=11.0),
    "partition_llc": OperationLatency(mean_ms=39.8, std_ms=9.2),
    "partition_disk_io": OperationLatency(mean_ms=2.3, std_ms=0.4),
    "partition_network": OperationLatency(mean_ms=12.3, std_ms=1.1),
    "container_start_warm": OperationLatency(mean_ms=45.7, std_ms=6.9),
    "container_start_cold": OperationLatency(mean_ms=2050.8, std_ms=291.4),
}

#: Mapping from resource type to the partition-operation key above.
PARTITION_OPERATION = {
    Resource.CPU: "partition_cpu",
    Resource.MEMORY_BANDWIDTH: "partition_memory_bandwidth",
    Resource.LLC: "partition_llc",
    Resource.DISK_IO: "partition_disk_io",
    Resource.NETWORK: "partition_network",
}


class ActuationModel:
    """Samples actuation latencies for deployment-module operations."""

    def __init__(self, rng: SeededRNG) -> None:
        self._rng = rng

    def sample_ms(self, operation: str) -> float:
        """Sample the latency (ms) of one named operation.

        Samples are drawn from a normal distribution truncated at 10% of the
        mean so that an unlucky draw never becomes negative or absurdly
        small.
        """
        if operation not in ACTUATION_LATENCY:
            raise KeyError(f"unknown actuation operation {operation!r}")
        spec = ACTUATION_LATENCY[operation]
        stream = self._rng.stream(f"actuation:{operation}")
        sample = float(stream.normal(spec.mean_ms, spec.std_ms))
        return max(0.1 * spec.mean_ms, sample)

    def partition_latency_ms(self, resource: Resource) -> float:
        """Latency of re-partitioning one resource type."""
        return self.sample_ms(PARTITION_OPERATION[Resource(resource)])

    def container_start_latency_ms(self, warm: bool = True) -> float:
        """Latency of starting a container (warm image cache vs. cold pull)."""
        operation = "container_start_warm" if warm else "container_start_cold"
        return self.sample_ms(operation)
