"""Physical node model.

A node has a fixed capacity for each fine-grained resource type, hosts a set
of containers, and tracks external pressure injected by the performance
anomaly injector (e.g. a memory-bandwidth stressor consuming part of the
node's bandwidth).  Contention is computed at node scope: when the sum of
container demand plus injected pressure exceeds capacity for a resource,
every container on the node experiences a slowdown proportional to the
oversubscription of the resources it actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.resources import (
    RESOURCE_TYPES,
    Resource,
    ResourceVector,
    default_node_capacity,
)


@dataclass
class NodeSpec:
    """Static description of a node's hardware.

    Attributes
    ----------
    name:
        Unique node name (e.g. ``"node-3"``).
    capacity:
        Per-resource capacity.
    architecture:
        ISA label; the paper's cluster mixes ``x86`` (Intel Xeon) and
        ``ppc64`` (IBM Power) nodes and Fig. 9(b) compares localization
        accuracy across the two.
    """

    name: str
    capacity: ResourceVector = field(default_factory=default_node_capacity)
    architecture: str = "x86"


class Node:
    """A simulated server hosting containers and absorbing anomaly pressure."""

    def __init__(self, spec: NodeSpec) -> None:
        self.spec = spec
        self.containers: List["Container"] = []  # noqa: F821 - forward ref
        # External pressure from the anomaly injector, as an absolute amount
        # of each resource consumed by the interfering workload.
        self._injected_pressure = ResourceVector()
        # Demand exerted on this node by containers simulated in *other*
        # shards (exchanged at window barriers).  The flag keeps the
        # unsharded hot path free of any extra arithmetic.
        self._remote_pressure = ResourceVector()
        self._has_remote_pressure = False

    # ------------------------------------------------------------ properties
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def capacity(self) -> ResourceVector:
        return self.spec.capacity

    @property
    def architecture(self) -> str:
        return self.spec.architecture

    # ------------------------------------------------------------ containers
    def add_container(self, container: "Container") -> None:  # noqa: F821
        """Place a container on this node."""
        if container in self.containers:
            return
        self.containers.append(container)
        container.node = self

    def remove_container(self, container: "Container") -> None:  # noqa: F821
        """Evict a container from this node."""
        if container in self.containers:
            self.containers.remove(container)
            container.node = None

    def allocated_limits(self) -> ResourceVector:
        """Sum of resource limits across all hosted containers."""
        total = ResourceVector()
        for container in self.containers:
            total = total + container.limits
        return total

    def can_fit(self, limits: ResourceVector) -> bool:
        """Whether a container with ``limits`` fits without oversubscribing limits.

        Note this checks the *limit* (reservation) headroom; actual usage may
        still contend because limits are routinely overprovisioned.
        """
        return self.capacity.dominates(self.allocated_limits() + limits)

    # --------------------------------------------------------------- pressure
    def inject_pressure(self, pressure: ResourceVector) -> None:
        """Add anomaly-injected resource pressure (absolute units)."""
        self._injected_pressure = (self._injected_pressure + pressure).clamp_nonnegative()

    def remove_pressure(self, pressure: ResourceVector) -> None:
        """Remove previously injected pressure."""
        self._injected_pressure = (self._injected_pressure - pressure).clamp_nonnegative()

    def clear_pressure(self) -> None:
        """Drop all injected pressure (end of an anomaly campaign)."""
        self._injected_pressure = ResourceVector()

    @property
    def injected_pressure(self) -> ResourceVector:
        return self._injected_pressure.copy()

    def set_remote_pressure(self, pressure: Optional[ResourceVector]) -> None:
        """Replace the cross-shard demand this node absorbs.

        The sharded engine calls this at every window barrier with the
        summed demand of the same-named node in every other shard; None
        (or an all-zero vector) detaches the remote term entirely.
        """
        if pressure is None:
            self._remote_pressure = ResourceVector()
            self._has_remote_pressure = False
            return
        self._remote_pressure = pressure
        self._has_remote_pressure = any(
            value != 0.0 for value in pressure.values.values()
        )

    @property
    def remote_pressure(self) -> ResourceVector:
        return self._remote_pressure.copy()

    # ------------------------------------------------------------- contention
    def demand(self) -> ResourceVector:
        """Aggregate instantaneous resource demand of hosted containers."""
        total: Dict[Resource, float] = {r: 0.0 for r in RESOURCE_TYPES}
        for container in self.containers:
            demand_values = container._capped_demand_values()
            for resource in RESOURCE_TYPES:
                total[resource] = total[resource] + demand_values[resource]
        return ResourceVector._from_normalized(total)

    #: Utilization is clipped below full saturation so the queueing-delay
    #: curve stays finite even when demand nominally exceeds capacity.
    MAX_UTILIZATION = 0.97

    @staticmethod
    def _queueing_factor(rho: float) -> float:
        """Queueing-delay-like slowdown: ``1 + rho^2 / (1 - rho)``.

        Negligible at low utilization, an order of magnitude near
        saturation — which is how memory-bandwidth or LLC interference
        turns into latency spikes without any change in CPU utilization
        (the paper's Fig. 1 motivation).
        """
        rho = min(max(rho, 0.0), Node.MAX_UTILIZATION)
        return 1.0 + (rho * rho) / (1.0 - rho)

    def enforced_reservation(self, resource: Resource) -> float:
        """Total capacity reserved by containers with enforced partitions."""
        return sum(
            container.limits[resource]
            for container in self.containers
            if container.partition_enforced
        )

    def _dilution_scale(self, resource: Resource) -> float:
        """Scale applied to guarantees when reservations oversubscribe capacity.

        Hardware partitioning (CAT ways, MBA steps) cannot hand out more
        than physically exists; when the sum of enforced limits exceeds
        capacity every guarantee is diluted proportionally.
        """
        reservation = self.enforced_reservation(resource)
        capacity = self.capacity[resource]
        if reservation <= capacity or reservation <= 0:
            return 1.0
        return capacity / reservation

    def best_effort_pool(self, resource: Resource) -> float:
        """Capacity left for unpartitioned containers and injected pressure.

        Partitioning mechanisms (CAT, MBA, CFS shares, blkio, HTB) are
        work-conserving: a protected container's unused allocation remains
        available to best-effort consumers.  The pool therefore subtracts
        the enforced containers' *usage* (capped at their guarantee), not
        their nominal limits.
        """
        protected_usage = 0.0
        for container in self.containers:
            if not container.partition_enforced:
                continue
            guarantee = container.limits[resource] * self._dilution_scale(resource)
            protected_usage += min(container.current_demand()[resource], guarantee)
        reserved = min(protected_usage, self.capacity[resource])
        return max(self.capacity[resource] - reserved, 0.05 * self.capacity[resource])

    def contention_factors(self, container: Optional["Container"] = None) -> Dict[Resource, float]:  # noqa: F821
        """Per-resource contention slowdown factors.

        Without a container argument, returns the best-effort pool's
        factors (what an unpartitioned container experiences): the pool's
        utilization includes every unpartitioned container's demand plus
        the anomaly-injected pressure.

        With a container argument, partition enforcement is honoured:

        * a container whose limits have been explicitly partitioned
          (``partition_enforced``) is isolated from the pool — its slowdown
          depends only on its own demand versus its (possibly diluted)
          guarantee, which is exactly what Intel CAT/MBA, cgroups CFS
          quota, blkio, and tc/HTB provide;
        * an unpartitioned container competes in the best-effort pool.

        This runs once per dispatched span, so the pool demand is
        accumulated on plain dicts (one pass over the hosted containers)
        and the best-effort pool collapses to raw capacity when no
        container on the node has an enforced partition.
        """
        factors: Dict[Resource, float] = {}
        protected = container is not None and container.partition_enforced
        capacity_values = self.capacity.values
        queueing_factor = self._queueing_factor
        has_enforced = False
        for hosted in self.containers:
            if hosted.partition_enforced:
                has_enforced = True
                break

        if protected:
            demand_values = container._capped_demand_values()
            limit_values = container.limits.values
            for resource in RESOURCE_TYPES:
                capacity = capacity_values[resource]
                if capacity <= 0:
                    factors[resource] = 1.0
                    continue
                guarantee = limit_values[resource] * self._dilution_scale(resource)
                if guarantee <= 0:
                    factors[resource] = queueing_factor(self.MAX_UTILIZATION)
                    continue
                factors[resource] = queueing_factor(demand_values[resource] / guarantee)
            return factors

        pool_demand: Dict[Resource, float] = {r: 0.0 for r in RESOURCE_TYPES}
        for hosted in self.containers:
            if not hosted.partition_enforced:
                hosted_demand = hosted._capped_demand_values()
                for resource in RESOURCE_TYPES:
                    pool_demand[resource] = (
                        pool_demand[resource] + hosted_demand[resource]
                    )
        pressure_values = self._injected_pressure.values
        for resource in RESOURCE_TYPES:
            pool_demand[resource] = pool_demand[resource] + pressure_values[resource]
        if self._has_remote_pressure:
            remote_values = self._remote_pressure.values
            for resource in RESOURCE_TYPES:
                pool_demand[resource] = pool_demand[resource] + remote_values[resource]

        for resource in RESOURCE_TYPES:
            capacity = capacity_values[resource]
            if capacity <= 0:
                factors[resource] = 1.0
                continue
            # With no enforced partitions anywhere on the node, the
            # best-effort pool is the full capacity (reserved usage is 0).
            pool = self.best_effort_pool(resource) if has_enforced else capacity
            factors[resource] = queueing_factor(pool_demand[resource] / pool)
        return factors

    def utilization(self) -> ResourceVector:
        """Node-level utilization (demand + pressure, clipped to capacity)."""
        totals = self.demand() + self._injected_pressure
        if self._has_remote_pressure:
            totals = totals + self._remote_pressure
        result = {}
        for resource in RESOURCE_TYPES:
            capacity = self.capacity[resource]
            used = min(totals[resource], capacity) if capacity > 0 else 0.0
            result[resource] = used / capacity if capacity > 0 else 0.0
        return ResourceVector(result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Node(name={self.name!r}, arch={self.architecture!r}, "
            f"containers={len(self.containers)})"
        )
