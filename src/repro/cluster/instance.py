"""Microservice instance: the request-serving unit.

Each instance is hosted by exactly one container and serves spans (units of
work belonging to a distributed request) through a bounded-concurrency
queue.  The effective span processing time combines:

* a base service time drawn from the service's profile,
* the container's throttle factor (demand above its own limits),
* the node's contention factor (anomaly pressure and noisy neighbours),
* queueing delay when more spans are in flight than the instance can
  process concurrently (concurrency is derived from the CPU quota).

This is the substrate equivalent of "a Docker container running one
DeathStarBench service": it converts resource starvation into latency,
which is exactly the signal FIRM detects, localizes, and mitigates.

``submit``/``_try_dispatch``/``_finish`` run once per span, making this the
hottest non-engine code in the simulator: the service-time stream and its
lognormal parameters are cached per instance, span bookkeeping objects are
slotted, and listener dispatch avoids per-span list copies.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.cluster.container import Container
from repro.cluster.resources import Resource, ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG

_span_work_ids = itertools.count()


@dataclass
class ServiceProfile:
    """Static performance profile of one microservice.

    Attributes
    ----------
    name:
        Microservice name (e.g. ``"composePost"``).
    base_service_time_ms:
        Mean uncontended span processing time in milliseconds.
    service_time_cv:
        Coefficient of variation of the lognormal service-time distribution.
    resource_weights:
        How sensitive the service is to each resource type (0..1); used to
        translate per-resource contention into slowdown.  For example a
        memcached-like service has high memory-bandwidth and LLC weights,
        while an nginx frontend is network- and CPU-weighted.
    demand_per_request:
        Resources consumed per in-flight request (absolute units matching
        node capacities).
    threads:
        Worker threads the service creates per container.
    background:
        True for services invoked as background workflows (they do not
        return a value to the parent and are excluded from critical paths).
    """

    name: str
    base_service_time_ms: float = 5.0
    service_time_cv: float = 0.25
    resource_weights: Dict[Resource, float] = field(
        default_factory=lambda: {Resource.CPU: 1.0}
    )
    demand_per_request: ResourceVector = field(
        default_factory=lambda: ResourceVector.from_kwargs(cpu=0.5)
    )
    threads: int = 8
    background: bool = False

    def dominant_resource(self) -> Resource:
        """The resource the service is most sensitive to."""
        return max(self.resource_weights, key=lambda r: self.resource_weights[r])


@dataclass(slots=True)
class SpanWork:
    """One span's worth of work queued at an instance."""

    work_id: int
    request_id: str
    span_name: str
    enqueue_time: float
    base_time_ms: float
    on_complete: Callable[[float, float, float], None]
    start_time: Optional[float] = None


class MicroserviceInstance:
    """A single replica of a microservice, bound to one container.

    Parameters
    ----------
    profile:
        The service's static performance profile.
    container:
        Hosting container (provides limits, node placement, slowdown).
    engine:
        Shared simulation engine.
    rng:
        Seeded RNG family; service times draw from the substream
        ``"service:<name>:<replica>"``.
    replica_index:
        Replica ordinal within the service's replica set.
    """

    __slots__ = (
        "__weakref__",
        "profile",
        "container",
        "engine",
        "rng",
        "replica_index",
        "name",
        "_queue",
        "_in_service",
        "_completed_spans",
        "_dropped_spans",
        "_busy_time",
        "_last_busy_update",
        "recent_latencies_ms",
        "max_queue_length",
        "completion_listeners",
        "_service_cursor",
        "_lognormal_params",
        "_finish_event_name",
        "_demand_key",
        "_demand_dict",
    )

    def __init__(
        self,
        profile: ServiceProfile,
        container: Container,
        engine: SimulationEngine,
        rng: SeededRNG,
        replica_index: int = 0,
    ) -> None:
        self.profile = profile
        self.container = container
        self.engine = engine
        self.rng = rng
        self.replica_index = replica_index
        self.name = f"{profile.name}#{replica_index}"
        container.instance = self
        container.threads = profile.threads

        self._queue: Deque[SpanWork] = deque()
        self._in_service: Dict[int, SpanWork] = {}
        self._completed_spans = 0
        self._dropped_spans = 0
        self._busy_time = 0.0
        self._last_busy_update = engine.now
        #: Recent span latencies (ms), kept for telemetry / extractor features.
        self.recent_latencies_ms: List[float] = []
        #: Maximum queue length before requests are dropped (load shedding).
        self.max_queue_length = 512
        #: Observers invoked as ``listener(instance, latency_ms)`` after each
        #: span completes (state already updated, so ``in_flight`` reflects
        #: the post-completion load).  Routing policies use these to maintain
        #: idle queues (JIQ) and per-replica latency EWMAs.  Listeners must
        #: not mutate this list from inside a dispatch.
        self.completion_listeners: List[Callable[["MicroserviceInstance", float], None]] = []
        #: Buffered service-time cursor: block draws of standard normals,
        #: exponentiated with the current profile parameters per span.
        self._service_cursor = rng.cursor(f"service:{self.name}")
        #: Cached lognormal (mu, sigma) keyed by the profile parameters
        #: they were derived from, so profile edits still take effect.
        self._lognormal_params: Tuple[float, float, float, float] = (
            float("nan"),
            float("nan"),
            0.0,
            0.0,
        )
        self._finish_event_name = f"span-finish:{self.name}"
        # Raw-demand memo, shared key structure with the container's capped
        # demand memo (see Container._capped_demand_values).
        self._demand_key: Optional[Tuple[int, int, int]] = None
        self._demand_dict: Optional[Dict[Resource, float]] = None

    # --------------------------------------------------------------- metrics
    @property
    def completed_spans(self) -> int:
        return self._completed_spans

    @property
    def dropped_spans(self) -> int:
        return self._dropped_spans

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        return len(self._in_service) + len(self._queue)

    def concurrency(self) -> int:
        """Parallel spans the instance can process, from its CPU quota."""
        cpu = self.container.effective_cpu_limit()
        return max(1, int(cpu))

    def _demand_values(self) -> Dict[Resource, float]:
        """Raw per-resource demand as a memoized read-only dict.

        Demand is ``active x demand_per_request`` where ``active`` only
        moves when the queue/in-service population or the CPU quota
        (concurrency) changes, so the dict is memoized against
        (queue len, in-service len, limits version) — the same key the
        container's capped-demand memo uses.
        """
        key = (len(self._queue), len(self._in_service), self.container._limits_version)
        if key == self._demand_key:
            return self._demand_dict
        queued = len(self._queue)
        concurrency = self.concurrency()
        active = len(self._in_service) + (
            queued if queued < concurrency else concurrency
        )
        demand_values = self.profile.demand_per_request.values
        scale = float(active)
        values = {resource: value * scale for resource, value in demand_values.items()}
        self._demand_key = key
        self._demand_dict = values
        return values

    def resource_demand(self) -> ResourceVector:
        """Instantaneous resource demand driven by in-flight work."""
        return ResourceVector._from_normalized(dict(self._demand_values()))

    def utilization(self) -> ResourceVector:
        """Per-resource utilization of the hosting container."""
        return self.container.utilization()

    # -------------------------------------------------------------- execution
    def submit(
        self,
        request_id: str,
        span_name: str,
        on_complete: Callable[[float, float, float], None],
        base_time_ms: Optional[float] = None,
    ) -> bool:
        """Submit one span of work.

        ``on_complete(enqueue_time, start_time, finish_time)`` is invoked
        when the span finishes.  Returns False (and drops the span) when the
        queue is saturated.
        """
        if len(self._queue) >= self.max_queue_length:
            self._dropped_spans += 1
            return False
        if base_time_ms is None:
            base_time_ms = self._draw_service_time_ms()
        work = SpanWork(
            work_id=next(_span_work_ids),
            request_id=request_id,
            span_name=span_name,
            enqueue_time=self.engine.now,
            base_time_ms=base_time_ms,
            on_complete=on_complete,
        )
        self._queue.append(work)
        self._try_dispatch()
        return True

    def _draw_service_time_ms(self) -> float:
        """Lognormal service time with the profile's mean and CV.

        The (mu, sigma) pair is cached against the profile parameters it
        was computed from; the two ``math.log`` calls only rerun when a
        controller or anomaly actually changes the profile.
        """
        profile = self.profile
        mean = profile.base_service_time_ms
        cv = profile.service_time_cv if profile.service_time_cv > 1e-6 else 1e-6
        cached_mean, cached_cv, mu, sigma = self._lognormal_params
        if mean != cached_mean or cv != cached_cv:
            sigma2 = math.log(1.0 + cv * cv)
            mu = math.log(mean) - sigma2 / 2.0
            sigma = math.sqrt(sigma2)
            self._lognormal_params = (mean, cv, mu, sigma)
        return self._service_cursor.lognormal(mu, sigma)

    def _try_dispatch(self) -> None:
        """Move queued spans into service while concurrency slots are free."""
        queue = self._queue
        if not queue:
            return
        in_service = self._in_service
        concurrency = self.concurrency()
        while queue and len(in_service) < concurrency:
            work = queue.popleft()
            work.start_time = self.engine.now
            in_service[work.work_id] = work
            slowdown = self.container.total_slowdown()
            duration_s = (work.base_time_ms * slowdown) / 1000.0
            self.engine.schedule_after(
                duration_s,
                lambda eng, w=work: self._finish(w),
                name=self._finish_event_name,
            )

    def _finish(self, work: SpanWork) -> None:
        """Complete one span: record latency and notify the caller."""
        self._in_service.pop(work.work_id, None)
        self._completed_spans += 1
        finish_time = self.engine.now
        latency_ms = (finish_time - work.enqueue_time) * 1000.0
        recent = self.recent_latencies_ms
        recent.append(latency_ms)
        if len(recent) > 4096:
            del recent[: len(recent) - 4096]
        work.on_complete(work.enqueue_time, work.start_time or work.enqueue_time, finish_time)
        self._try_dispatch()
        for listener in self.completion_listeners:
            listener(self, latency_ms)

    def drain_latency_window(self) -> List[float]:
        """Return and clear the recent span latencies (ms)."""
        window = list(self.recent_latencies_ms)
        self.recent_latencies_ms.clear()
        return window

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MicroserviceInstance(name={self.name!r}, queue={self.queue_length}, "
            f"in_service={len(self._in_service)})"
        )
