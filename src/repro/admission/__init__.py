"""Admission control and the production-traffic survival kit.

Open-loop workloads keep arriving whether or not the cluster can absorb
them, and the failure modes that dominate real FIRM-style deployments —
retry amplification after a transient anomaly, metastable overload,
shed-vs-violate tradeoffs — are created *between* the client and the
entry service, not inside the replicas.  This package models that layer:

* :mod:`repro.admission.config` — picklable policy data:
  :class:`RetryPolicy` (exponential backoff + jitter),
  :class:`HedgePolicy`, :class:`CircuitBreakerConfig`, and the composed
  :class:`AdmissionConfig` with its named presets (``none``,
  ``naive_retries``, ``survival_kit``, ``shed_only``);
* :mod:`repro.admission.gate` — the runtime: :class:`TokenBucket`
  rate limiting with priority-class shedding watermarks, a logical
  concurrency limit, per-request timeout budgets, retries, hedging, and
  per-entry-service :class:`CircuitBreaker` state machines, all wired
  through :class:`AdmissionGate`.

The gate threads through
:class:`~repro.apps.runtime.ApplicationRuntime.submit_request`: with no
gate attached the runtime is byte-identical to the pre-admission
behaviour, and with one attached every retried/hedged/shed request is a
first-class citizen of traces, telemetry, and the observability journal
(``admission_decision`` / ``retry`` / ``breaker_transition`` records).
Select a policy declaratively via ``ScenarioSpec.admission`` /
``TenantSpec.admission`` (a preset name or an :class:`AdmissionConfig`),
or imperatively via ``harness.attach_admission(...)``.
"""

from repro.admission.config import (
    ADMISSION_PRESETS,
    PRESET_NAMES,
    AdmissionConfig,
    CircuitBreakerConfig,
    HedgePolicy,
    RetryPolicy,
    admission_name,
    resolve_admission_config,
)
from repro.admission.gate import AdmissionGate, CircuitBreaker, TokenBucket

__all__ = [
    "ADMISSION_PRESETS",
    "PRESET_NAMES",
    "AdmissionConfig",
    "AdmissionGate",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "HedgePolicy",
    "RetryPolicy",
    "TokenBucket",
    "admission_name",
    "resolve_admission_config",
]
