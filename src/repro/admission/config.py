"""Admission-control policy data: picklable configs and named presets.

Everything here is plain frozen-dataclass data so specs carrying an
:class:`AdmissionConfig` cross process boundaries unchanged (the sweep
runner pickles specs to worker processes).  The semantics live in
:mod:`repro.admission.gate`; this module only declares *what* the gate
should do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "ADMISSION_PRESETS",
    "AdmissionConfig",
    "CircuitBreakerConfig",
    "HedgePolicy",
    "RetryPolicy",
    "resolve_admission_config",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retries of dropped requests.

    Attributes
    ----------
    max_attempts:
        Total attempts per logical request, the first included (1
        disables retries).
    backoff_base_s / backoff_factor / backoff_max_s:
        Attempt ``k`` (2-based) is delayed
        ``min(base * factor**(k-2), max)`` simulated seconds after the
        previous attempt failed.  ``factor=1`` is the constant-backoff
        retry storm fuel; ``factor>1`` is exponential backoff.
    jitter:
        Fractional symmetric jitter applied to each backoff (``0.1`` =
        ±10%), drawn from the gate's seeded ``admission:`` substream so
        retried runs stay deterministic.  Jitter decorrelates synchronized
        retry waves — the classic storm-damping knob.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.1

    def backoff_s(self, attempt: int) -> float:
        """Un-jittered backoff before ``attempt`` (2-based)."""
        exponent = max(0, attempt - 2)
        return min(
            self.backoff_base_s * (self.backoff_factor**exponent),
            self.backoff_max_s,
        )


@dataclass(frozen=True)
class HedgePolicy:
    """Request hedging: duplicate slow requests instead of waiting.

    ``delay_s <= 0`` disables hedging.  Otherwise, a logical request
    still unresolved ``delay_s`` after admission launches a duplicate
    attempt (up to ``max_hedges``); the first non-dropped completion
    wins and later completions are ignored by the gate (their spans are
    still traced — hedges are real load).
    """

    delay_s: float = 0.0
    max_hedges: int = 1


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Per-entry-service circuit breaker (closed → open → half-open).

    ``failure_threshold`` consecutive failures open the breaker; while
    open, requests are shed immediately for ``cooldown_s``; the half-open
    state then admits up to ``half_open_probes`` probe requests — one
    probe failure re-opens, ``half_open_probes`` consecutive successes
    close.
    """

    enabled: bool = False
    failure_threshold: int = 10
    cooldown_s: float = 5.0
    half_open_probes: int = 3


@dataclass(frozen=True)
class AdmissionConfig:
    """One admission-control policy, composed of the survival-kit parts.

    Attributes
    ----------
    name:
        Stable identity (keys scenario ids and scoreboard rows).
    rate_limit_rps / burst:
        Token-bucket admission: ``rate_limit_rps`` tokens/s refill with a
        ``burst``-token capacity (``None`` rate disables the bucket;
        ``None`` burst defaults to one second of refill).
    max_concurrent:
        Cap on logical requests in flight (admitted, not yet resolved);
        ``None`` disables the limit.
    priority_levels / priorities:
        Load shedding with priority classes.  ``priorities`` maps request
        -type names to classes (0 = highest); unmapped types get the
        lowest class.  Class ``p`` is only admitted while the bucket
        retains ``p/priority_levels`` of its burst (and the concurrency
        limit ``p/priority_levels`` of its headroom), so pressure sheds
        the lowest classes first and class 0 survives longest.
    timeout_budget_s / timeout_scope:
        Deadline semantics.  With the default ``"budget"`` scope the
        deadline is per *logical* request, measured from admission:
        attempts resolving past it count as failures
        (``deadline_exceeded``) and no retry or hedge is scheduled beyond
        it — the well-behaved production semantics.  With the
        ``"attempt"`` scope the timer resets on every (re)launch — each
        attempt gets its own ``timeout_budget_s`` and retries keep going
        regardless of total elapsed time.  That is what ungoverned
        clients actually do, and it is the retry-storm fuel: under
        saturation every attempt times out and respawns load forever.
        ``None`` budget disables the deadline entirely.
    retry / hedge / breaker:
        The component policies above.
    """

    name: str = "custom"
    rate_limit_rps: Optional[float] = None
    burst: Optional[float] = None
    max_concurrent: Optional[int] = None
    priority_levels: int = 1
    priorities: Optional[Dict[str, int]] = None
    timeout_budget_s: Optional[float] = None
    timeout_scope: str = "budget"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    hedge: HedgePolicy = field(default_factory=HedgePolicy)
    breaker: CircuitBreakerConfig = field(default_factory=CircuitBreakerConfig)

    def __post_init__(self) -> None:
        if self.priority_levels < 1:
            raise ValueError(
                f"priority_levels must be >= 1, got {self.priority_levels}"
            )
        if self.timeout_scope not in ("budget", "attempt"):
            raise ValueError(
                f"timeout_scope must be 'budget' or 'attempt', "
                f"got {self.timeout_scope!r}"
            )
        if self.retry.max_attempts < 1:
            raise ValueError(
                f"retry.max_attempts must be >= 1, got {self.retry.max_attempts}"
            )

    @property
    def is_noop(self) -> bool:
        """Whether this config changes nothing (no gate needs attaching)."""
        return (
            self.rate_limit_rps is None
            and self.max_concurrent is None
            and self.timeout_budget_s is None
            and self.retry.max_attempts <= 1
            and self.hedge.delay_s <= 0
            and not self.breaker.enabled
        )

    def priority_of(self, request_type: str) -> int:
        """The (clamped) priority class of one request type."""
        if not self.priorities:
            return 0
        raw = self.priorities.get(request_type, self.priority_levels - 1)
        return min(max(int(raw), 0), self.priority_levels - 1)

    def effective_burst(self) -> float:
        """The bucket capacity (defaults to one second of refill)."""
        if self.burst is not None:
            return float(self.burst)
        return float(self.rate_limit_rps or 0.0)

    def with_overrides(self, **overrides) -> "AdmissionConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)


#: Named presets for ``ScenarioSpec.admission`` and the CLI.
#:
#: ``none``
#:     The explicit no-op (byte-identical to leaving admission unset).
#: ``naive_retries``
#:     What ungoverned clients do: an aggressive client timeout plus four
#:     fast constant-backoff retries with no jitter and no shedding — the
#:     retry-storm fuel the metastable scenarios ignite (every slow
#:     response times out and respawns load onto the saturated service).
#: ``shed_only``
#:     Token-bucket + concurrency shedding with priority watermarks but
#:     no retries — the shed-vs-violate sweep's moving part.
#: ``survival_kit``
#:     The full production kit: budgeted exponential-backoff retries with
#:     jitter, hedging, priority shedding, and circuit breakers.
ADMISSION_PRESETS: Dict[str, AdmissionConfig] = {
    "none": AdmissionConfig(name="none"),
    "naive_retries": AdmissionConfig(
        name="naive_retries",
        timeout_budget_s=0.4,
        timeout_scope="attempt",
        retry=RetryPolicy(
            max_attempts=4,
            backoff_base_s=0.02,
            backoff_factor=1.0,
            backoff_max_s=0.02,
            jitter=0.0,
        ),
    ),
    "shed_only": AdmissionConfig(
        name="shed_only",
        rate_limit_rps=80.0,
        burst=40.0,
        max_concurrent=256,
        priority_levels=2,
    ),
    "survival_kit": AdmissionConfig(
        name="survival_kit",
        rate_limit_rps=120.0,
        burst=60.0,
        # The metastability cure: once latency balloons, logical requests
        # pile up in flight and the concurrency cap sheds the excess
        # instead of queueing it — offered load falls back under the
        # capacity knee and the system recovers when the trigger clears.
        max_concurrent=128,
        priority_levels=2,
        timeout_budget_s=1.5,
        retry=RetryPolicy(
            max_attempts=3,
            backoff_base_s=0.05,
            backoff_factor=2.0,
            backoff_max_s=0.5,
            jitter=0.25,
        ),
        # Hedge at ~healthy-tail latency: fast enough to cut stragglers,
        # slow enough that a saturated service is shed (above), not
        # hedged into deeper saturation.
        hedge=HedgePolicy(delay_s=1.0, max_hedges=1),
        breaker=CircuitBreakerConfig(
            enabled=True,
            failure_threshold=20,
            cooldown_s=2.0,
            half_open_probes=3,
        ),
    ),
}


def resolve_admission_config(
    config: Optional[Union[str, AdmissionConfig]],
) -> Optional[AdmissionConfig]:
    """Resolve a spec's admission field to a config (or None).

    Accepts ``None`` (admission off), a preset name, or a full
    :class:`AdmissionConfig`.  The ``none`` preset and no-op configs
    resolve to ``None`` so no gate is attached and the runtime's
    pre-admission fast path runs byte-identically.
    """
    if config is None:
        return None
    if isinstance(config, str):
        try:
            config = ADMISSION_PRESETS[config]
        except KeyError:
            known = ", ".join(sorted(ADMISSION_PRESETS))
            raise ValueError(
                f"unknown admission preset {config!r}; known: {known}"
            ) from None
    if not isinstance(config, AdmissionConfig):
        raise TypeError(
            f"admission must be a preset name or AdmissionConfig, got {config!r}"
        )
    return None if config.is_noop else config


def admission_name(config: Optional[Union[str, AdmissionConfig]]) -> Optional[str]:
    """The stable display name of a spec's admission field (None if unset)."""
    if config is None:
        return None
    return config if isinstance(config, str) else config.name


#: Preset-name tuple (the CLI's fail-fast validation axis).
PRESET_NAMES: Tuple[str, ...] = tuple(sorted(ADMISSION_PRESETS))
