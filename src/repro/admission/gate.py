"""The admission gate: rate limiting, shedding, retries, hedging, breakers.

:class:`AdmissionGate` sits between the workload generator and
:meth:`~repro.apps.runtime.ApplicationRuntime.submit_attempt`.  Each call
to :meth:`AdmissionGate.submit` is one *logical* request; the gate decides
whether to shed it (token bucket, concurrency limit, or circuit breaker),
and for admitted requests it launches one or more *physical* attempts —
the original, retries after backoff, and hedges — each of which is a
first-class trace with its own spans.  Shed requests are also first-class:
they get a trace that is begun and immediately dropped, so SLO accounting,
telemetry sketches, and the observability journal all see them.

Determinism: the gate draws backoff jitter exclusively from the seeded
``admission:<app>`` substream and schedules everything on the simulation
engine, so admission-controlled runs are byte-identical across repeats
and across serial/parallel sweep execution.

Observability: when constructed with an
:class:`~repro.obs.run.Observability`, the gate journals
``admission_decision`` records for sheds, ``retry`` records for every
scheduled retry, and ``breaker_transition`` records for breaker state
changes, and feeds decision/retry/hedge counters into the metrics
registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.admission.config import AdmissionConfig, CircuitBreakerConfig
from repro.sim.rng import SeededRNG
from repro.tracing.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.runtime import ApplicationRuntime

__all__ = ["AdmissionGate", "CircuitBreaker", "TokenBucket"]


class TokenBucket:
    """A token bucket refilled on demand from simulated time.

    ``take`` admits priority class ``p`` (0 = highest of ``levels``) only
    while, after the draw, the bucket would retain at least
    ``p / levels`` of its capacity — the priority watermark: under
    pressure the lowest classes are shed first and class 0 keeps drawing
    until the bucket is truly empty.
    """

    __slots__ = ("rate", "capacity", "tokens", "_last_refill_s")

    def __init__(self, rate_rps: float, capacity: float) -> None:
        if rate_rps <= 0.0:
            raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
        if capacity < 1.0:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.rate = float(rate_rps)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self._last_refill_s = 0.0

    def refill(self, now: float) -> None:
        """Credit tokens for the time elapsed since the last refill."""
        elapsed = now - self._last_refill_s
        if elapsed > 0.0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self._last_refill_s = now

    def take(self, now: float, priority: int = 0, levels: int = 1) -> bool:
        """Draw one token for class ``priority``; False = shed."""
        self.refill(now)
        floor = (priority / levels) * self.capacity if levels > 1 else 0.0
        if self.tokens - 1.0 >= floor - 1e-12:
            self.tokens -= 1.0
            return True
        return False


class CircuitBreaker:
    """Per-service breaker state machine: closed → open → half-open.

    ``failure_threshold`` consecutive failures trip the breaker open;
    while open every request is rejected until ``cooldown_s`` has passed,
    then the half-open state admits up to ``half_open_probes`` concurrent
    probes — one probe failure re-opens the breaker, ``half_open_probes``
    consecutive probe successes close it.  ``on_transition`` (if given)
    is invoked ``(old_state, new_state, now)`` on every state change.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = (
        "config",
        "state",
        "transitions",
        "on_transition",
        "_consecutive_failures",
        "_opened_at_s",
        "_probes_outstanding",
        "_probe_successes",
    )

    def __init__(
        self,
        config: CircuitBreakerConfig,
        on_transition: Optional[Callable[[str, str, float], None]] = None,
    ) -> None:
        self.config = config
        self.state = self.CLOSED
        self.transitions = 0
        self.on_transition = on_transition
        self._consecutive_failures = 0
        self._opened_at_s = 0.0
        self._probes_outstanding = 0
        self._probe_successes = 0

    def _transition(self, new_state: str, now: float) -> None:
        old_state, self.state = self.state, new_state
        self.transitions += 1
        if new_state == self.OPEN:
            self._opened_at_s = now
            self._consecutive_failures = 0
        elif new_state == self.HALF_OPEN:
            self._probes_outstanding = 0
            self._probe_successes = 0
        else:
            self._consecutive_failures = 0
        if self.on_transition is not None:
            self.on_transition(old_state, new_state, now)

    def allow(self, now: float) -> bool:
        """Whether one request may proceed at ``now`` (may move state)."""
        if not self.config.enabled:
            return True
        if self.state == self.OPEN:
            if now - self._opened_at_s < self.config.cooldown_s:
                return False
            self._transition(self.HALF_OPEN, now)
        if self.state == self.HALF_OPEN:
            if self._probes_outstanding >= self.config.half_open_probes:
                return False
            self._probes_outstanding += 1
        return True

    def record_success(self, now: float) -> None:
        """Feedback: one admitted request succeeded."""
        if not self.config.enabled:
            return
        if self.state == self.HALF_OPEN:
            self._probes_outstanding = max(0, self._probes_outstanding - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._transition(self.CLOSED, now)
        else:
            self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        """Feedback: one admitted request failed."""
        if not self.config.enabled:
            return
        if self.state == self.HALF_OPEN:
            self._transition(self.OPEN, now)
        elif self.state == self.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.failure_threshold:
                self._transition(self.OPEN, now)


class _LogicalRequest:
    """Bookkeeping for one admitted logical request across its attempts."""

    __slots__ = (
        "request_type",
        "entry_service",
        "priority",
        "admitted_at_s",
        "deadline_s",
        "on_complete",
        "attempts",
        "outstanding",
        "retry_pending",
        "hedges",
        "settled",
        "first_trace",
    )

    def __init__(
        self,
        request_type: str,
        entry_service: str,
        priority: int,
        admitted_at_s: float,
        deadline_s: Optional[float],
        on_complete: Optional[Callable[[Trace], None]],
    ) -> None:
        self.request_type = request_type
        self.entry_service = entry_service
        self.priority = priority
        self.admitted_at_s = admitted_at_s
        self.deadline_s = deadline_s
        self.on_complete = on_complete
        #: Physical attempts launched (original + retries + hedges).
        self.attempts = 0
        #: Attempts launched but not yet resolved.
        self.outstanding = 0
        #: A retry is scheduled (backoff timer armed).
        self.retry_pending = False
        #: Hedge attempts launched.
        self.hedges = 0
        self.settled = False
        self.first_trace: Optional[Trace] = None


class AdmissionGate:
    """Admission control for one application runtime.

    Parameters
    ----------
    runtime:
        The :class:`~repro.apps.runtime.ApplicationRuntime` whose requests
        this gate governs; attach via ``runtime.admission = gate``.
    rng:
        Seeded RNG family; backoff jitter draws from the
        ``admission:<app>`` substream exclusively.
    config:
        The resolved :class:`~repro.admission.config.AdmissionConfig`.
    obs:
        Optional :class:`~repro.obs.run.Observability` receiving
        journal records and metrics.
    source:
        Journal/metrics source label (defaults to ``admission:<app>`` or,
        for tenanted runtimes, ``admission:<tenant>``).
    """

    def __init__(
        self,
        runtime: "ApplicationRuntime",
        rng: SeededRNG,
        config: AdmissionConfig,
        obs=None,
        source: Optional[str] = None,
    ) -> None:
        self.runtime = runtime
        self.engine = runtime.engine
        self.rng = rng
        self.config = config
        self.obs = obs
        self.source = source or f"admission:{runtime.tenant or runtime.app.name}"
        self._jitter_stream = f"admission:{runtime.app.name}"
        self._bucket: Optional[TokenBucket] = None
        if config.rate_limit_rps is not None:
            self._bucket = TokenBucket(
                config.rate_limit_rps, config.effective_burst()
            )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._in_flight = 0
        self.stats: Dict[str, float] = {
            "submitted": 0,
            "admitted": 0,
            "shed": 0,
            "attempts": 0,
            "retries": 0,
            "hedges": 0,
            "succeeded": 0,
            "failed": 0,
            "deadline_exceeded": 0,
        }
        self.shed_by_reason: Dict[str, int] = {}

    # ------------------------------------------------------------ admission
    def submit(
        self,
        request_type_name: str,
        on_complete: Optional[Callable[[Trace], None]] = None,
    ) -> Trace:
        """Admit-or-shed one logical request, launching attempt 1 if admitted.

        Returns the first attempt's trace (already dropped when shed;
        ``on_complete`` then never fires).  For admitted requests
        ``on_complete`` fires exactly once, with the trace of the attempt
        that settled the request — which may be a retry or hedge, and may
        be a dropped trace when every attempt failed.
        """
        now = self.engine.now
        self.stats["submitted"] += 1
        request_type = self.runtime.app.request_types[request_type_name]
        entry_service = request_type.entry_service
        priority = self.config.priority_of(request_type_name)

        reason = self._shed_reason(now, entry_service, priority)
        if reason is not None:
            return self._shed(request_type_name, reason, priority)

        self.stats["admitted"] += 1
        self._in_flight += 1
        self._count("admission_requests", decision="admitted")
        deadline = (
            now + self.config.timeout_budget_s
            if self.config.timeout_budget_s is not None
            else None
        )
        logical = _LogicalRequest(
            request_type_name, entry_service, priority, now, deadline, on_complete
        )
        trace = self._launch_attempt(logical, label=None)
        if self.config.hedge.delay_s > 0.0 and not logical.settled:
            self._arm_hedge(logical)
        return trace

    def _shed_reason(
        self, now: float, entry_service: str, priority: int
    ) -> Optional[str]:
        """The reason to shed this request now, or None to admit it."""
        breaker = self._breakers.get(entry_service)
        if breaker is not None and not breaker.allow(now):
            return "breaker"
        if self.config.breaker.enabled and breaker is None:
            # First sight of this entry service: materialize its breaker
            # (a fresh breaker is closed, so it always allows).
            self._breaker_for(entry_service).allow(now)
        if self.config.max_concurrent is not None:
            levels = self.config.priority_levels
            headroom = self.config.max_concurrent * (levels - priority) / levels
            if self._in_flight >= headroom:
                return "concurrency"
        if self._bucket is not None and not self._bucket.take(
            now, priority, self.config.priority_levels
        ):
            return "rate_limit"
        return None

    def _shed(self, request_type_name: str, reason: str, priority: int) -> Trace:
        """Shed one logical request as a first-class dropped trace."""
        runtime = self.runtime
        self.stats["shed"] += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        self._count("admission_requests", decision="shed", reason=reason)
        trace = runtime.coordinator.begin_trace(
            runtime.next_request_id(request_type_name, label="shed"),
            request_type_name,
            self.engine.now,
        )
        runtime.coordinator.drop_trace(trace)
        runtime.dropped_requests += 1
        self._record(
            "admission_decision",
            decision="shed",
            reason=reason,
            request_type=request_type_name,
            priority=priority,
        )
        return trace

    # ------------------------------------------------------------- attempts
    def _launch_attempt(self, logical: _LogicalRequest, label: Optional[str]) -> Trace:
        logical.attempts += 1
        logical.outstanding += 1
        self.stats["attempts"] += 1
        if (
            self.config.timeout_scope == "attempt"
            and self.config.timeout_budget_s is not None
        ):
            # Naive-client semantics: the timeout timer resets on every
            # (re)launch, so retries keep respawning load regardless of
            # total elapsed time — the retry-storm fuel.
            logical.deadline_s = self.engine.now + self.config.timeout_budget_s
        trace = self.runtime.submit_attempt(
            logical.request_type,
            on_complete=lambda t: self._attempt_finished(logical, t),
            label=label,
        )
        if logical.first_trace is None:
            logical.first_trace = trace
        if trace.dropped:
            # Synchronous entry rejection: submit_attempt never invokes
            # on_complete for it, so resolve the attempt here.
            self._attempt_finished(logical, trace)
        return trace

    def _attempt_finished(self, logical: _LogicalRequest, trace: Trace) -> None:
        now = self.engine.now
        logical.outstanding -= 1
        past_deadline = logical.deadline_s is not None and now > logical.deadline_s
        success = not trace.dropped and not past_deadline
        breaker = (
            self._breaker_for(logical.entry_service)
            if self.config.breaker.enabled
            else None
        )
        if breaker is not None:
            if success:
                breaker.record_success(now)
            else:
                breaker.record_failure(now)
        if logical.settled:
            return
        if success:
            self._settle(logical, trace, "ok")
            return
        if self._schedule_retry(logical, now):
            return
        if logical.outstanding == 0 and not logical.retry_pending:
            self._settle(logical, trace, "deadline" if past_deadline else "failed")

    def _schedule_retry(self, logical: _LogicalRequest, now: float) -> bool:
        """Arm the backoff timer for the next retry if policy allows."""
        retry = self.config.retry
        if logical.retry_pending or logical.attempts >= retry.max_attempts:
            return False
        delay = retry.backoff_s(logical.attempts + 1)
        if retry.jitter > 0.0:
            delay *= 1.0 + self.rng.uniform(
                self._jitter_stream, -retry.jitter, retry.jitter
            )
            delay = max(0.0, delay)
        if (
            self.config.timeout_scope == "budget"
            and logical.deadline_s is not None
            and now + delay > logical.deadline_s
        ):
            return False
        attempt = logical.attempts + 1
        logical.retry_pending = True
        self.stats["retries"] += 1
        self._count("admission_retries")
        self._record(
            "retry",
            request_type=logical.request_type,
            attempt=attempt,
            backoff_s=round(delay, 6),
        )

        def _fire(_engine) -> None:
            logical.retry_pending = False
            if logical.settled:
                return
            self._launch_attempt(logical, label=f"retry{attempt - 1}")

        self.engine.schedule_after(delay, _fire, name="admission-retry")
        return True

    def _arm_hedge(self, logical: _LogicalRequest) -> None:
        hedge = self.config.hedge

        def _fire(_engine) -> None:
            # Hedge only a request that is still waiting on a live attempt;
            # a request parked in retry backoff is not slow, it is failed.
            if logical.settled or logical.outstanding == 0:
                return
            if logical.deadline_s is not None and self.engine.now > logical.deadline_s:
                return
            logical.hedges += 1
            self.stats["hedges"] += 1
            self._count("admission_hedges")
            self._launch_attempt(logical, label=f"hedge{logical.hedges}")
            if logical.hedges < hedge.max_hedges:
                self._arm_hedge(logical)

        self.engine.schedule_after(hedge.delay_s, _fire, name="admission-hedge")

    def _settle(self, logical: _LogicalRequest, trace: Trace, outcome: str) -> None:
        logical.settled = True
        self._in_flight -= 1
        if outcome == "ok":
            self.stats["succeeded"] += 1
        else:
            self.stats["failed"] += 1
            if outcome == "deadline":
                self.stats["deadline_exceeded"] += 1
        if logical.on_complete is not None:
            logical.on_complete(trace)

    # ------------------------------------------------------------- breakers
    def _breaker_for(self, service: str) -> CircuitBreaker:
        breaker = self._breakers.get(service)
        if breaker is None:

            def _journal_transition(old: str, new: str, now: float) -> None:
                self._count("breaker_transitions", service=service, to=new)
                self._record(
                    "breaker_transition", service=service, old=old, new=new
                )

            breaker = CircuitBreaker(
                self.config.breaker, on_transition=_journal_transition
            )
            self._breakers[service] = breaker
        return breaker

    # -------------------------------------------------------- observability
    def _record(self, kind: str, **data) -> None:
        if self.obs is not None:
            self.obs.journal.record(self.engine.now, kind, self.source, **data)

    def _count(self, name: str, **labels) -> None:
        if self.obs is not None:
            self.obs.registry.counter(name, **labels).inc()

    def snapshot(self) -> Dict[str, object]:
        """Summarize this gate's run as a JSON-serializable dict."""
        admitted = self.stats["admitted"]
        return {
            "policy": self.config.name,
            "submitted": int(self.stats["submitted"]),
            "admitted": int(admitted),
            "shed": int(self.stats["shed"]),
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "attempts": int(self.stats["attempts"]),
            "retries": int(self.stats["retries"]),
            "hedges": int(self.stats["hedges"]),
            "succeeded": int(self.stats["succeeded"]),
            "failed": int(self.stats["failed"]),
            "deadline_exceeded": int(self.stats["deadline_exceeded"]),
            "in_flight": int(self._in_flight),
            "amplification": (
                round(self.stats["attempts"] / admitted, 4) if admitted else 0.0
            ),
            "breakers": {
                service: {"state": breaker.state, "transitions": breaker.transitions}
                for service, breaker in sorted(self._breakers.items())
            },
        }
