"""Command-line interface for running reproduction experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig1 --out results/fig1.json
    python -m repro.cli run table6
    python -m repro.cli run interference --preset aggressor_victim
    python -m repro.cli run routing --preset interference --policies jiq,p2c
    python -m repro.cli run resilience --preset multi_anomaly
    python -m repro.cli run composed --duration 10
    python -m repro.cli controllers --list
    python -m repro.cli sweep --campaigns single_sweep,random \
        --controllers firm,aimd,none --workers 2
    python -m repro.cli compare --application social_network --duration 120
    python -m repro.cli sweep --application social_network \
        --seeds 0,1,2 --controllers firm,aimd --workers 2
    python -m repro.cli sweep --tenants 1,2,4 --application hotel_reservation \
        --controllers aimd --duration 30
    python -m repro.cli sweep --routing least_in_flight,p2c,jiq \
        --controllers none,aimd --tenants 1,2
    python -m repro.cli perf --quick --repeats 3 --compare

The CLI is a thin wrapper over :mod:`repro.experiments`; every experiment
is also importable and runnable programmatically (see the examples/
directory and the benchmarks/ harnesses).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Callable, Dict


def _to_jsonable(value: Any) -> Any:
    """Best-effort conversion of experiment results to JSON-friendly data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if hasattr(value, "as_dict"):
        return _to_jsonable(value.as_dict())
    if hasattr(value, "summary") and callable(value.summary):
        try:
            return _to_jsonable(value.summary())
        except TypeError:
            pass
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def _run_fig1(args: argparse.Namespace):
    from repro.experiments.fig1_motivation import run_fig1

    return run_fig1(duration_s=args.duration, load_rps=args.load)


def _run_fig3(args: argparse.Namespace):
    from repro.experiments.fig3_cp_distributions import run_fig3

    return run_fig3(duration_s=args.duration, load_rps=args.load)


def _run_table1(args: argparse.Namespace):
    from repro.experiments.table1_cp_changes import run_table1

    return run_table1(duration_s=min(args.duration, 60.0), load_rps=args.load)


def _run_fig4(args: argparse.Namespace):
    from repro.experiments.fig4_variance_scaling import run_fig4

    return run_fig4(duration_s=min(args.duration, 60.0), load_rps=args.load)


def _run_fig5(args: argparse.Namespace):
    from repro.experiments.fig5_scale_tradeoff import run_fig5

    return run_fig5(duration_s=min(args.duration, 45.0))


def _run_fig9(args: argparse.Namespace):
    from repro.experiments.fig9_localization import run_fig9b

    return run_fig9b(applications=("social_network",), windows=6, load_rps=args.load)


def _run_fig10(args: argparse.Namespace):
    from repro.experiments.fig10_end_to_end import run_fig10

    return run_fig10(
        application=args.application, duration_s=args.duration, load_rps=args.load
    )


def _run_fig11(args: argparse.Namespace):
    from repro.experiments.fig11_rl_training import run_fig11b

    return run_fig11b(episodes=4)


def _run_table6(args: argparse.Namespace):
    from repro.experiments.table6_operation_latency import run_table6, table6_rows

    return table6_rows(run_table6())


def _run_summary(args: argparse.Namespace):
    from repro.experiments.summary import run_summary

    return run_summary(quick=True)


def _run_interference(args: argparse.Namespace):
    """Run an interference preset; omitted flags keep the preset defaults."""
    from repro.experiments.interference import PRESETS, run_interference

    preset = getattr(args, "preset", None) or "aggressor_victim"
    kwargs: Dict[str, Any] = {"seed": getattr(args, "seed", 0)}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    if preset == "identical_tenants":
        tenants = getattr(args, "tenants", None)
        kwargs["count"] = tenants if tenants is not None else 2
        if args.load is not None:
            kwargs["load_rps"] = args.load
        if args.application is not None:
            kwargs["application"] = args.application
    elif preset in PRESETS:
        if args.load is not None:
            kwargs["victim_load_rps"] = args.load
        if args.application is not None:
            kwargs["victim_application"] = args.application
    return run_interference(
        preset=preset,
        telemetry_mode=getattr(args, "telemetry_mode", None),
        **kwargs,
    ).as_dict()


def _run_resilience(args: argparse.Namespace):
    """Run a resilience preset; omitted flags keep the preset defaults."""
    from repro.experiments.resilience import run_resilience

    preset = getattr(args, "preset", None) or "multi_anomaly"
    outcome = run_resilience(
        preset=preset,
        seed=getattr(args, "seed", 0),
        duration_s=args.duration,
        load_rps=args.load,
        application=args.application,
        controller=getattr(args, "controller", None),
        scope=getattr(args, "scope", None),
        telemetry_mode=getattr(args, "telemetry_mode", None),
    )
    return outcome.as_dict()


def _run_routing_experiment(args: argparse.Namespace):
    """Compare routing policies; omitted flags keep the preset defaults."""
    from repro.experiments.routing import DEFAULT_POLICIES, run_routing

    preset = getattr(args, "preset", None) or "interference"
    policies = (
        _csv_list(args.policies)
        if getattr(args, "policies", None)
        else DEFAULT_POLICIES
    )
    kwargs: Dict[str, Any] = {"seed": getattr(args, "seed", 0)}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    if preset == "anomaly":
        if args.load is not None:
            kwargs["load_rps"] = args.load
        if args.application is not None:
            kwargs["application"] = args.application
    else:
        if args.load is not None:
            kwargs["victim_load_rps"] = args.load
        if args.application is not None:
            kwargs["victim_application"] = args.application
    return run_routing(preset=preset, policies=policies, **kwargs).as_dict()


def _run_sharded_experiment(args: argparse.Namespace):
    """Run a multi-tenant interference preset on the sharded engine.

    ``--shards 1`` (the default) is the transparent bypass to the classic
    single-engine path, so the same command line can A/B the two engines
    on an identical spec.
    """
    from repro.experiments.interference import PRESETS
    from repro.experiments.scenario import run_scenario
    from repro.experiments.sharded import ShardedScenarioRunner, plan_shards

    preset = getattr(args, "preset", None) or "aggressor_victim"
    try:
        builder = PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown interference preset {preset!r}; known: {known}")
    kwargs: Dict[str, Any] = {"seed": getattr(args, "seed", 0)}
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    if preset == "identical_tenants":
        tenants = getattr(args, "tenants", None)
        kwargs["count"] = tenants if tenants is not None else 4
        if args.load is not None:
            kwargs["load_rps"] = args.load
        if args.application is not None:
            kwargs["application"] = args.application
    else:
        if args.load is not None:
            kwargs["victim_load_rps"] = args.load
        if args.application is not None:
            kwargs["victim_application"] = args.application
    spec = builder(**kwargs)
    telemetry_mode = getattr(args, "telemetry_mode", None)
    if telemetry_mode is not None:
        spec = spec.with_overrides(telemetry_mode=telemetry_mode)
    obs_dir = getattr(args, "obs_dir", None)
    observability = bool(getattr(args, "obs", False) or obs_dir)
    if observability:
        spec = spec.with_overrides(observability=True)

    shards = max(1, int(getattr(args, "shards", 1) or 1))
    payload: Dict[str, Any] = {
        "scenario_id": spec.scenario_id,
        "shards": shards,
    }
    harness = None
    if shards == 1:
        if observability:
            # Build the harness explicitly so the span stores stay
            # reachable for the Chrome trace export.
            from repro.experiments.harness import ExperimentHarness

            harness = ExperimentHarness.from_spec(spec)
            result = harness.run(
                duration_s=spec.duration_s,
                sample_period_s=spec.sample_period_s,
                warmup_s=spec.warmup_s,
            )
        else:
            result = run_scenario(spec)
    else:
        mode = getattr(args, "shard_mode", None) or "process"
        runner = ShardedScenarioRunner(spec, shards, mode=mode)
        try:
            runner.prepare()
            result = runner.execute()
        finally:
            runner.close()
        payload["mode"] = mode
        payload["window_s"] = runner.plan.window_s
        payload["barriers"] = runner.sync_stats.barriers
        payload["skipped_windows"] = runner.sync_stats.skipped_windows
        payload["processed_events"] = runner.processed_events
    payload["summary"] = result.summary()
    payload["tenants"] = result.per_tenant_summary()
    if observability:
        journal = result.journal or []
        counts: Dict[str, int] = {}
        for record in journal:
            counts[record["kind"]] = counts.get(record["kind"], 0) + 1
        payload["observability"] = {
            "journal_records": len(journal),
            "by_kind": dict(sorted(counts.items())),
        }
        if obs_dir:
            from repro.obs.run import write_run_record

            paths = write_run_record(obs_dir, result, harness=harness)
            payload["observability"]["run_record"] = paths
            print(f"wrote run record {obs_dir}", file=sys.stderr)
    return payload


def _run_metastable(args: argparse.Namespace):
    """Run a metastable-failure campaign, or one case with a run record.

    The default mode runs a named campaign (``--preset retry_storm``,
    ``shed_vs_violate``, or ``staleness_grid``) and returns its
    scoreboard.  With ``--admission`` (or ``--obs``/``--obs-dir``) it
    runs one case instead — the shape CI uses to produce a run-record
    artifact whose journal carries the ``admission_decision`` /
    ``retry`` / ``breaker_transition`` records.
    """
    from repro.experiments.metastable import (
        MetastableCase,
        _run_metastable_case_with_result,
        run_metastable_campaign,
    )

    seed = getattr(args, "seed", 0)
    quick = bool(getattr(args, "quick", False))
    case_overrides: Dict[str, Any] = {}
    if args.duration is not None:
        case_overrides["duration_s"] = args.duration
    if args.load is not None:
        case_overrides["load_rps"] = args.load
    if args.application is not None:
        case_overrides["application"] = args.application
    if getattr(args, "dispatchers", None) is not None and args.dispatchers > 1:
        case_overrides["dispatchers"] = args.dispatchers

    admission = getattr(args, "admission", None)
    obs_dir = getattr(args, "obs_dir", None)
    observability = bool(getattr(args, "obs", False) or obs_dir)
    if admission or observability:
        case = MetastableCase(
            seed=seed, admission=admission or "survival_kit", **case_overrides
        )
        if quick:
            case = case.with_overrides(
                duration_s=min(case.duration_s, 15.0),
                anomaly_start_s=2.5,
                anomaly_duration_s=5.0,
            )
        outcome, result, harness = _run_metastable_case_with_result(
            case, observability=observability
        )
        payload = outcome.as_dict()
        if observability:
            journal = result.journal or []
            counts: Dict[str, int] = {}
            for record in journal:
                counts[record["kind"]] = counts.get(record["kind"], 0) + 1
            payload["observability"] = {
                "journal_records": len(journal),
                "by_kind": dict(sorted(counts.items())),
            }
            if obs_dir:
                from repro.obs.run import write_run_record

                paths = write_run_record(obs_dir, result, harness=harness)
                payload["observability"]["run_record"] = paths
                print(f"wrote run record {obs_dir}", file=sys.stderr)
        return payload

    campaign = getattr(args, "preset", None) or "retry_storm"

    def _progress(done: int, total: int, outcome) -> None:
        print(f"[{done}/{total}] {outcome.case_id}", file=sys.stderr)

    return run_metastable_campaign(
        campaign,
        seed=seed,
        quick=quick,
        workers=getattr(args, "workers", None) or 1,
        progress=_progress,
        **case_overrides,
    )


def _run_composed(args: argparse.Namespace):
    """Run the composed controller stack (staged framework end to end).

    ``--preset`` selects the victim's composition mode (``svm_gated_rl``,
    the default, or ``priority_chain``); ``--legacy-controllers`` turns
    the controller-manager memoization off (stage results are
    byte-identical either way — the flag only changes how often shared
    stages recompute).
    """
    from repro.experiments.composed import run_composed

    mode = getattr(args, "preset", None) or "svm_gated_rl"
    kwargs: Dict[str, Any] = {
        "seed": getattr(args, "seed", 0),
        "mode": mode,
        "controller_manager": not getattr(args, "legacy_controllers", False),
    }
    if args.duration is not None:
        kwargs["duration_s"] = args.duration
    return run_composed(**kwargs)


def _run_controllers(args: argparse.Namespace) -> int:
    """``repro.cli controllers --list``: print the controller registry."""
    from repro.baselines.base import describe_controllers

    for row in describe_controllers():
        aliases = f" (aliases: {', '.join(row['aliases'])})" if row["aliases"] else ""
        stages = f" [stages: {', '.join(row['stages'])}]" if row["stages"] else ""
        print(f"{row['name']}{aliases}: {row['summary']}{stages}")
    return 0


def _run_inspect(args: argparse.Namespace) -> int:
    """``repro.cli inspect <run-record>``: print the causal timeline."""
    from repro.obs.inspector import inspect_run_record

    print(inspect_run_record(args.run_record), end="")
    return 0


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], Any]] = {
    "fig1": _run_fig1,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "composed": _run_composed,
    "interference": _run_interference,
    "metastable": _run_metastable,
    "resilience": _run_resilience,
    "routing": _run_routing_experiment,
    "sharded": _run_sharded_experiment,
    "table1": _run_table1,
    "table6": _run_table6,
    "summary": _run_summary,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    # Defaults are applied in main() (90 s / 50 rps / social_network) so
    # the interference experiment can tell "flag omitted" apart from an
    # explicit value and fall back to its presets' own defaults.
    run_parser.add_argument("--duration", type=float, default=None, help="scenario duration (simulated s, default 90)")
    run_parser.add_argument("--load", type=float, default=None, help="offered load (req/s, default 50)")
    run_parser.add_argument("--application", default=None, help="benchmark application (default social_network)")
    run_parser.add_argument(
        "--seed", type=int, default=0,
        help="experiment seed (interference; classic experiments keep their published seeds)",
    )
    run_parser.add_argument(
        "--preset", default=None,
        help="interference preset (aggressor_victim, noisy_neighbor_ramp, "
        "identical_tenants), routing preset (anomaly, interference), "
        "resilience preset (single_sweep, multi_anomaly, random, "
        "multi_tenant), or metastable campaign (retry_storm, "
        "shed_vs_violate, staleness_grid)",
    )
    run_parser.add_argument(
        "--controller", default=None,
        help="resource controller for the resilience experiment "
        "(firm, firm_multi, kubernetes_hpa, aimd, none)",
    )
    run_parser.add_argument(
        "--scope", default=None,
        help="anomaly target scope for the resilience experiment "
        "(node, replica, service_wide, tenant)",
    )
    run_parser.add_argument(
        "--tenants", type=int, default=None,
        help="tenant count for the identical_tenants interference preset",
    )
    run_parser.add_argument(
        "--policies", default=None,
        help="comma-separated routing policies for the routing experiment "
        "(default: all registered policies)",
    )
    run_parser.add_argument(
        "--shards", type=int, default=1,
        help="event-shard count for the sharded experiment "
        "(1 = classic single-engine path)",
    )
    run_parser.add_argument(
        "--shard-mode", default=None, choices=("process", "inprocess"),
        help="shard execution mode for the sharded experiment "
        "(default process; inprocess runs shards serially in this process)",
    )
    run_parser.add_argument(
        "--admission", default=None,
        help="admission preset for the metastable experiment (none, "
        "naive_retries, shed_only, survival_kit); switches from the "
        "campaign scoreboard to a single scored case",
    )
    run_parser.add_argument(
        "--dispatchers", type=int, default=None,
        help="dispatcher count for the metastable experiment "
        "(>1 enables stale-view distributed dispatch)",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="short smoke durations for the metastable experiment",
    )
    run_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for metastable campaigns (default 1)",
    )
    run_parser.add_argument(
        "--telemetry-mode", default=None, choices=("sketch", "raw"),
        help="telemetry pipeline for the interference/resilience/sharded "
        "experiments: sketch (constant-memory streaming sketches, the "
        "default) or raw (full sample/trace retention, the historical "
        "byte-compatible behaviour)",
    )
    run_parser.add_argument(
        "--obs", action="store_true",
        help="enable run-record observability for the sharded and "
        "metastable experiments (event journal + metrics registry; see "
        "also --obs-dir)",
    )
    run_parser.add_argument(
        "--obs-dir", default=None,
        help="write the run record (journal.jsonl, metrics.json/.prom, "
        "summary.json, trace.json) to this directory; implies --obs",
    )
    run_parser.add_argument(
        "--legacy-controllers", action="store_true",
        help="run the composed experiment with controller-manager stage "
        "memoization off (byte-identical results, legacy recompute path)",
    )
    run_parser.add_argument("--out", default=None, help="write the JSON result to this path")

    controllers_parser = subparsers.add_parser(
        "controllers",
        help="inspect the controller registry",
    )
    controllers_parser.add_argument(
        "--list", action="store_true",
        help="print every registered controller: name, aliases, summary, "
        "and stage subscriptions",
    )

    inspect_parser = subparsers.add_parser(
        "inspect",
        help="print the causal timeline and metric deltas of a run record",
    )
    inspect_parser.add_argument(
        "run_record",
        help="run-record directory (from run sharded --obs-dir) or a "
        "journal.jsonl path",
    )

    compare_parser = subparsers.add_parser(
        "compare", help="compare FIRM against the baselines on one application"
    )
    compare_parser.add_argument("--application", default="social_network")
    compare_parser.add_argument("--duration", type=float, default=120.0)
    compare_parser.add_argument("--load", type=float, default=60.0)
    compare_parser.add_argument("--out", default=None)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run a seed x load x controller grid of scenarios, optionally in parallel",
    )
    sweep_parser.add_argument(
        "--application", default="social_network",
        help="comma-separated benchmark application(s)",
    )
    sweep_parser.add_argument(
        "--controllers", default="firm,aimd,k8s",
        help="comma-separated controller registry names",
    )
    sweep_parser.add_argument(
        "--seeds", default="0", help="comma-separated experiment seeds"
    )
    sweep_parser.add_argument(
        "--loads", default="50", help="comma-separated offered loads (req/s)"
    )
    sweep_parser.add_argument("--duration", type=float, default=60.0, help="scenario duration (simulated s)")
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = serial)"
    )
    sweep_parser.add_argument(
        "--anomaly-rate", type=float, default=None,
        help="random anomaly arrivals per second (0 disables injection; "
        "omitted keeps each grid's own default — 0 for plain/tenant "
        "sweeps, 0.25 for routing sweeps, where anomalies create the "
        "replica-speed asymmetry that separates policies)",
    )
    sweep_parser.add_argument(
        "--tenants", default=None,
        help="comma-separated tenant counts; switches to a multi-tenant "
        "consolidation sweep (N identical co-located tenants per scenario "
        "on a small 1-node cluster, vs. the 15-node single-tenant default)",
    )
    sweep_parser.add_argument(
        "--placement", default=None,
        help="scheduler placement policy "
        "(spread, binpack, random, anti_affinity, tenant_anti_affinity)",
    )
    sweep_parser.add_argument(
        "--routing", default=None,
        help="comma-separated load-balancing policies; crosses the grid "
        "with routing regimes (least_in_flight, round_robin, random, "
        "power_of_two_choices, ewma_latency, join_the_idle_queue)",
    )
    sweep_parser.add_argument(
        "--campaigns", default=None,
        help="comma-separated anomaly campaign kinds (single_sweep, "
        "multi_anomaly, random); switches to the resilience grid — "
        "controllers x campaigns x applications x seeds, scored on "
        "localization precision/recall and mitigation",
    )
    sweep_parser.add_argument(
        "--scope", default=None,
        help="anomaly target scope for the resilience grid "
        "(node, replica, service_wide, tenant; default service_wide)",
    )
    sweep_parser.add_argument(
        "--admission", default=None,
        help="comma-separated admission presets (none, naive_retries, "
        "shed_only, survival_kit); switches to the metastable admission "
        "grid — presets x seeds, scored on SLO violation, localization, "
        "and request amplification",
    )
    sweep_parser.add_argument("--out", default=None, help="write the JSON result to this path")

    perf_parser = subparsers.add_parser(
        "perf",
        help="run the repro.perf macro-benchmarks (simulator throughput)",
    )
    perf_parser.add_argument(
        "--quick", action="store_true",
        help="short CI durations instead of the full benchmark durations",
    )
    perf_parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark subset (default: all macro benchmarks)",
    )
    perf_parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and attach a hot-spot report "
        "(several-fold slower; never use profiled numbers as baselines)",
    )
    perf_parser.add_argument(
        "--compare", action="store_true",
        help="compare against the committed baseline and exit non-zero on "
        "a >threshold normalized events/sec regression",
    )
    perf_parser.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the committed baseline with this run's results",
    )
    perf_parser.add_argument(
        "--baseline", default=None,
        help="baseline path (default: benchmarks/results/perf.json)",
    )
    perf_parser.add_argument(
        "--threshold", type=float, default=None,
        help="regression threshold as a fraction (default 0.20 = 20%%)",
    )
    perf_parser.add_argument(
        "--repeats", type=int, default=1,
        help="median-of-N runs per benchmark (use >=3 for baselines and CI gates)",
    )
    perf_parser.add_argument(
        "--scaling", action="store_true",
        help="measure the shard-scaling curve (events/s per shard count) "
        "instead of the macro benchmarks, and write scaling.json",
    )
    perf_parser.add_argument(
        "--shard-counts", default=None,
        help="comma-separated shard counts for --scaling (default 1,2,4)",
    )
    perf_parser.add_argument(
        "--scaling-out", default=None,
        help="scaling artifact path (default: benchmarks/results/scaling.json)",
    )
    perf_parser.add_argument("--out", default=None, help="write the JSON report to this path")
    return parser


def _csv_list(text: str, convert=str) -> list:
    """Split a comma-separated CLI value, dropping empty items."""
    return [convert(item.strip()) for item in text.split(",") if item.strip()]


def _run_sweep(args: argparse.Namespace):
    from repro.baselines.base import resolve_controller_name
    from repro.cluster.scheduler import PlacementPolicy
    from repro.experiments.scenario import ScenarioSpec
    from repro.experiments.sweep import (
        routing_sweep_grid,
        run_sweep,
        sweep_grid,
        tenant_sweep_grid,
    )
    from repro.routing.base import resolve_policy_name

    # Fail fast on typos before any scenario of the grid runs.
    for controller in _csv_list(args.controllers):
        resolve_controller_name(controller)
    routing_policies = (
        [resolve_policy_name(p) for p in _csv_list(args.routing)]
        if getattr(args, "routing", None)
        else None
    )
    if args.placement is not None:
        PlacementPolicy(args.placement)

    if getattr(args, "admission", None):
        # Metastable admission grid: presets x seeds under the same
        # transient trigger, scored on SLO violation, localization, and
        # request amplification.
        from repro.experiments.metastable import (
            metastable_sweep_grid,
            run_metastable_sweep,
        )

        case_overrides = {}
        if args.duration is not None:
            case_overrides["duration_s"] = args.duration
        cases = []
        for application in _csv_list(args.application):
            for load in _csv_list(args.loads, float):
                cases.extend(
                    metastable_sweep_grid(
                        presets=_csv_list(args.admission),
                        seeds=_csv_list(args.seeds, int),
                        application=application,
                        load_rps=load,
                        **case_overrides,
                    )
                )

        def _admission_progress(done: int, total: int, outcome) -> None:
            print(f"[{done}/{total}] {outcome.case_id}", file=sys.stderr)

        outcomes = run_metastable_sweep(
            cases, workers=args.workers, progress=_admission_progress
        )
        return [outcome.as_dict() for outcome in outcomes]

    if getattr(args, "campaigns", None):
        # Resilience grid: controllers x campaigns x applications x seeds,
        # scored on localization precision/recall and mitigation metrics.
        from repro.experiments.resilience import (
            resilience_sweep_grid,
            run_resilience_sweep,
        )

        case_overrides: Dict[str, Any] = {}
        if args.duration is not None:
            case_overrides["duration_s"] = args.duration
        if getattr(args, "scope", None):
            case_overrides["scope"] = args.scope
        cases = []
        for load in _csv_list(args.loads, float):
            cases.extend(
                resilience_sweep_grid(
                    controllers=_csv_list(args.controllers),
                    campaigns=_csv_list(args.campaigns),
                    applications=_csv_list(args.application),
                    seeds=_csv_list(args.seeds, int),
                    load_rps=load,
                    **case_overrides,
                )
            )

        def _case_progress(done: int, total: int, outcome) -> None:
            print(f"[{done}/{total}] {outcome.case_id}", file=sys.stderr)

        outcomes = run_resilience_sweep(
            cases, workers=args.workers, progress=_case_progress
        )
        return [outcome.as_dict() for outcome in outcomes]

    if routing_policies is not None:
        # Routing sweep: policies x controllers x tenant counts (tenant
        # count 1 is the single-tenant consolidation shape).  An omitted
        # --anomaly-rate keeps the grid's own default (0.25), which
        # provides the replica-speed asymmetry policies separate under.
        grid_kwargs: Dict[str, Any] = {}
        if args.anomaly_rate is not None:
            grid_kwargs["anomaly_rate_per_s"] = args.anomaly_rate
        specs = []
        for application in _csv_list(args.application):
            for load in _csv_list(args.loads, float):
                specs.extend(
                    routing_sweep_grid(
                        policies=routing_policies,
                        controllers=_csv_list(args.controllers),
                        tenant_counts=_csv_list(args.tenants or "1", int),
                        application=application,
                        seeds=_csv_list(args.seeds, int),
                        load_rps=load,
                        duration_s=args.duration,
                        placement=args.placement,
                        **grid_kwargs,
                    )
                )
    elif getattr(args, "tenants", None):
        # Multi-tenant consolidation sweep: N identical co-located tenants.
        specs = []
        for application in _csv_list(args.application):
            for controller in _csv_list(args.controllers):
                for load in _csv_list(args.loads, float):
                    specs.extend(
                        tenant_sweep_grid(
                            tenant_counts=_csv_list(args.tenants, int),
                            application=application,
                            controller=controller,
                            seeds=_csv_list(args.seeds, int),
                            load_rps=load,
                            duration_s=args.duration,
                            placement=args.placement,
                            anomaly_rate_per_s=args.anomaly_rate or 0.0,
                        )
                    )
    else:
        specs = sweep_grid(
            applications=_csv_list(args.application),
            controllers=_csv_list(args.controllers),
            seeds=_csv_list(args.seeds, int),
            loads_rps=_csv_list(args.loads, float),
            duration_s=args.duration,
            anomaly_rate_per_s=args.anomaly_rate or 0.0,
            base=ScenarioSpec(placement=args.placement) if args.placement else None,
        )

    def _progress(done: int, total: int, outcome) -> None:
        print(f"[{done}/{total}] {outcome.scenario_id}", file=sys.stderr)

    outcomes = run_sweep(specs, workers=args.workers, progress=_progress)
    return [outcome.as_dict() for outcome in outcomes]


def _run_perf(args: argparse.Namespace) -> int:
    """``repro.cli perf``: run, report, and optionally gate on regressions."""
    from repro.perf import (
        DEFAULT_BASELINE_PATH,
        REGRESSION_THRESHOLD,
        compare_reports,
        load_report,
        run_perf,
        save_report,
    )

    if getattr(args, "scaling", False):
        from repro.perf.harness import DEFAULT_SCALING_PATH, run_shard_scaling, save_scaling

        counts = (
            _csv_list(args.shard_counts, int) if args.shard_counts else (1, 2, 4)
        )
        curve = run_shard_scaling(shard_counts=counts, quick=args.quick)
        for point in curve["points"]:
            print(
                f"[perf] shards={point['shards']}: {point['events_per_s']:,.0f} "
                f"events/s over {point['wall_s']:.2f}s wall",
                file=sys.stderr,
            )
        scaling_path = args.scaling_out if args.scaling_out else DEFAULT_SCALING_PATH
        save_scaling(curve, scaling_path)
        print(f"wrote scaling curve {scaling_path}", file=sys.stderr)
        text = json.dumps(curve, indent=2, default=str)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.out}")
        else:
            print(text)
        return 0

    report = run_perf(
        quick=args.quick,
        benchmarks=_csv_list(args.benchmarks) if args.benchmarks else None,
        profile=args.profile,
        repeats=args.repeats,
    )
    for name, result in sorted(report.benchmarks.items()):
        print(
            f"[perf] {name}: {result.events_per_s:,.0f} events/s, "
            f"{result.requests_per_s:,.1f} req/s over {result.wall_s:.2f}s wall",
            file=sys.stderr,
        )
    print(f"[perf] peak RSS {report.peak_rss_mb:.1f} MiB", file=sys.stderr)
    payload = report.as_dict()

    baseline_path = args.baseline if args.baseline else DEFAULT_BASELINE_PATH
    threshold = args.threshold if args.threshold is not None else REGRESSION_THRESHOLD
    exit_code = 0
    if args.update_baseline:
        save_report(report, baseline_path)
        print(f"wrote baseline {baseline_path}", file=sys.stderr)
    elif args.compare:
        comparisons = compare_reports(report, load_report(baseline_path), threshold=threshold)
        payload["comparison"] = [vars(comparison) for comparison in comparisons]
        for comparison in comparisons:
            print(f"[perf] {comparison.describe()}", file=sys.stderr)
        if any(comparison.regressed for comparison in comparisons):
            print(
                "[perf] FAILED: throughput or peak RSS regressed past the "
                f"gate thresholds vs {baseline_path}",
                file=sys.stderr,
            )
            exit_code = 1

    text = json.dumps(payload, indent=2, default=str)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return exit_code


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "perf":
        return _run_perf(args)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    if args.command == "controllers":
        return _run_controllers(args)

    # Scenario/preset resolution errors (unknown preset names, bad spec
    # combinations, missing run records) are user errors, not bugs: report
    # them as one clean line on stderr and exit non-zero, no traceback.
    try:
        if args.command == "inspect":
            return _run_inspect(args)

        if args.command == "compare":
            from repro.experiments.fig10_end_to_end import run_fig10

            result = run_fig10(
                application=args.application,
                duration_s=args.duration,
                load_rps=args.load,
                include_multi_rl=False,
            )
            payload = {name: res.summary() for name, res in result.results.items()}
        elif args.command == "sweep":
            payload = _run_sweep(args)
        else:
            if args.experiment not in (
                "composed",
                "interference",
                "metastable",
                "resilience",
                "routing",
                "sharded",
            ):
                # Classic experiments get the historical defaults; interference,
                # resilience, and routing resolve omitted flags against their
                # presets' own defaults.
                if args.duration is None:
                    args.duration = 90.0
                if args.load is None:
                    args.load = 50.0
                if args.application is None:
                    args.application = "social_network"
            runner = EXPERIMENTS[args.experiment]
            payload = _to_jsonable(runner(args))
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    text = json.dumps(_to_jsonable(payload), indent=2, default=str)
    if getattr(args, "out", None):
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
