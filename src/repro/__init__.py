"""repro: a reproduction of FIRM (OSDI 2020) on a simulated cluster.

FIRM is an intelligent fine-grained resource management framework for
SLO-oriented microservices.  This package re-implements the framework and
every substrate it depends on in pure Python:

* :mod:`repro.sim` -- discrete-event simulation engine.
* :mod:`repro.cluster` -- simulated Kubernetes-like cluster with
  fine-grained resources, containers, and an orchestrator.
* :mod:`repro.apps` -- the four benchmark microservice applications.
* :mod:`repro.workload` -- open-loop workload generators.
* :mod:`repro.tracing` -- distributed tracing and telemetry.
* :mod:`repro.anomaly` -- performance anomaly injection.
* :mod:`repro.core` -- the FIRM framework itself (critical path extraction,
  SVM-based localization, DDPG resource estimation, deployment module).
* :mod:`repro.baselines` -- Kubernetes autoscaling and AIMD baselines.
* :mod:`repro.metrics` -- latency/SLO accounting.
* :mod:`repro.experiments` -- harnesses reproducing the paper's tables
  and figures.

Quickstart
----------
>>> from repro.experiments.harness import ExperimentHarness
>>> harness = ExperimentHarness.build(application="social_network", seed=1)
>>> harness.attach_firm()
>>> result = harness.run(duration_s=60.0, load_rps=50.0)
>>> result.slo.violation_rate  # doctest: +SKIP
0.01
"""

from repro.core.firm import FIRMConfig, FIRMController

__version__ = "1.0.0"

__all__ = ["FIRMController", "FIRMConfig", "__version__"]
