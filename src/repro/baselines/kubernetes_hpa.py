"""Kubernetes autoscaling baseline.

Models the default Kubernetes horizontal pod autoscaler behaviour the paper
compares against: a rule-based loop that watches *CPU utilization only* and
adds/removes replicas to keep the observed utilization near a target.  The
key weakness the paper demonstrates (Fig. 1) is reproduced faithfully: the
HPA cannot see memory-bandwidth / LLC / I-O / network contention, so it
takes no action when the latency spike is not accompanied by a CPU spike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.base import BaselineController, register_controller


@dataclass
class HPAConfig:
    """Kubernetes HPA parameters.

    Attributes
    ----------
    target_cpu_utilization:
        Desired per-container CPU utilization (the HPA's setpoint).
    min_replicas / max_replicas:
        Replica bounds applied per service.
    tolerance:
        Dead-band around the target inside which no scaling happens
        (Kubernetes' default is 0.1).
    """

    target_cpu_utilization: float = 0.5
    min_replicas: int = 1
    max_replicas: int = 8
    tolerance: float = 0.1
    #: Maximum replicas added or removed per control round.  The real HPA
    #: rate-limits scaling through its stabilization windows; one step per
    #: round models the same conservatism.
    max_step: int = 1


@register_controller("kubernetes_hpa", aliases=("k8s",))
class KubernetesAutoscaler(BaselineController):
    """CPU-utilization-driven replica autoscaler (the K8s default)."""

    stage_subscriptions = ("service_cpu_utilization",)

    def __init__(self, *args, config: HPAConfig | None = None, **kwargs) -> None:
        kwargs.setdefault("control_interval_s", 30.0)
        super().__init__(*args, **kwargs)
        self.config = config or HPAConfig()

    def control_round(self) -> None:
        """Apply the HPA formula per service.

        ``desired = ceil(current_replicas * observed / target)`` with a
        tolerance dead-band, exactly as the Kubernetes controller computes
        it from the mean CPU utilization of a service's pods.  The
        observation comes from the cluster-scoped
        ``service_cpu_utilization`` stage, so co-resident controller
        stacks share one utilization sweep per window.
        """
        cfg = self.config
        for service_name in self.cluster.services():
            observation = self.stages.pull(
                "service_cpu_utilization", service=service_name
            )
            if observation is None:
                continue
            current, observed = observation
            if cfg.target_cpu_utilization <= 0:
                continue
            ratio = observed / cfg.target_cpu_utilization
            if abs(ratio - 1.0) <= cfg.tolerance:
                continue
            desired = math.ceil(current * ratio)
            desired = max(cfg.min_replicas, min(cfg.max_replicas, desired))
            step = max(-cfg.max_step, min(cfg.max_step, desired - current))
            if step > 0:
                for _ in range(step):
                    self.orchestrator.scale_out(service_name)
            elif step < 0:
                for _ in range(-step):
                    self.orchestrator.scale_in(service_name)
