"""Resource-controller scaffolding: the ABC and the controller registry.

Every resource-management policy in the reproduction — FIRM itself, the
rule-based baselines, and any future policy — is a
:class:`ResourceController`: a periodic control loop over the shared
simulation engine.  Policies self-register under a name with
:func:`register_controller`, and experiments instantiate them by name
through :func:`create_controller`, so new policies plug into the harness,
the figure modules, and the sweep runner without touching any of them.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.orchestrator import Orchestrator
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event
from repro.tracing.coordinator import TracingCoordinator


class ResourceController(abc.ABC):
    """Base class: a periodic control loop over the cluster.

    Subclasses implement :meth:`control_round`; the base class handles
    scheduling on the simulation engine, start/stop, and round counting so
    that every policy can be swapped interchangeably in experiments.
    """

    def __init__(
        self,
        cluster: Cluster,
        coordinator: TracingCoordinator,
        orchestrator: Orchestrator,
        engine: SimulationEngine,
        control_interval_s: float = 15.0,
    ) -> None:
        self.cluster = cluster
        self.coordinator = coordinator
        self.orchestrator = orchestrator
        self.engine = engine
        self.control_interval_s = float(control_interval_s)
        self.rounds_executed = 0
        self._running = False
        #: True only after an explicit stop() — distinguishes "retired"
        #: from "never started" (composed stacks drive member rounds
        #: directly without ever starting their loops).
        self._stopped = False
        self._control_event: Optional[Event] = None
        self._stages = None
        #: Observability bundle (set by the harness when enabled; None
        #: keeps the control loop uninstrumented).
        self.obs = None
        #: Journal source label for this controller's records.
        self.obs_source = type(self).__name__

    #: Stage names this controller pulls each round (documentation +
    #: ``describe_controllers`` output; the DAG itself is declared by the
    #: stages' own ``requires``).
    stage_subscriptions: tuple = ()

    @property
    def stages(self):
        """The controller's :class:`~repro.controllers.manager.StageRuntime`.

        The harness binds one per tenant through :meth:`bind_stages`
        (sharing the tenant's manager and cache); a controller built
        outside a harness lazily self-binds to a private disabled manager
        so stage pulls always work and always reproduce the legacy
        direct-computation path.
        """
        if self._stages is None:
            from repro.controllers.manager import ControllerManager, StageBinding

            manager = ControllerManager(self.engine, enabled=False)
            binding = StageBinding(
                coordinator=self.coordinator, view=self.cluster, engine=self.engine
            )
            self.bind_stages(manager.runtime_for(binding))
        return self._stages

    def bind_stages(self, runtime) -> None:
        """Attach a stage runtime.  Subclasses extend this to donate
        stateful helpers into the shared binding (see FIRM)."""
        self._stages = runtime

    def start(self) -> None:
        """Start the periodic control loop."""
        if self._running:
            return
        self._running = True
        self._stopped = False
        self._control_event = self.engine.schedule_recurring(
            self.control_interval_s,
            lambda eng: self._round_wrapper(),
            name=f"{type(self).__name__}-control",
        )

    def stop(self) -> None:
        """Stop the control loop and cancel its pending recurrence."""
        self._running = False
        self._stopped = True
        if self._control_event is not None:
            self._control_event.cancel()
            self._control_event = None

    def _round_wrapper(self) -> None:
        if not self._running:
            return
        self.control_round()
        self.rounds_executed += 1

    @abc.abstractmethod
    def control_round(self) -> None:
        """One control decision; implemented by subclasses."""


class BaselineController(ResourceController):
    """Base class for the rule-based baseline policies.

    Kept as a distinct subclass so baselines remain greppable as a family;
    all behaviour lives in :class:`ResourceController` (including the
    abstract :meth:`~ResourceController.control_round`, so forgetting to
    implement it still fails at construction time).
    """


# ---------------------------------------------------------------------------
# Controller registry
# ---------------------------------------------------------------------------

#: A factory takes the harness wiring plus policy kwargs and returns the
#: controller, or None for the "no controller" policy.
ControllerFactory = Callable[..., Optional[ResourceController]]

_FACTORIES: Dict[str, ControllerFactory] = {}
_ALIASES: Dict[str, str] = {}


def register_controller(name: str, *, aliases: Sequence[str] = ()) -> Callable:
    """Class/function decorator registering a controller factory by name.

    The decorated callable must accept
    ``(cluster, coordinator, orchestrator, engine, **kwargs)`` and return a
    :class:`ResourceController` (or None for a no-op policy).
    """

    def decorator(factory: ControllerFactory) -> ControllerFactory:
        # Validate everything before touching the registry so a conflict
        # cannot leave a partial registration behind.
        if name in _FACTORIES or name in _ALIASES:
            raise ValueError(f"controller {name!r} is already registered")
        for alias in aliases:
            if alias == name or alias in _FACTORIES or alias in _ALIASES:
                raise ValueError(f"controller alias {alias!r} is already registered")
        _FACTORIES[name] = factory
        for alias in aliases:
            _ALIASES[alias] = name
        return factory

    return decorator


@register_controller("none")
def _no_controller(cluster, coordinator, orchestrator, engine, **kwargs):
    """The unmanaged policy: no controller is attached."""
    if kwargs:
        raise TypeError(f"the 'none' controller takes no options, got {sorted(kwargs)}")
    return None


def _ensure_builtin_controllers() -> None:
    """Import the modules whose import registers the built-in policies."""
    import repro.baselines.aimd  # noqa: F401
    import repro.baselines.kubernetes_hpa  # noqa: F401
    import repro.controllers.composed  # noqa: F401
    import repro.core.firm  # noqa: F401


def available_controllers() -> List[str]:
    """Registered controller names (aliases excluded), sorted."""
    _ensure_builtin_controllers()
    return sorted(_FACTORIES)


def describe_controllers() -> List[Dict[str, object]]:
    """One row per registered controller: name, aliases, summary, stages.

    The summary is the factory docstring's first line; ``stages`` lists
    the factory's declared ``stage_subscriptions`` (classes inherit the
    attribute from :class:`ResourceController`, wrapper functions carry
    their own).  Backs ``repro.cli controllers --list`` so sweeps stop
    guessing at registered names.
    """
    _ensure_builtin_controllers()
    alias_map: Dict[str, List[str]] = {}
    for alias, canonical in _ALIASES.items():
        alias_map.setdefault(canonical, []).append(alias)
    rows: List[Dict[str, object]] = []
    for name in sorted(_FACTORIES):
        factory = _FACTORIES[name]
        doc = (factory.__doc__ or "").strip()
        summary = doc.splitlines()[0].strip() if doc else ""
        stages = tuple(getattr(factory, "stage_subscriptions", ()) or ())
        rows.append(
            {
                "name": name,
                "aliases": sorted(alias_map.get(name, [])),
                "summary": summary,
                "stages": list(stages),
            }
        )
    return rows


def resolve_controller_name(name: str) -> str:
    """Resolve ``name`` (possibly an alias) to its canonical registry name."""
    _ensure_builtin_controllers()
    canonical = _ALIASES.get(name, name)
    if canonical not in _FACTORIES:
        known = ", ".join(sorted(set(_FACTORIES) | set(_ALIASES)))
        raise ValueError(f"unknown controller {name!r}; registered: {known}")
    return canonical


def create_controller(
    name: str,
    cluster: Cluster,
    coordinator: TracingCoordinator,
    orchestrator: Orchestrator,
    engine: SimulationEngine,
    **kwargs,
) -> Optional[ResourceController]:
    """Instantiate the controller registered under ``name`` (or an alias).

    Returns None for the ``"none"`` policy.  Raises ``ValueError`` for
    unknown names.
    """
    factory = _FACTORIES[resolve_controller_name(name)]
    return factory(cluster, coordinator, orchestrator, engine, **kwargs)
