"""Shared scaffolding for baseline resource controllers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.orchestrator import Orchestrator
from repro.sim.engine import SimulationEngine
from repro.tracing.coordinator import TracingCoordinator


class BaselineController:
    """Base class: a periodic control loop over the cluster.

    Subclasses implement :meth:`control_round`; the base class handles
    scheduling on the simulation engine, start/stop, and round counting so
    that baselines and FIRM can be swapped interchangeably in experiments.
    """

    def __init__(
        self,
        cluster: Cluster,
        coordinator: TracingCoordinator,
        orchestrator: Orchestrator,
        engine: SimulationEngine,
        control_interval_s: float = 15.0,
    ) -> None:
        self.cluster = cluster
        self.coordinator = coordinator
        self.orchestrator = orchestrator
        self.engine = engine
        self.control_interval_s = float(control_interval_s)
        self.rounds_executed = 0
        self._running = False

    def start(self) -> None:
        """Start the periodic control loop."""
        if self._running:
            return
        self._running = True
        self.engine.schedule_recurring(
            self.control_interval_s,
            lambda eng: self._round_wrapper(),
            name=f"{type(self).__name__}-control",
        )

    def stop(self) -> None:
        """Stop scheduling further rounds."""
        self._running = False

    def _round_wrapper(self) -> None:
        if not self._running:
            return
        self.control_round()
        self.rounds_executed += 1

    def control_round(self) -> None:
        """One control decision; implemented by subclasses."""
        raise NotImplementedError
