"""Baseline autoscalers compared against FIRM in the evaluation.

Two rule-based baselines from the paper (§4.1):

* :class:`~repro.baselines.kubernetes_hpa.KubernetesAutoscaler` -- the
  Kubernetes horizontal/vertical autoscaling heuristic driven only by CPU
  utilization.
* :class:`~repro.baselines.aimd.AIMDController` -- additive-increase /
  multiplicative-decrease control of per-container resource limits.
"""

from repro.baselines.base import BaselineController
from repro.baselines.kubernetes_hpa import KubernetesAutoscaler, HPAConfig
from repro.baselines.aimd import AIMDController, AIMDConfig

__all__ = [
    "BaselineController",
    "KubernetesAutoscaler",
    "HPAConfig",
    "AIMDController",
    "AIMDConfig",
]
