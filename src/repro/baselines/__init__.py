"""Resource controllers: the registry, the ABC, and the rule-based baselines.

Controllers are pluggable: every policy registers itself by name with
:func:`~repro.baselines.base.register_controller` and experiments
instantiate them through :func:`~repro.baselines.base.create_controller`.
The two rule-based baselines from the paper (§4.1):

* :class:`~repro.baselines.kubernetes_hpa.KubernetesAutoscaler`
  (``"kubernetes_hpa"``, alias ``"k8s"``) -- the Kubernetes
  horizontal/vertical autoscaling heuristic driven only by CPU utilization.
* :class:`~repro.baselines.aimd.AIMDController` (``"aimd"``) --
  additive-increase / multiplicative-decrease control of per-container
  resource limits.

FIRM itself registers as ``"firm"`` (alias ``"firm_single"``) and
``"firm_multi"`` in :mod:`repro.core.firm`; ``"none"`` is the unmanaged
policy.
"""

from repro.baselines.base import (
    BaselineController,
    ResourceController,
    available_controllers,
    create_controller,
    register_controller,
    resolve_controller_name,
)
from repro.baselines.kubernetes_hpa import KubernetesAutoscaler, HPAConfig
from repro.baselines.aimd import AIMDController, AIMDConfig

__all__ = [
    "BaselineController",
    "ResourceController",
    "available_controllers",
    "create_controller",
    "register_controller",
    "resolve_controller_name",
    "KubernetesAutoscaler",
    "HPAConfig",
    "AIMDController",
    "AIMDConfig",
]
