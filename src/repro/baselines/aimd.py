"""AIMD resource-limit controller baseline.

The additive-increase / multiplicative-decrease policy the paper compares
against: when the service's observed tail latency violates the SLO, every
resource limit of its containers is increased additively; when latency is
comfortably inside the SLO, limits are decreased multiplicatively to
reclaim resources.  Unlike FIRM, AIMD has no notion of *which* resource is
contended or *which* microservice is the culprit — it reacts per service
with a uniform rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.baselines.base import BaselineController, register_controller
from repro.cluster.resources import RESOURCE_TYPES, ResourceVector


@dataclass
class AIMDConfig:
    """AIMD parameters.

    Attributes
    ----------
    additive_increase:
        Fraction of the default limit added per round while violating.
    multiplicative_decrease:
        Factor applied to limits per round while comfortably within SLO.
    slack_threshold:
        Latency / SLO ratio below which decrease kicks in.
    tail_percentile:
        Latency percentile compared against the SLO.
    floor:
        Minimum limits (never decreased below these).
    """

    additive_increase: float = 0.25
    multiplicative_decrease: float = 0.9
    slack_threshold: float = 0.5
    tail_percentile: float = 99.0
    floor: ResourceVector = field(
        default_factory=lambda: ResourceVector.from_kwargs(
            cpu=1.0, memory_bandwidth=2.0, llc=1.0, disk_io=50.0, network=0.25
        )
    )


@register_controller("aimd")
class AIMDController(BaselineController):
    """Additive-increase / multiplicative-decrease limit controller."""

    stage_subscriptions = ("slo_verdict", "comfortable")

    def __init__(self, *args, config: AIMDConfig | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.config = config or AIMDConfig()
        #: Additive step per resource, derived from each container's initial limits.
        self._steps: Dict[str, ResourceVector] = {}

    def control_round(self) -> None:
        """Apply AIMD to every container based on end-to-end SLO status."""
        cfg = self.config
        window = self.control_interval_s
        violating = self.stages.pull(
            "slo_verdict", window_s=window, percentile=cfg.tail_percentile
        )
        comfortable = self.stages.pull(
            "comfortable",
            window_s=window,
            percentile=cfg.tail_percentile,
            slack_threshold=cfg.slack_threshold,
        )

        for container in self.cluster.all_containers():
            if container.id not in self._steps:
                self._steps[container.id] = container.limits * cfg.additive_increase
            step = self._steps[container.id]
            if violating:
                new_limits = container.limits + step
            elif comfortable:
                new_limits = container.limits * cfg.multiplicative_decrease
            else:
                continue
            clamped = {
                resource: max(new_limits[resource], cfg.floor[resource])
                for resource in RESOURCE_TYPES
            }
            if container.instance is not None:
                self.orchestrator.set_resource_limits(
                    container.instance, ResourceVector(clamped)
                )

    def _is_comfortable(self, window_s: float) -> bool:
        """True when every request type's tail latency is well inside its SLO.

        Delegates to the ``comfortable`` stage (the logic lives there so a
        staged stack shares one computation per window); kept as a method
        because tests and subclasses call it directly.
        """
        cfg = self.config
        return self.stages.pull(
            "comfortable",
            window_s=window_s,
            percentile=cfg.tail_percentile,
            slack_threshold=cfg.slack_threshold,
        )
