"""Offline trace analysis utilities.

The paper's characterization study (§2) is built on 2 TB of collected
traces: per-service latency distributions, critical-path frequency, and
service dependency structure inferred from observed RPCs.  This module
provides the equivalent analysis toolkit over the in-memory trace store,
used by the characterization experiments (Figs. 3-5) and available to
library users for their own studies.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.critical_path import CriticalPathExtractor
from repro.metrics.latency import LatencyStats
from repro.tracing.trace import Trace


@dataclass
class ServiceLatencyBreakdown:
    """Per-service sojourn-time statistics across a set of traces."""

    service: str
    stats: LatencyStats
    share_of_total: float

    @property
    def is_heavy(self) -> bool:
        """Whether this service accounts for more than 20% of total latency."""
        return self.share_of_total > 0.2


def latency_breakdown(traces: Sequence[Trace]) -> List[ServiceLatencyBreakdown]:
    """Per-service latency statistics and share of total latency.

    The share is the service's summed sojourn time divided by the sum over
    all services (not end-to-end time, which double-counts overlap).
    """
    per_service: Dict[str, List[float]] = defaultdict(list)
    for trace in traces:
        for span in trace.spans:
            per_service[span.service].append(span.sojourn_time_ms)
    grand_total = sum(sum(samples) for samples in per_service.values())
    breakdown = []
    for service, samples in sorted(per_service.items()):
        share = sum(samples) / grand_total if grand_total > 0 else 0.0
        breakdown.append(
            ServiceLatencyBreakdown(
                service=service,
                stats=LatencyStats.from_samples(samples),
                share_of_total=share,
            )
        )
    breakdown.sort(key=lambda entry: entry.share_of_total, reverse=True)
    return breakdown


def critical_path_frequencies(traces: Sequence[Trace]) -> List[Tuple[Tuple[str, ...], int]]:
    """How often each CP signature occurs, most frequent first.

    The paper's Insight 1 is that CPs change dynamically; the number of
    distinct signatures and their churn quantifies that.
    """
    extractor = CriticalPathExtractor()
    counter: Counter = Counter()
    for trace in traces:
        if trace.root is None:
            continue
        counter[extractor.extract(trace).signature()] += 1
    return counter.most_common()


def critical_path_churn(traces: Sequence[Trace]) -> float:
    """Fraction of consecutive requests whose CP signature differs.

    0.0 means the CP is static across requests; values near 1.0 mean it
    changes almost every request (high churn is what defeats static,
    profile-based CP identification).
    """
    extractor = CriticalPathExtractor()
    signatures = [
        extractor.extract(trace).signature()
        for trace in traces
        if trace.root is not None
    ]
    if len(signatures) < 2:
        return 0.0
    changes = sum(1 for a, b in zip(signatures, signatures[1:]) if a != b)
    return changes / (len(signatures) - 1)


def observed_dependency_graph(traces: Sequence[Trace]) -> nx.DiGraph:
    """Caller -> callee dependency graph inferred from observed spans.

    Equivalent to reconstructing the service dependency graph (Fig. 2(a))
    from tracing data alone, which is how FIRM stays application-agnostic.
    """
    graph = nx.DiGraph()
    for trace in traces:
        spans_by_id = {span.span_id: span for span in trace.spans}
        for span in trace.spans:
            graph.add_node(span.service)
            if span.parent_id is not None and span.parent_id in spans_by_id:
                parent = spans_by_id[span.parent_id]
                if graph.has_edge(parent.service, span.service):
                    graph[parent.service][span.service]["calls"] += 1
                else:
                    graph.add_edge(parent.service, span.service, calls=1)
    return graph


@dataclass
class VariabilityReport:
    """Which services contribute most to end-to-end latency variance.

    The paper's Insight 2: the service with the highest latency is not
    necessarily the best scaling target; the one with the highest variance
    (explained) usually is.
    """

    highest_median: str
    highest_variance: str
    per_service_variance: Dict[str, float] = field(default_factory=dict)
    per_service_median: Dict[str, float] = field(default_factory=dict)

    @property
    def median_and_variance_disagree(self) -> bool:
        """True when the two heuristics point at different services."""
        return self.highest_median != self.highest_variance


def variability_report(traces: Sequence[Trace]) -> Optional[VariabilityReport]:
    """Identify the highest-median and highest-variance services (Insight 2)."""
    per_service: Dict[str, List[float]] = defaultdict(list)
    for trace in traces:
        for span in trace.spans:
            per_service[span.service].append(span.sojourn_time_ms)
    if not per_service:
        return None
    medians = {service: float(np.median(samples)) for service, samples in per_service.items()}
    variances = {service: float(np.var(samples)) for service, samples in per_service.items()}
    return VariabilityReport(
        highest_median=max(medians, key=lambda s: medians[s]),
        highest_variance=max(variances, key=lambda s: variances[s]),
        per_service_variance=variances,
        per_service_median=medians,
    )


def tail_amplification(traces: Sequence[Trace]) -> Dict[str, float]:
    """Per-request-type ratio of p99 to median end-to-end latency.

    Quantifies the "tail at scale" amplification the paper motivates with:
    fan-out request types have larger amplification because any slow
    parallel branch delays the whole request.
    """
    per_type: Dict[str, List[float]] = defaultdict(list)
    for trace in traces:
        if trace.is_complete:
            per_type[trace.request_type].append(trace.end_to_end_latency_ms)
    result = {}
    for request_type, samples in sorted(per_type.items()):
        stats = LatencyStats.from_samples(samples)
        result[request_type] = stats.congestion_intensity
    return result
