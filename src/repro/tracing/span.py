"""Span model.

A span is the most basic unit of work done by one microservice instance
while serving one distributed request (paper §3.1).  It records when the
request arrived at the instance, when processing actually started (after
queueing), and when the response was sent back to the caller, together with
the parent/child relationship and the workflow pattern of the invocation.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

_span_ids = itertools.count(1)


class SpanKind(str, enum.Enum):
    """Workflow pattern of the invocation that produced this span."""

    ROOT = "root"
    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"
    BACKGROUND = "background"


@dataclass(slots=True)
class Span:
    """One unit of work done by a microservice instance for a request.

    One span is allocated per RPC in every trace, so the dataclass is
    slotted: spans are the second most common object in a run after
    engine events.

    Attributes
    ----------
    span_id:
        Unique identifier within the trace store.
    request_id:
        Identifier of the distributed request this span belongs to.
    service:
        Microservice name (not the replica); used by the Extractor.
    instance:
        Replica name (``service#index``), the unit localization points at.
    parent_id:
        Span id of the caller, or ``None`` for the root span.
    kind:
        Whether the invocation was the root, sequential, parallel, or
        background with respect to its siblings.
    enqueue_time / start_time / end_time:
        Arrival at the instance, start of processing, response sent
        (simulation seconds).  ``sojourn`` = end - enqueue includes queueing.
    """

    request_id: str
    service: str
    instance: str
    kind: SpanKind = SpanKind.SEQUENTIAL
    parent_id: Optional[int] = None
    span_id: int = field(default_factory=lambda: next(_span_ids))
    enqueue_time: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0
    dropped: bool = False
    #: Tenant whose request produced this span (None when untenanted).
    tenant: Optional[str] = None
    tags: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------- durations
    @property
    def sojourn_time(self) -> float:
        """Total time spent at the instance, including queueing (seconds)."""
        return max(0.0, self.end_time - self.enqueue_time)

    @property
    def queue_time(self) -> float:
        """Time spent waiting in the instance queue (seconds)."""
        return max(0.0, self.start_time - self.enqueue_time)

    @property
    def service_time(self) -> float:
        """Time spent actually processing (seconds)."""
        return max(0.0, self.end_time - self.start_time)

    @property
    def sojourn_time_ms(self) -> float:
        """Sojourn time in milliseconds (the unit used in the paper's tables)."""
        return self.sojourn_time * 1000.0

    def overlaps(self, other: "Span") -> bool:
        """True when the two spans' [enqueue, end] windows overlap.

        The paper uses this to classify sibling spans as parallel: two
        child spans of the same parent are parallel when their execution
        windows overlap.
        """
        return (
            self.enqueue_time < other.end_time and other.enqueue_time < self.end_time
        )

    def happens_before(self, other: "Span") -> bool:
        """True when this span finishes before ``other`` starts (sequential)."""
        return self.end_time <= other.enqueue_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span(id={self.span_id}, service={self.service!r}, kind={self.kind.value}, "
            f"sojourn={self.sojourn_time_ms:.2f}ms)"
        )
