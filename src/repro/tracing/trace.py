"""Trace: the execution history graph of one distributed request.

A trace combines the spans collected from every microservice instance that
participated in serving one user request into a tree (the execution history
graph of Definition 2.2).  The critical-path extractor operates on this
structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.tracing.span import Span, SpanKind


class Trace:
    """Execution history graph of one request.

    Parameters
    ----------
    request_id:
        Identifier of the distributed request.
    request_type:
        Name of the request type (e.g. ``post-compose``); carried so the
        coordinator can group traces per request type for SLO accounting.
    """

    __slots__ = (
        "request_id",
        "request_type",
        "tenant",
        "_spans",
        "_children",
        "arrival_time",
        "completion_time",
        "dropped",
    )

    def __init__(self, request_id: str, request_type: str, tenant: Optional[str] = None) -> None:
        self.request_id = request_id
        self.request_type = request_type
        #: Tenant that issued the request (None when untenanted).
        self.tenant = tenant
        self._spans: Dict[int, Span] = {}
        self._children: Dict[Optional[int], List[int]] = {}
        self.arrival_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.dropped = False

    # --------------------------------------------------------------- building
    def add_span(self, span: Span) -> Span:
        """Add a span to the trace and register it under its parent."""
        if span.request_id != self.request_id:
            raise ValueError(
                f"span belongs to request {span.request_id!r}, trace is {self.request_id!r}"
            )
        self._spans[span.span_id] = span
        self._children.setdefault(span.parent_id, []).append(span.span_id)
        return span

    def mark_complete(self, completion_time: float) -> None:
        """Record end-to-end completion (the Service Response to the client)."""
        self.completion_time = completion_time

    def mark_dropped(self) -> None:
        """Record that this request was dropped (queue saturation)."""
        self.dropped = True

    # ---------------------------------------------------------------- queries
    @property
    def spans(self) -> List[Span]:
        """All spans, ordered by enqueue time then id."""
        return sorted(self._spans.values(), key=lambda s: (s.enqueue_time, s.span_id))

    def span(self, span_id: int) -> Span:
        return self._spans[span_id]

    @property
    def root(self) -> Optional[Span]:
        """The root span (the frontend's span), or None for an empty trace."""
        roots = self._children.get(None, [])
        if not roots:
            return None
        return self._spans[roots[0]]

    def children_of(self, span: Span) -> List[Span]:
        """Child spans of ``span``, ordered by enqueue time."""
        child_ids = self._children.get(span.span_id, [])
        children = [self._spans[cid] for cid in child_ids]
        return sorted(children, key=lambda s: (s.enqueue_time, s.span_id))

    def foreground_children_of(self, span: Span) -> List[Span]:
        """Children excluding background workflows (not part of any CP)."""
        return [child for child in self.children_of(span) if child.kind is not SpanKind.BACKGROUND]

    @property
    def end_to_end_latency(self) -> float:
        """End-to-end latency in seconds (None-safe: 0 when incomplete)."""
        if self.arrival_time is None:
            return 0.0
        end = self.completion_time
        if end is None:
            end = max((span.end_time for span in self._spans.values()), default=self.arrival_time)
        return max(0.0, end - self.arrival_time)

    @property
    def end_to_end_latency_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.end_to_end_latency * 1000.0

    @property
    def is_complete(self) -> bool:
        """Whether the response has been recorded."""
        return self.completion_time is not None and not self.dropped

    def services(self) -> List[str]:
        """Unique service names appearing in the trace."""
        seen: List[str] = []
        for span in self.spans:
            if span.service not in seen:
                seen.append(span.service)
        return seen

    def instances(self) -> List[str]:
        """Unique instance names appearing in the trace."""
        seen: List[str] = []
        for span in self.spans:
            if span.instance not in seen:
                seen.append(span.instance)
        return seen

    def latency_of_service(self, service: str) -> float:
        """Total sojourn time (ms) spent in a given service for this request."""
        return sum(span.sojourn_time_ms for span in self._spans.values() if span.service == service)

    def to_graph(self) -> nx.DiGraph:
        """Export as a networkx DiGraph (parent -> child edges)."""
        graph = nx.DiGraph()
        for span in self._spans.values():
            graph.add_node(
                span.span_id,
                service=span.service,
                instance=span.instance,
                kind=span.kind.value,
                sojourn_ms=span.sojourn_time_ms,
            )
        for parent_id, child_ids in self._children.items():
            if parent_id is None:
                continue
            for child_id in child_ids:
                graph.add_edge(parent_id, child_id)
        return graph

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(request={self.request_id!r}, type={self.request_type!r}, "
            f"spans={len(self._spans)}, latency={self.end_to_end_latency_ms:.1f}ms)"
        )
