"""Tracing Coordinator.

The coordinator (module 1 in the paper's Fig. 6 architecture) is the single
collection point for spans and telemetry: application runtimes report spans
as they complete, the telemetry collector reports per-container samples,
and the Extractor / RL agent query the coordinator for recent traces,
latency distributions, SLO-violation status, and workload statistics.

Like the telemetry collector, the coordinator runs in one of two modes:

* ``"raw"`` (historical) — every trace is retained up to the FIFO store
  capacity and windowed statistics are recomputed from the retained traces
  on every query.
* ``"sketch"`` — constant-memory: windowed latency quantiles come from
  per-request-type ring-buffer log-histograms, arrival rates and request
  composition from ring-buffer counters, and the Extractor's per-instance
  features (relative importance, congestion intensity) from per-instance
  windowed co-moments and sojourn histograms, all fed incrementally as
  traces finish.  The trace store switches to reservoir retention, keeping
  a deterministic uniform sample of finished traces for structural queries
  (critical paths) plus a run-level mergeable latency digest for
  cross-shard aggregation.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.telemetry import TelemetryCollector
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG
from repro.telemetry.digest import TelemetryDigest
from repro.telemetry.reservoir import ReservoirSampler
from repro.telemetry.window import (
    WindowedCoMoments,
    WindowedCounter,
    WindowedHistogram,
)
from repro.tracing.span import Span
from repro.tracing.store import TraceStore
from repro.tracing.trace import Trace

#: Traces kept by the reservoir in sketch mode.  Sized so the reservoir
#: — the one sketch-mode structure whose footprint is per-trace, not
#: O(1) — stays a small constant multiple of the sketches themselves
#: while leaving localization windows ~100 traces to extract critical
#: paths from (an 8 s window at 40 rps offers ~320; a uniform sample
#: of a 4-window campaign retains ~a third of them).
DEFAULT_RESERVOIR_CAPACITY = 512

#: Ring geometry for windowed latency / arrival sketches: 0.5 s buckets ×
#: 256 slots = 128 s of history, covering every windowed query in the tree.
_LATENCY_BUCKET_S = 0.5
_LATENCY_BUCKETS = 256

#: Per-instance feature sketches use coarser buckets (windows are >= 5 s)
#: and a shorter 32 s horizon: localization windows are 8-10 s, and the
#: per-instance rings are the sketch layer's largest fixed cost (one
#: histogram per live slot per instance), so their horizon is the knob
#: that keeps the fleet-wide constant footprint small.
_INSTANCE_BUCKET_S = 1.0
_INSTANCE_BUCKETS = 32


class _InstanceSketch:
    """Windowed per-instance feature state (sketch mode only)."""

    __slots__ = ("service", "sojourn", "comoments")

    def __init__(self, service: str) -> None:
        self.service = service
        #: Per-span sojourn times (ms) — congestion intensity (q99/q50).
        self.sojourn = WindowedHistogram(
            bucket_s=_INSTANCE_BUCKET_S, buckets=_INSTANCE_BUCKETS
        )
        #: (per-trace instance total sojourn, trace e2e latency) pairs —
        #: relative importance via incremental Pearson correlation.
        self.comoments = WindowedCoMoments(
            bucket_s=_INSTANCE_BUCKET_S, buckets=_INSTANCE_BUCKETS
        )


class TracingCoordinator:
    """Collects traces + telemetry and answers the Extractor's queries.

    Parameters
    ----------
    engine:
        Shared simulation engine (provides the clock for windowed queries).
    telemetry:
        Optional telemetry collector to expose alongside traces.
    store_capacity:
        Bound on the number of retained traces (FIFO mode).
    tenant:
        Optional tenant identity.  In a multi-tenant harness each tenant
        gets its own coordinator over the shared engine, so the coordinator
        only ever sees (and tags) its tenant's traces — SLO accounting,
        arrival-rate estimation, and the Extractor's queries are therefore
        per-tenant by construction while telemetry stays shared.
    telemetry_mode:
        ``"raw"`` (historical; the default for direct construction) or
        ``"sketch"`` (constant-memory windowed sketches + reservoir trace
        retention).  The experiment harness selects this from the spec.
    rng:
        Seeded RNG providing the ``"trace-reservoir"`` substream for
        deterministic reservoir retention (sketch mode).  Substreams are
        independent, so drawing from it perturbs no other stream.
    reservoir_capacity:
        Traces kept by the reservoir in sketch mode.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        telemetry: Optional[TelemetryCollector] = None,
        store_capacity: int = 50_000,
        tenant: Optional[str] = None,
        telemetry_mode: str = "raw",
        rng: Optional[SeededRNG] = None,
        reservoir_capacity: int = DEFAULT_RESERVOIR_CAPACITY,
    ) -> None:
        if telemetry_mode not in ("raw", "sketch"):
            raise ValueError(f"unknown telemetry mode: {telemetry_mode!r}")
        self.engine = engine
        self.telemetry = telemetry
        self.tenant = tenant
        self.telemetry_mode = telemetry_mode
        if telemetry_mode == "sketch":
            cursor = (rng if rng is not None else SeededRNG(0)).cursor("trace-reservoir")
            self.store = TraceStore(
                capacity=store_capacity,
                retention="reservoir",
                sampler=ReservoirSampler(reservoir_capacity, cursor),
            )
            self._latency_sketch: Dict[str, WindowedHistogram] = {}
            self._latency_all = WindowedHistogram(
                bucket_s=_LATENCY_BUCKET_S, buckets=_LATENCY_BUCKETS
            )
            self._arrival_sketch: Dict[str, WindowedCounter] = {}
            self._instance_sketch: Dict[str, _InstanceSketch] = {}
            self._digest: Optional[TelemetryDigest] = TelemetryDigest()
        else:
            self.store = TraceStore(capacity=store_capacity)
            self._digest = None
        #: SLO latency per request type (ms); registered by the runtime.
        self.slo_latency_ms: Dict[str, float] = {}
        #: Service names each request type's call plan actually touches
        #: (when registered), letting controllers resolve per-instance SLOs
        #: from the requests routed through the instance's service.
        self.slo_request_services: Dict[str, Tuple[str, ...]] = {}
        #: Completion timestamps per request type, for arrival-rate estimation
        #: (raw mode; sketch mode uses ring counters instead).
        self._arrivals: Deque[Tuple[float, str]] = deque(maxlen=100_000)
        #: Hooks invoked with each trace as it finishes (completes or drops).
        #: Streaming observers (e.g. the harness's SLO accounting) use these
        #: instead of scanning the bounded store after the fact, so traces
        #: evicted from the store are still accounted.  Dispatch iterates a
        #: tuple snapshot rebuilt on add/remove, so the per-trace hot path
        #: never copies the hook list.
        self._completion_hooks: List[Callable[[Trace], None]] = []
        self._completion_hooks_snapshot: Tuple[Callable[[Trace], None], ...] = ()

    # --------------------------------------------------------------- ingest
    def register_slo(
        self,
        request_type: str,
        slo_latency_ms: float,
        services: Optional[Sequence[str]] = None,
    ) -> None:
        """Register the latency SLO for one request type.

        ``services`` optionally names the services the request type's call
        plan traverses (see :meth:`services_for_request_type`).
        """
        self.slo_latency_ms[request_type] = float(slo_latency_ms)
        if services is not None:
            self.slo_request_services[request_type] = tuple(services)

    def services_for_request_type(self, request_type: str) -> Tuple[str, ...]:
        """Services the request type routes through (empty if unregistered)."""
        return self.slo_request_services.get(request_type, ())

    def begin_trace(self, request_id: str, request_type: str, arrival_time: float) -> Trace:
        """Create a trace (tagged with this coordinator's tenant, if any)."""
        trace = Trace(request_id, request_type, tenant=self.tenant)
        trace.arrival_time = arrival_time
        self.store.add(trace)
        if self.telemetry_mode == "sketch":
            counter = self._arrival_sketch.get(request_type)
            if counter is None:
                counter = self._arrival_sketch[request_type] = WindowedCounter(
                    bucket_s=_LATENCY_BUCKET_S, buckets=_LATENCY_BUCKETS
                )
            counter.add(arrival_time)
        else:
            self._arrivals.append((arrival_time, request_type))
        return trace

    def record_span(self, trace: Trace, span: Span) -> None:
        """Attach a completed span to its trace."""
        trace.add_span(span)

    def complete_trace(self, trace: Trace, completion_time: float) -> None:
        """Mark the request's response as sent to the client."""
        trace.mark_complete(completion_time)
        if self.telemetry_mode == "sketch":
            self._sketch_completion(trace, completion_time)
        self.store.note_finished(trace)
        self._fire_completion(trace)

    def drop_trace(self, trace: Trace) -> None:
        """Mark the request as dropped."""
        trace.mark_dropped()
        if self._digest is not None:
            self._digest.observe_drop()
        self.store.note_finished(trace)
        self._fire_completion(trace)

    def _sketch_completion(self, trace: Trace, completion_time: float) -> None:
        """Fold one completed trace into the windowed sketches and digest."""
        latency_ms = trace.end_to_end_latency_ms
        request_type = trace.request_type
        histogram = self._latency_sketch.get(request_type)
        if histogram is None:
            histogram = self._latency_sketch[request_type] = WindowedHistogram(
                bucket_s=_LATENCY_BUCKET_S, buckets=_LATENCY_BUCKETS
            )
        histogram.add(completion_time, latency_ms)
        self._latency_all.add(completion_time, latency_ms)
        self._digest.observe_completion(request_type, latency_ms)
        sketches = self._instance_sketch
        per_instance_ms: Dict[str, float] = {}
        for span in trace._spans.values():  # unordered walk; sums only
            sojourn_ms = span.sojourn_time_ms
            instance = span.instance
            sketch = sketches.get(instance)
            if sketch is None:
                sketch = sketches[instance] = _InstanceSketch(span.service)
            sketch.sojourn.add(completion_time, sojourn_ms)
            per_instance_ms[instance] = per_instance_ms.get(instance, 0.0) + sojourn_ms
        for instance, total_ms in per_instance_ms.items():
            sketches[instance].comoments.add(completion_time, total_ms, latency_ms)

    # ------------------------------------------------------ completion hooks
    def add_completion_hook(self, hook: Callable[[Trace], None]) -> None:
        """Register ``hook`` to be called with every finishing trace.

        The hook fires on both completion and drop; a trace that is dropped
        mid-flight and later completes fires once per event, so observers
        that must count each request exactly once should de-duplicate by
        ``trace.request_id``.
        """
        self._completion_hooks.append(hook)
        self._completion_hooks_snapshot = tuple(self._completion_hooks)

    def remove_completion_hook(self, hook: Callable[[Trace], None]) -> None:
        """Unregister a previously added completion hook (no-op if absent)."""
        if hook in self._completion_hooks:
            self._completion_hooks.remove(hook)
        self._completion_hooks_snapshot = tuple(self._completion_hooks)

    def _fire_completion(self, trace: Trace) -> None:
        for hook in self._completion_hooks_snapshot:
            hook(trace)

    # ----------------------------------------------------------------- stats
    def recent_traces(
        self,
        window_s: float,
        request_type: Optional[str] = None,
    ) -> List[Trace]:
        """Completed traces that arrived in the last ``window_s`` seconds.

        In sketch mode this is the reservoir-retained subset — a uniform
        sample of the run's finished traces restricted to the window — so
        structural consumers (critical paths) see representative traces
        while scalar statistics come from the sketches.
        """
        since = self.engine.now - window_s
        return self.store.completed_traces(request_type=request_type, since=since)

    def latency_percentile_ms(
        self, percentile: float, window_s: float, request_type: Optional[str] = None
    ) -> float:
        """Latency percentile (ms) over the recent window (0 when empty)."""
        if self.telemetry_mode == "sketch":
            if request_type is None:
                histogram = self._latency_all
            else:
                histogram = self._latency_sketch.get(request_type)
                if histogram is None:
                    return 0.0
            return histogram.quantile(percentile, self.engine.now, window_s)
        latencies = [t.end_to_end_latency_ms for t in self.recent_traces(window_s, request_type)]
        if not latencies:
            return 0.0
        return float(np.percentile(latencies, percentile))

    def arrival_rate(self, window_s: float, request_type: Optional[str] = None) -> float:
        """Request arrival rate (requests/second) over the recent window."""
        if window_s <= 0:
            return 0.0
        if self.telemetry_mode == "sketch":
            now = self.engine.now
            if request_type is not None:
                counter = self._arrival_sketch.get(request_type)
                count = counter.window_count(now, window_s) if counter is not None else 0
            else:
                count = sum(
                    counter.window_count(now, window_s)
                    for counter in self._arrival_sketch.values()
                )
            return count / window_s
        since = self.engine.now - window_s
        count = sum(
            1
            for time, rtype in self._arrivals
            if time >= since and (request_type is None or rtype == request_type)
        )
        return count / window_s

    def request_composition(self, window_s: float) -> Dict[str, float]:
        """Fraction of arrivals per request type over the recent window."""
        since = self.engine.now - window_s
        counts: Dict[str, int] = defaultdict(int)
        if self.telemetry_mode == "sketch":
            now = self.engine.now
            for rtype, counter in self._arrival_sketch.items():
                count = counter.window_count(now, window_s)
                if count:
                    counts[rtype] = count
        else:
            for time, rtype in self._arrivals:
                if time >= since:
                    counts[rtype] += 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {rtype: count / total for rtype, count in sorted(counts.items())}

    # ------------------------------------------------------- SLO accounting
    def slo_violations(self, window_s: float) -> List[Trace]:
        """Completed traces in the window whose latency exceeds their SLO."""
        violations: List[Trace] = []
        for trace in self.recent_traces(window_s):
            slo = self.slo_latency_ms.get(trace.request_type)
            if slo is not None and trace.end_to_end_latency_ms > slo:
                violations.append(trace)
        return violations

    def slo_violation_ratio(self, window_s: float) -> float:
        """Fraction of recent completed requests that violated their SLO."""
        traces = self.recent_traces(window_s)
        if not traces:
            return 0.0
        return len(self.slo_violations(window_s)) / len(traces)

    def has_slo_violation(self, window_s: float, percentile: float = 99.0) -> bool:
        """Detection check: does the windowed tail latency exceed any SLO?

        The paper's Extractor is triggered when SLO violations are detected;
        we use the per-request-type tail latency versus the SLO.
        """
        for request_type, slo in self.slo_latency_ms.items():
            tail = self.latency_percentile_ms(percentile, window_s, request_type)
            if tail > slo:
                return True
        return False

    def per_service_latencies_ms(
        self, window_s: float, request_type: Optional[str] = None
    ) -> Dict[str, List[float]]:
        """Per-service sojourn-time samples (ms) from recent traces."""
        result: Dict[str, List[float]] = defaultdict(list)
        for trace in self.recent_traces(window_s, request_type):
            for span in trace.spans:
                result[span.service].append(span.sojourn_time_ms)
        return dict(result)

    def per_instance_latencies_ms(
        self, window_s: float, request_type: Optional[str] = None
    ) -> Dict[str, List[float]]:
        """Per-instance sojourn-time samples (ms) from recent traces."""
        result: Dict[str, List[float]] = defaultdict(list)
        for trace in self.recent_traces(window_s, request_type):
            for span in trace.spans:
                result[span.instance].append(span.sojourn_time_ms)
        return dict(result)

    # -------------------------------------------------------- sketch queries
    def instance_features(
        self,
        window_s: float,
        instances: Optional[List[str]] = None,
        min_samples: int = 5,
    ):
        """Per-instance SVM features from the windowed sketches (sketch mode).

        Returns a list of
        :class:`~repro.core.critical_component.InstanceFeatures` — relative
        importance from the windowed co-moments' Pearson correlation and
        congestion intensity as the windowed sojourn q99/q50 — for every
        instance (or the given subset) with at least ``min_samples`` traces
        in the window.
        """
        from repro.core.critical_component import InstanceFeatures

        if self.telemetry_mode != "sketch":
            raise RuntimeError("instance_features requires sketch telemetry mode")
        now = self.engine.now
        names = instances if instances is not None else sorted(self._instance_sketch)
        features: List[InstanceFeatures] = []
        for instance in names:
            sketch = self._instance_sketch.get(instance)
            if sketch is None:
                continue
            samples = sketch.comoments.window_count(now, window_s)
            if samples < min_samples:
                continue
            median, tail = sketch.sojourn.quantiles((50.0, 99.0), now, window_s)
            intensity = tail / median if median > 0.0 else 0.0
            features.append(
                InstanceFeatures(
                    instance=instance,
                    service=sketch.service,
                    relative_importance=sketch.comoments.pearson(now, window_s),
                    congestion_intensity=intensity,
                    sample_count=samples,
                )
            )
        return features

    def telemetry_digest(self) -> Optional[TelemetryDigest]:
        """The run-level mergeable latency digest (None in raw mode)."""
        return self._digest

    # ---------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Retained trace + sketch footprint of this coordinator."""
        from repro.telemetry.memory import deep_sizeof

        roots: List[object] = [self._arrivals]
        if self.telemetry_mode == "sketch":
            roots.extend(
                (
                    self._latency_sketch,
                    self._latency_all,
                    self._arrival_sketch,
                    self._instance_sketch,
                    self._digest,
                )
            )
        return self.store.memory_bytes() + deep_sizeof(tuple(roots))
