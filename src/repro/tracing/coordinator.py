"""Tracing Coordinator.

The coordinator (module 1 in the paper's Fig. 6 architecture) is the single
collection point for spans and telemetry: application runtimes report spans
as they complete, the telemetry collector reports per-container samples,
and the Extractor / RL agent query the coordinator for recent traces,
latency distributions, SLO-violation status, and workload statistics.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.telemetry import TelemetryCollector
from repro.sim.engine import SimulationEngine
from repro.tracing.span import Span
from repro.tracing.store import TraceStore
from repro.tracing.trace import Trace


class TracingCoordinator:
    """Collects traces + telemetry and answers the Extractor's queries.

    Parameters
    ----------
    engine:
        Shared simulation engine (provides the clock for windowed queries).
    telemetry:
        Optional telemetry collector to expose alongside traces.
    store_capacity:
        Bound on the number of retained traces.
    tenant:
        Optional tenant identity.  In a multi-tenant harness each tenant
        gets its own coordinator over the shared engine, so the coordinator
        only ever sees (and tags) its tenant's traces — SLO accounting,
        arrival-rate estimation, and the Extractor's queries are therefore
        per-tenant by construction while telemetry stays shared.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        telemetry: Optional[TelemetryCollector] = None,
        store_capacity: int = 50_000,
        tenant: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.telemetry = telemetry
        self.tenant = tenant
        self.store = TraceStore(capacity=store_capacity)
        #: SLO latency per request type (ms); registered by the runtime.
        self.slo_latency_ms: Dict[str, float] = {}
        #: Completion timestamps per request type, for arrival-rate estimation.
        self._arrivals: Deque[Tuple[float, str]] = deque(maxlen=100_000)
        #: Hooks invoked with each trace as it finishes (completes or drops).
        #: Streaming observers (e.g. the harness's SLO accounting) use these
        #: instead of scanning the bounded store after the fact, so traces
        #: evicted from the store are still accounted.  Dispatch iterates a
        #: tuple snapshot rebuilt on add/remove, so the per-trace hot path
        #: never copies the hook list.
        self._completion_hooks: List[Callable[[Trace], None]] = []
        self._completion_hooks_snapshot: Tuple[Callable[[Trace], None], ...] = ()

    # --------------------------------------------------------------- ingest
    def register_slo(self, request_type: str, slo_latency_ms: float) -> None:
        """Register the latency SLO for one request type."""
        self.slo_latency_ms[request_type] = float(slo_latency_ms)

    def begin_trace(self, request_id: str, request_type: str, arrival_time: float) -> Trace:
        """Create a trace (tagged with this coordinator's tenant, if any)."""
        trace = Trace(request_id, request_type, tenant=self.tenant)
        trace.arrival_time = arrival_time
        self.store.add(trace)
        self._arrivals.append((arrival_time, request_type))
        return trace

    def record_span(self, trace: Trace, span: Span) -> None:
        """Attach a completed span to its trace."""
        trace.add_span(span)

    def complete_trace(self, trace: Trace, completion_time: float) -> None:
        """Mark the request's response as sent to the client."""
        trace.mark_complete(completion_time)
        self._fire_completion(trace)

    def drop_trace(self, trace: Trace) -> None:
        """Mark the request as dropped."""
        trace.mark_dropped()
        self._fire_completion(trace)

    # ------------------------------------------------------ completion hooks
    def add_completion_hook(self, hook: Callable[[Trace], None]) -> None:
        """Register ``hook`` to be called with every finishing trace.

        The hook fires on both completion and drop; a trace that is dropped
        mid-flight and later completes fires once per event, so observers
        that must count each request exactly once should de-duplicate by
        ``trace.request_id``.
        """
        self._completion_hooks.append(hook)
        self._completion_hooks_snapshot = tuple(self._completion_hooks)

    def remove_completion_hook(self, hook: Callable[[Trace], None]) -> None:
        """Unregister a previously added completion hook (no-op if absent)."""
        if hook in self._completion_hooks:
            self._completion_hooks.remove(hook)
        self._completion_hooks_snapshot = tuple(self._completion_hooks)

    def _fire_completion(self, trace: Trace) -> None:
        for hook in self._completion_hooks_snapshot:
            hook(trace)

    # ----------------------------------------------------------------- stats
    def recent_traces(
        self,
        window_s: float,
        request_type: Optional[str] = None,
    ) -> List[Trace]:
        """Completed traces that arrived in the last ``window_s`` seconds."""
        since = self.engine.now - window_s
        return self.store.completed_traces(request_type=request_type, since=since)

    def latency_percentile_ms(
        self, percentile: float, window_s: float, request_type: Optional[str] = None
    ) -> float:
        """Latency percentile (ms) over the recent window (0 when empty)."""
        latencies = [t.end_to_end_latency_ms for t in self.recent_traces(window_s, request_type)]
        if not latencies:
            return 0.0
        return float(np.percentile(latencies, percentile))

    def arrival_rate(self, window_s: float, request_type: Optional[str] = None) -> float:
        """Request arrival rate (requests/second) over the recent window."""
        since = self.engine.now - window_s
        count = sum(
            1
            for time, rtype in self._arrivals
            if time >= since and (request_type is None or rtype == request_type)
        )
        return count / window_s if window_s > 0 else 0.0

    def request_composition(self, window_s: float) -> Dict[str, float]:
        """Fraction of arrivals per request type over the recent window."""
        since = self.engine.now - window_s
        counts: Dict[str, int] = defaultdict(int)
        for time, rtype in self._arrivals:
            if time >= since:
                counts[rtype] += 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {rtype: count / total for rtype, count in sorted(counts.items())}

    # ------------------------------------------------------- SLO accounting
    def slo_violations(self, window_s: float) -> List[Trace]:
        """Completed traces in the window whose latency exceeds their SLO."""
        violations: List[Trace] = []
        for trace in self.recent_traces(window_s):
            slo = self.slo_latency_ms.get(trace.request_type)
            if slo is not None and trace.end_to_end_latency_ms > slo:
                violations.append(trace)
        return violations

    def slo_violation_ratio(self, window_s: float) -> float:
        """Fraction of recent completed requests that violated their SLO."""
        traces = self.recent_traces(window_s)
        if not traces:
            return 0.0
        return len(self.slo_violations(window_s)) / len(traces)

    def has_slo_violation(self, window_s: float, percentile: float = 99.0) -> bool:
        """Detection check: does the windowed tail latency exceed any SLO?

        The paper's Extractor is triggered when SLO violations are detected;
        we use the per-request-type tail latency versus the SLO.
        """
        for request_type, slo in self.slo_latency_ms.items():
            tail = self.latency_percentile_ms(percentile, window_s, request_type)
            if tail > slo:
                return True
        return False

    def per_service_latencies_ms(
        self, window_s: float, request_type: Optional[str] = None
    ) -> Dict[str, List[float]]:
        """Per-service sojourn-time samples (ms) from recent traces."""
        result: Dict[str, List[float]] = defaultdict(list)
        for trace in self.recent_traces(window_s, request_type):
            for span in trace.spans:
                result[span.service].append(span.sojourn_time_ms)
        return dict(result)

    def per_instance_latencies_ms(
        self, window_s: float, request_type: Optional[str] = None
    ) -> Dict[str, List[float]]:
        """Per-instance sojourn-time samples (ms) from recent traces."""
        result: Dict[str, List[float]] = defaultdict(list)
        for trace in self.recent_traces(window_s, request_type):
            for span in trace.spans:
                result[span.instance].append(span.sojourn_time_ms)
        return dict(result)
