"""Distributed tracing substrate (the Jaeger/Zipkin + Neo4j substitute).

Provides the span data model, per-request execution history graphs
(traces), an in-memory graph store, and the Tracing Coordinator that the
FIRM Extractor queries for critical-path and critical-component analysis.
"""

from repro.tracing.span import Span, SpanKind
from repro.tracing.trace import Trace
from repro.tracing.store import TraceStore
from repro.tracing.coordinator import TracingCoordinator

__all__ = ["Span", "SpanKind", "Trace", "TraceStore", "TracingCoordinator"]
