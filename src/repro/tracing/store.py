"""In-memory trace store (the graph-database substitute).

The paper stores execution history graphs in Neo4j; here a bounded
in-memory store indexes traces by request id, request type, and completion
time so the Extractor can query "recent traces of type X" efficiently.

Retention comes in two flavours:

* ``"fifo"`` (historical) — the oldest traces are evicted once the
  capacity bound is exceeded.  Eviction is O(1) amortized: the per-type id
  indexes are deques that accumulate stale ids and are compacted lazily
  once more than half an index is stale, instead of the old O(n)
  ``list.remove`` per evicted trace.
* ``"reservoir"`` — in-flight traces are always retained; *finished*
  traces (completed or dropped) pass through a SeededRNG-driven
  :class:`~repro.telemetry.reservoir.ReservoirSampler`, so the store keeps
  a uniform random sample of the whole run's traces in a small fixed
  budget.  This is the sketch-mode trace pipeline: windowed aggregates
  (latency quantiles, drop rates) come from the coordinator's sketches,
  and the reservoir exists for structural queries — critical paths,
  execution-graph inspection — that need whole traces.

Dropped-request accounting is incremental in both modes: a sorted index of
dropped-trace arrival times answers ``dropped_count(since)`` by bisection
instead of scanning every stored trace per call.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict, defaultdict
from typing import Deque, Dict, List, Optional, Set

from collections import deque

from repro.telemetry.reservoir import ReservoirSampler
from repro.tracing.trace import Trace

#: Stale ids tolerated in a per-type index before it is worth compacting.
_COMPACT_MIN_STALE = 32


class TraceStore:
    """Bounded, time-indexed store of completed and in-flight traces.

    Parameters
    ----------
    capacity:
        Maximum number of traces retained in fifo mode; the oldest traces
        are evicted first when the bound is exceeded.  Ignored in
        reservoir mode, where the reservoir capacity (plus in-flight
        traces) is the bound.
    retention:
        ``"fifo"`` (historical) or ``"reservoir"`` (uniform sample of
        finished traces; requires ``sampler``).
    sampler:
        The reservoir deciding which finished traces are retained.  Its
        randomness must come from a named SeededRNG substream so retention
        is deterministic per seed.
    """

    def __init__(
        self,
        capacity: int = 50_000,
        retention: str = "fifo",
        sampler: Optional[ReservoirSampler] = None,
    ) -> None:
        if retention not in ("fifo", "reservoir"):
            raise ValueError(f"unknown retention policy: {retention!r}")
        if retention == "reservoir" and sampler is None:
            raise ValueError("reservoir retention requires a sampler")
        self.capacity = int(capacity)
        self.retention = retention
        self.sampler = sampler
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self._by_type: Dict[str, Deque[str]] = defaultdict(deque)
        self._stale_by_type: Dict[str, int] = defaultdict(int)
        #: Request ids of stored traces known to be dropped, plus their
        #: arrival times sorted for bisected windowed counts.
        self._dropped_ids: Set[str] = set()
        self._dropped_arrivals: List[float] = []

    # --------------------------------------------------------------- mutation
    def add(self, trace: Trace) -> None:
        """Insert a trace (idempotent for the same request id)."""
        if trace.request_id in self._traces:
            return
        self._traces[trace.request_id] = trace
        self._by_type[trace.request_type].append(trace.request_id)
        if trace.dropped:
            self._record_drop(trace)
        if self.retention == "fifo":
            self._evict_if_needed()

    def note_finished(self, trace: Trace) -> None:
        """Tell the store a trace finished (completed or dropped).

        The coordinator calls this exactly once per trace.  It keeps the
        dropped-count index current and, in reservoir mode, offers the
        finished trace to the sampler — discarding whichever trace the
        reservoir no longer holds.
        """
        if trace.dropped:
            self._record_drop(trace)
        if self.retention != "reservoir":
            return
        displaced = self.sampler.offer(trace.request_id)
        if displaced is not None:
            self._discard(displaced)

    def _record_drop(self, trace: Trace) -> None:
        if trace.request_id in self._dropped_ids:
            return
        self._dropped_ids.add(trace.request_id)
        insort(self._dropped_arrivals, trace.arrival_time or 0.0)

    def _forget_drop(self, trace: Trace) -> None:
        if trace.request_id not in self._dropped_ids:
            return
        self._dropped_ids.discard(trace.request_id)
        arrival = trace.arrival_time or 0.0
        index = bisect_left(self._dropped_arrivals, arrival)
        del self._dropped_arrivals[index]

    def _discard(self, request_id: str) -> None:
        """Drop one trace from the store, leaving its index id stale."""
        trace = self._traces.pop(request_id, None)
        if trace is None:
            return
        self._forget_drop(trace)
        self._mark_stale(trace.request_type)

    def _mark_stale(self, request_type: str) -> None:
        self._stale_by_type[request_type] += 1
        stale = self._stale_by_type[request_type]
        ids = self._by_type[request_type]
        if stale >= _COMPACT_MIN_STALE and stale * 2 > len(ids):
            live = self._traces
            self._by_type[request_type] = deque(
                rid for rid in ids if rid in live
            )
            self._stale_by_type[request_type] = 0

    def _evict_if_needed(self) -> None:
        while len(self._traces) > self.capacity:
            request_id, trace = self._traces.popitem(last=False)
            self._forget_drop(trace)
            # FIFO eviction follows insertion order, so the evicted id sits
            # at the head of its type index and pops in O(1); the stale
            # counter is only a fallback for mixed retention histories.
            ids = self._by_type[trace.request_type]
            if ids and ids[0] == request_id:
                ids.popleft()
            else:
                self._mark_stale(trace.request_type)

    # ---------------------------------------------------------------- queries
    def get(self, request_id: str) -> Optional[Trace]:
        """Fetch a trace by request id (None when absent or evicted)."""
        return self._traces.get(request_id)

    def __len__(self) -> int:
        return len(self._traces)

    def all_traces(self) -> List[Trace]:
        """Every stored trace, oldest first."""
        return list(self._traces.values())

    def completed_traces(
        self,
        request_type: Optional[str] = None,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Trace]:
        """Completed traces, optionally filtered by type and arrival time."""
        if request_type is None:
            candidates = list(self._traces.values())
        else:
            traces = self._traces
            candidates = [
                traces[rid]
                for rid in self._by_type.get(request_type, ())
                if rid in traces
            ]
        selected = [
            trace
            for trace in candidates
            if trace.is_complete
            and (since is None or (trace.arrival_time or 0.0) >= since)
        ]
        if limit is not None:
            selected = selected[-limit:]
        return selected

    def dropped_count(self, since: Optional[float] = None) -> int:
        """Number of stored dropped requests (optionally arrivals >= since).

        Answered from the incrementally maintained drop index — O(1), or
        O(log drops) with a ``since`` bound — rather than a full scan.
        """
        if since is None:
            return len(self._dropped_ids)
        return len(self._dropped_arrivals) - bisect_left(self._dropped_arrivals, since)

    def request_types(self) -> List[str]:
        """Request types observed so far."""
        return sorted(self._by_type)

    def latencies_ms(
        self, request_type: Optional[str] = None, since: Optional[float] = None
    ) -> List[float]:
        """End-to-end latencies (ms) of completed traces matching the filter."""
        return [
            trace.end_to_end_latency_ms
            for trace in self.completed_traces(request_type=request_type, since=since)
        ]

    # ---------------------------------------------------------------- memory
    def memory_bytes(self) -> int:
        """Retained trace footprint (traces, spans, and indexes)."""
        from repro.telemetry.memory import deep_sizeof

        return deep_sizeof(
            (
                self._traces,
                self._by_type,
                self._dropped_ids,
                self._dropped_arrivals,
                self.sampler,
            )
        )
