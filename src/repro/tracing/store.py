"""In-memory trace store (the graph-database substitute).

The paper stores execution history graphs in Neo4j; here a bounded
in-memory store indexes traces by request id, request type, and completion
time so the Extractor can query "recent traces of type X" efficiently.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Dict, List, Optional

from repro.tracing.trace import Trace


class TraceStore:
    """Bounded, time-indexed store of completed and in-flight traces.

    Parameters
    ----------
    capacity:
        Maximum number of traces retained; the oldest completed traces are
        evicted first when the bound is exceeded.
    """

    def __init__(self, capacity: int = 50_000) -> None:
        self.capacity = int(capacity)
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self._by_type: Dict[str, List[str]] = defaultdict(list)

    # --------------------------------------------------------------- mutation
    def add(self, trace: Trace) -> None:
        """Insert a trace (idempotent for the same request id)."""
        if trace.request_id in self._traces:
            return
        self._traces[trace.request_id] = trace
        self._by_type[trace.request_type].append(trace.request_id)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._traces) > self.capacity:
            request_id, trace = self._traces.popitem(last=False)
            ids = self._by_type.get(trace.request_type)
            if ids and request_id in ids:
                ids.remove(request_id)

    # ---------------------------------------------------------------- queries
    def get(self, request_id: str) -> Optional[Trace]:
        """Fetch a trace by request id (None when absent or evicted)."""
        return self._traces.get(request_id)

    def __len__(self) -> int:
        return len(self._traces)

    def all_traces(self) -> List[Trace]:
        """Every stored trace, oldest first."""
        return list(self._traces.values())

    def completed_traces(
        self,
        request_type: Optional[str] = None,
        since: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[Trace]:
        """Completed traces, optionally filtered by type and arrival time."""
        if request_type is None:
            candidates = list(self._traces.values())
        else:
            candidates = [
                self._traces[rid]
                for rid in self._by_type.get(request_type, [])
                if rid in self._traces
            ]
        selected = [
            trace
            for trace in candidates
            if trace.is_complete
            and (since is None or (trace.arrival_time or 0.0) >= since)
        ]
        if limit is not None:
            selected = selected[-limit:]
        return selected

    def dropped_count(self, since: Optional[float] = None) -> int:
        """Number of dropped requests (optionally restricted to arrivals >= since)."""
        return sum(
            1
            for trace in self._traces.values()
            if trace.dropped and (since is None or (trace.arrival_time or 0.0) >= since)
        )

    def request_types(self) -> List[str]:
        """Request types observed so far."""
        return sorted(self._by_type)

    def latencies_ms(
        self, request_type: Optional[str] = None, since: Optional[float] = None
    ) -> List[float]:
        """End-to-end latencies (ms) of completed traces matching the filter."""
        return [
            trace.end_to_end_latency_ms
            for trace in self.completed_traces(request_type=request_type, since=since)
        ]
