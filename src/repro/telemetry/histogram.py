"""Fixed-geometric-bin log histogram: the *mergeable* quantile sketch.

Values are counted into bins whose edges grow geometrically by ``gamma``,
so a value is never misplaced by more than half a bin — a bounded
*relative* error of about ``sqrt(gamma) - 1`` on any quantile, at any
scale, with no per-sample retention.  The bins are sparse (a plain
``{bin_index: count}`` dict), so an idle stream costs nothing.

Because the state is a bag of integer counters keyed by a *fixed* bin
geometry, merging two histograms is bin-wise addition — exactly
associative and commutative on counts, min, and max (the float ``sum``
field is associative up to float rounding).  This is the primitive the
sharded engine's telemetry digests are built from: per-shard histograms
fold across shard boundaries in ascending shard-index order and the
result is independent of the grouping.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

#: Default geometric growth factor: quantile relative error ~ ±4%.
DEFAULT_GAMMA = 1.08

#: Default smallest resolvable value (milliseconds in latency use).
DEFAULT_MIN_VALUE = 0.01


class LogHistogram:
    """Sparse geometric-bin histogram with exactly-mergeable counts.

    Parameters
    ----------
    gamma:
        Bin-edge growth factor (> 1).  Bin ``i`` (for ``i >= 1``) covers
        ``[min_value * gamma**(i-1), min_value * gamma**i)``; bin 0
        collects everything at or below ``min_value`` (including zeros
        and negatives, which latency streams do not produce but telemetry
        glitches might).
    min_value:
        Lower resolution bound; values below it are indistinguishable.
    """

    __slots__ = ("gamma", "min_value", "_inv_log_gamma", "counts", "count",
                 "total", "min", "max")

    def __init__(
        self, gamma: float = DEFAULT_GAMMA, min_value: float = DEFAULT_MIN_VALUE
    ) -> None:
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.gamma = float(gamma)
        self.min_value = float(min_value)
        self._inv_log_gamma = 1.0 / math.log(self.gamma)
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------ feed
    def bin_index(self, x: float) -> int:
        """The bin a value falls into."""
        if x <= self.min_value:
            return 0
        return 1 + int(math.log(x / self.min_value) * self._inv_log_gamma)

    def add(self, x: float, weight: int = 1) -> None:
        """Count one observation (or ``weight`` identical ones)."""
        index = self.bin_index(x)
        self.counts[index] = self.counts.get(index, 0) + weight
        self.count += weight
        self.total += x * weight
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, values: Sequence[float]) -> None:
        """Count a batch of observations."""
        for value in values:
            self.add(value)

    # ----------------------------------------------------------------- query
    def bin_value(self, index: int) -> float:
        """Representative (geometric-midpoint) value of a bin."""
        if index <= 0:
            return self.min_value
        return self.min_value * self.gamma ** (index - 0.5)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (``q`` in percent, 0..100).

        Returns 0.0 for an empty histogram.  The answer is the
        representative value of the bin containing the target rank,
        clamped into the exact observed ``[min, max]`` envelope so the
        extremes never overshoot the data.
        """
        if self.count == 0:
            return 0.0
        rank = int(math.ceil(q / 100.0 * self.count))
        rank = min(max(rank, 1), self.count)
        cumulative = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= rank:
                return min(max(self.bin_value(index), self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    def mean(self) -> float:
        """Exact stream mean (the sum is tracked exactly, not binned)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    # ----------------------------------------------------------------- merge
    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram into this one (bin-wise addition).

        Both histograms must share the same bin geometry; merging is
        exactly associative and commutative on the integer state.
        """
        if other.gamma != self.gamma or other.min_value != self.min_value:
            raise ValueError("cannot merge histograms with different bin geometry")
        counts = self.counts
        for index, count in other.counts.items():
            counts[index] = counts.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def copy(self) -> "LogHistogram":
        """An independent copy (used when folding digests non-destructively)."""
        clone = LogHistogram(gamma=self.gamma, min_value=self.min_value)
        clone.counts = dict(self.counts)
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        return clone

    # --------------------------------------------------------------- pickling
    def __getstate__(self):
        return (self.gamma, self.min_value, self.counts, self.count,
                self.total, self.min, self.max)

    def __setstate__(self, state) -> None:
        (gamma, min_value, counts, count, total, minimum, maximum) = state
        self.gamma = gamma
        self.min_value = min_value
        self._inv_log_gamma = 1.0 / math.log(gamma)
        self.counts = counts
        self.count = count
        self.total = total
        self.min = minimum
        self.max = maximum

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogHistogram(count={self.count}, bins={len(self.counts)}, "
            f"p50={self.quantile(50.0):.3g}, p99={self.quantile(99.0):.3g})"
        )


def merge_histograms(histograms: Sequence[Optional[LogHistogram]]) -> Optional[LogHistogram]:
    """Non-destructive fold of histograms in the order given (None-safe)."""
    merged: Optional[LogHistogram] = None
    for histogram in histograms:
        if histogram is None:
            continue
        if merged is None:
            merged = histogram.copy()
        else:
            merged.merge(histogram)
    return merged
