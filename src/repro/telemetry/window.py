"""Fixed-size ring-buffer windowed statistics.

Every structure here follows one pattern: virtual time is divided into
``bucket_s``-wide buckets, a ring of ``buckets`` slots holds one
associative aggregate per bucket, and a slot is lazily reset when a new
bucket id hashes onto it — so updates are O(1), memory is O(buckets), and
a windowed query merges at most ``ceil(window / bucket_s) + 1`` slots.
Window edges are bucket-aligned: a query for the last ``duration_s``
seconds covers every bucket overlapping ``[now - duration_s, now]``, which
over-includes by up to one bucket width — the documented accuracy tradeoff
of sketch mode (raw mode keeps exact sample-level cutoffs).

Three aggregates cover every consumer:

* :class:`WindowedCounter` — per-bucket event counts (arrival rates and
  request composition);
* :class:`WindowedHistogram` — per-bucket sparse
  :class:`~repro.telemetry.histogram.LogHistogram` bins (windowed latency
  quantiles, congestion intensity);
* :class:`WindowedCoMoments` — per-bucket ``(n, Σx, Σy, Σxx, Σyy, Σxy)``
  so a windowed Pearson correlation (the extractor's relative-importance
  feature) is computed incrementally without retaining sample pairs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.telemetry.histogram import DEFAULT_GAMMA, DEFAULT_MIN_VALUE, LogHistogram


class _Ring:
    """Shared bucket-id arithmetic for the ring structures."""

    __slots__ = ("bucket_s", "buckets", "_ids")

    def __init__(self, bucket_s: float, buckets: int) -> None:
        if bucket_s <= 0:
            raise ValueError(f"bucket_s must be positive, got {bucket_s}")
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {buckets}")
        self.bucket_s = float(bucket_s)
        self.buckets = int(buckets)
        self._ids: List[int] = [-1] * self.buckets

    def _bucket_id(self, time_s: float) -> int:
        return int(time_s // self.bucket_s)

    def _window_ids(self, now: float, duration_s: float) -> range:
        """Bucket ids overlapping ``[now - duration_s, now]``, ring-clamped."""
        end = self._bucket_id(now)
        start = self._bucket_id(now - duration_s)
        start = max(start, end - self.buckets + 1)
        return range(start, end + 1)


class WindowedCounter(_Ring):
    """Ring-buffered event counts (arrival-rate and composition queries)."""

    __slots__ = ("_count",)

    def __init__(self, bucket_s: float = 0.5, buckets: int = 128) -> None:
        super().__init__(bucket_s, buckets)
        self._count = [0] * self.buckets

    def add(self, time_s: float, weight: int = 1) -> None:
        bucket = self._bucket_id(time_s)
        slot = bucket % self.buckets
        if self._ids[slot] != bucket:
            self._ids[slot] = bucket
            self._count[slot] = 0
        self._count[slot] += weight

    def window_count(self, now: float, duration_s: float) -> int:
        total = 0
        for bucket in self._window_ids(now, duration_s):
            slot = bucket % self.buckets
            if self._ids[slot] == bucket:
                total += self._count[slot]
        return total


class WindowedHistogram(_Ring):
    """Ring of sparse log-histogram bins: windowed quantiles in O(1) memory.

    Each bucket holds a sparse ``{bin_index: count}`` dict sharing one
    fixed bin geometry, so a windowed quantile merges a handful of small
    dicts and walks the combined bins — no sample retention, no per-query
    list rebuilds.
    """

    __slots__ = ("gamma", "min_value", "_inv_log_gamma", "_bins", "_count")

    def __init__(
        self,
        bucket_s: float = 1.0,
        buckets: int = 32,
        gamma: float = DEFAULT_GAMMA,
        min_value: float = DEFAULT_MIN_VALUE,
    ) -> None:
        super().__init__(bucket_s, buckets)
        if gamma <= 1.0:
            raise ValueError(f"gamma must be > 1, got {gamma}")
        self.gamma = float(gamma)
        self.min_value = float(min_value)
        self._inv_log_gamma = 1.0 / math.log(self.gamma)
        self._bins: List[Dict[int, int]] = [dict() for _ in range(self.buckets)]
        self._count = [0] * self.buckets

    def add(self, time_s: float, x: float) -> None:
        bucket = self._bucket_id(time_s)
        slot = bucket % self.buckets
        if self._ids[slot] != bucket:
            self._ids[slot] = bucket
            self._bins[slot] = {}
            self._count[slot] = 0
        if x <= self.min_value:
            index = 0
        else:
            index = 1 + int(math.log(x / self.min_value) * self._inv_log_gamma)
        bins = self._bins[slot]
        bins[index] = bins.get(index, 0) + 1
        self._count[slot] += 1

    def window_count(self, now: float, duration_s: float) -> int:
        total = 0
        for bucket in self._window_ids(now, duration_s):
            slot = bucket % self.buckets
            if self._ids[slot] == bucket:
                total += self._count[slot]
        return total

    def _merged_window(self, now: float, duration_s: float) -> Tuple[Dict[int, int], int]:
        merged: Dict[int, int] = {}
        total = 0
        for bucket in self._window_ids(now, duration_s):
            slot = bucket % self.buckets
            if self._ids[slot] != bucket:
                continue
            total += self._count[slot]
            for index, count in self._bins[slot].items():
                merged[index] = merged.get(index, 0) + count
        return merged, total

    def _bin_value(self, index: int) -> float:
        if index <= 0:
            return self.min_value
        return self.min_value * self.gamma ** (index - 0.5)

    def quantile(self, q: float, now: float, duration_s: float) -> float:
        """Windowed nearest-rank quantile (``q`` in percent; 0.0 if empty)."""
        merged, total = self._merged_window(now, duration_s)
        if total == 0:
            return 0.0
        rank = int(math.ceil(q / 100.0 * total))
        rank = min(max(rank, 1), total)
        cumulative = 0
        for index in sorted(merged):
            cumulative += merged[index]
            if cumulative >= rank:
                return self._bin_value(index)
        return self._bin_value(max(merged))  # pragma: no cover - unreachable

    def quantiles(self, qs: Tuple[float, ...], now: float, duration_s: float) -> List[float]:
        """Several windowed quantiles from one merged bin walk."""
        merged, total = self._merged_window(now, duration_s)
        if total == 0:
            return [0.0 for _ in qs]
        ranks = [min(max(int(math.ceil(q / 100.0 * total)), 1), total) for q in qs]
        order = sorted(range(len(qs)), key=lambda i: ranks[i])
        answers = [0.0] * len(qs)
        cumulative = 0
        position = 0
        for index in sorted(merged):
            cumulative += merged[index]
            while position < len(order) and cumulative >= ranks[order[position]]:
                answers[order[position]] = self._bin_value(index)
                position += 1
            if position == len(order):
                break
        return answers

    def run_histogram(self) -> LogHistogram:
        """All currently retained buckets folded into one mergeable histogram."""
        folded = LogHistogram(gamma=self.gamma, min_value=self.min_value)
        for slot in range(self.buckets):
            if self._ids[slot] < 0:
                continue
            for index, count in self._bins[slot].items():
                folded.counts[index] = folded.counts.get(index, 0) + count
                folded.count += count
        return folded


class WindowedCoMoments(_Ring):
    """Ring-buffered bivariate co-moments for windowed Pearson correlation.

    Each bucket accumulates ``(n, Σx, Σy, Σxx, Σyy, Σxy)``; a windowed
    correlation merges the buckets and evaluates the closed form — the
    extractor's relative-importance feature without per-request alignment
    scans.
    """

    __slots__ = ("_moments",)

    def __init__(self, bucket_s: float = 1.0, buckets: int = 32) -> None:
        super().__init__(bucket_s, buckets)
        self._moments: List[List[float]] = [
            [0.0] * 6 for _ in range(self.buckets)
        ]

    def add(self, time_s: float, x: float, y: float) -> None:
        bucket = self._bucket_id(time_s)
        slot = bucket % self.buckets
        moments = self._moments[slot]
        if self._ids[slot] != bucket:
            self._ids[slot] = bucket
            moments[0] = moments[1] = moments[2] = 0.0
            moments[3] = moments[4] = moments[5] = 0.0
        moments[0] += 1.0
        moments[1] += x
        moments[2] += y
        moments[3] += x * x
        moments[4] += y * y
        moments[5] += x * y

    def window_count(self, now: float, duration_s: float) -> int:
        total = 0.0
        for bucket in self._window_ids(now, duration_s):
            slot = bucket % self.buckets
            if self._ids[slot] == bucket:
                total += self._moments[slot][0]
        return int(total)

    def pearson(self, now: float, duration_s: float) -> float:
        """Windowed Pearson correlation (0.0 for degenerate windows)."""
        n = sx = sy = sxx = syy = sxy = 0.0
        for bucket in self._window_ids(now, duration_s):
            slot = bucket % self.buckets
            if self._ids[slot] != bucket:
                continue
            moments = self._moments[slot]
            n += moments[0]
            sx += moments[1]
            sy += moments[2]
            sxx += moments[3]
            syy += moments[4]
            sxy += moments[5]
        if n < 2.0:
            return 0.0
        var_x = sxx - sx * sx / n
        var_y = syy - sy * sy / n
        if var_x <= 0.0 or var_y <= 0.0:
            return 0.0
        covariance = sxy - sx * sy / n
        correlation = covariance / math.sqrt(var_x * var_y)
        return max(-1.0, min(1.0, correlation))
