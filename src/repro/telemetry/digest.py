"""Run-level telemetry digests and their cross-shard merge.

A :class:`TelemetryDigest` is what one tracing coordinator (or one shard)
can publish about a finished run without shipping raw samples: per
request type a mergeable latency :class:`~repro.telemetry.histogram.LogHistogram`
plus completed/dropped counters.  Because the histogram merge is bin-wise
integer addition, folding digests is associative and commutative on
counts — the property the sharded engine's determinism contract needs
(the fold order is still fixed to ascending shard index so the float
``total`` fields are summed in one canonical order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.telemetry.histogram import LogHistogram


@dataclass
class TelemetryDigest:
    """Constant-size, picklable summary of one run's request telemetry."""

    #: Per-request-type end-to-end latency histograms (ms).
    latency: Dict[str, LogHistogram] = field(default_factory=dict)
    #: Completed / dropped request counts.
    completed: int = 0
    dropped: int = 0

    def observe_completion(self, request_type: str, latency_ms: float) -> None:
        histogram = self.latency.get(request_type)
        if histogram is None:
            histogram = self.latency[request_type] = LogHistogram()
        histogram.add(latency_ms)
        self.completed += 1

    def observe_drop(self) -> None:
        self.dropped += 1

    def latency_quantile_ms(self, q: float, request_type: Optional[str] = None) -> float:
        """Digest-wide latency quantile (across types when none is given)."""
        if request_type is not None:
            histogram = self.latency.get(request_type)
            return histogram.quantile(q) if histogram is not None else 0.0
        merged: Optional[LogHistogram] = None
        for name in sorted(self.latency):
            histogram = self.latency[name]
            if merged is None:
                merged = histogram.copy()
            else:
                merged.merge(histogram)
        return merged.quantile(q) if merged is not None else 0.0

    def merge(self, other: "TelemetryDigest") -> None:
        """Fold another digest into this one (bin-wise addition)."""
        for request_type, histogram in other.latency.items():
            mine = self.latency.get(request_type)
            if mine is None:
                self.latency[request_type] = histogram.copy()
            else:
                mine.merge(histogram)
        self.completed += other.completed
        self.dropped += other.dropped

    def copy(self) -> "TelemetryDigest":
        clone = TelemetryDigest(completed=self.completed, dropped=self.dropped)
        clone.latency = {name: hist.copy() for name, hist in self.latency.items()}
        return clone

    def as_dict(self) -> Dict[str, object]:
        """Headline JSON-friendly view (used by reports, not fingerprints)."""
        return {
            "completed": self.completed,
            "dropped": self.dropped,
            "request_types": {
                name: {
                    "count": hist.count,
                    "p50_ms": round(hist.quantile(50.0), 3),
                    "p99_ms": round(hist.quantile(99.0), 3),
                }
                for name, hist in sorted(self.latency.items())
            },
        }


def merge_telemetry_digests(
    digests: Sequence[Optional[TelemetryDigest]],
) -> Optional[TelemetryDigest]:
    """Non-destructive fold of digests in the order given (None-safe).

    Callers fix the order — the sharded merge folds in ascending shard
    index, the harness in tenant order — so the float ``total`` fields
    are summed canonically; the integer state is order-independent.
    """
    merged: Optional[TelemetryDigest] = None
    for digest in digests:
        if digest is None:
            continue
        if merged is None:
            merged = digest.copy()
        else:
            merged.merge(digest)
    return merged
