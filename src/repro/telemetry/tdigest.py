"""A mergeable t-digest quantile sketch (merging-digest variant).

:class:`~repro.telemetry.p2.P2Quantile` is O(1) but cannot be merged, so
it cannot summarize a value stream split across event shards; the
:class:`~repro.telemetry.histogram.LogHistogram` merges exactly but its
relative-error guarantee is fixed by the bucket geometry.  The t-digest
(Dunning & Ertl, "Computing extremely accurate quantiles using
t-digests") fills the gap this package's ROADMAP left open: a bounded
set of weighted centroids whose sizes shrink toward the distribution's
tails, giving tight relative accuracy at extreme quantiles *and* a merge
operation — fold another digest's centroids in and re-compress.

This is the fully deterministic *merging* variant: values buffer until
the buffer fills, then one sorted sweep merges buffer and centroids
under the ``k1`` scale-function size limit.  No randomness is involved,
so for a fixed insertion order the digest — and every quantile read from
it — is bit-reproducible, and merging per-shard digests in ascending
shard order yields the same result on every run.  That is the contract
the observability registry's cross-shard histograms rely on
(:mod:`repro.obs.registry`).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

__all__ = ["TDigest", "merge_tdigests"]


class TDigest:
    """Streaming quantile sketch with deterministic merging.

    Parameters
    ----------
    compression:
        The ``delta`` parameter bounding the centroid count (roughly
        ``2 * compression`` centroids after compression).  100 keeps
        p99 within a fraction of a percent of exact on the latency
        distributions the simulator produces while holding ~200 floats.
    buffer_size:
        Incoming values buffered between compressions; larger buffers
        amortize the O(n log n) sweep, smaller ones bound staleness.
    """

    __slots__ = (
        "compression",
        "buffer_size",
        "_means",
        "_weights",
        "_buffer",
        "count",
        "total",
        "_min",
        "_max",
    )

    def __init__(self, compression: float = 100.0, buffer_size: int = 512) -> None:
        if compression < 10:
            raise ValueError(f"compression must be >= 10, got {compression}")
        self.compression = float(compression)
        self.buffer_size = int(buffer_size)
        #: Compressed centroids, ascending by mean.
        self._means: List[float] = []
        self._weights: List[float] = []
        #: Uncompressed ``(value, weight)`` arrivals.
        self._buffer: List[Tuple[float, float]] = []
        #: Total observation count (sum of weights).
        self.count = 0.0
        #: Sum of all observed values (weighted).
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # ------------------------------------------------------------- ingestion
    def add(self, value: float, weight: float = 1.0) -> None:
        """Observe ``value`` with the given weight."""
        if weight <= 0:
            return
        value = float(value)
        self._buffer.append((value, float(weight)))
        self.count += weight
        self.total += value * weight
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if len(self._buffer) >= self.buffer_size:
            self._compress()

    def merge(self, other: "TDigest") -> None:
        """Fold ``other``'s observations into this digest (other unchanged).

        Merging is deterministic: the same sequence of merges always
        produces the same centroids.  It is not bit-associative (like any
        t-digest), but the quantile error bound holds for every grouping,
        so shard-merge order only needs to be *fixed*, not free.
        """
        if other.count <= 0:
            return
        for mean, weight in zip(other._means, other._weights):
            self._buffer.append((mean, weight))
        self._buffer.extend(other._buffer)
        self.count += other.count
        self.total += other.total
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max
        self._compress()

    def copy(self) -> "TDigest":
        """An independent deep copy."""
        clone = TDigest(self.compression, self.buffer_size)
        clone._means = list(self._means)
        clone._weights = list(self._weights)
        clone._buffer = list(self._buffer)
        clone.count = self.count
        clone.total = self.total
        clone._min = self._min
        clone._max = self._max
        return clone

    # ----------------------------------------------------------- compression
    def _k(self, q: float) -> float:
        """The ``k1`` scale function: tail-concentrating centroid budget."""
        return self.compression / (2.0 * math.pi) * math.asin(2.0 * q - 1.0)

    def _k_inv(self, k: float) -> float:
        limit = self.compression / 4.0
        k = max(-limit, min(limit, k))
        return (math.sin(2.0 * math.pi * k / self.compression) + 1.0) / 2.0

    def _compress(self) -> None:
        if not self._buffer and len(self._means) <= 2 * self.compression:
            return
        items = sorted(
            list(zip(self._means, self._weights)) + self._buffer,
            key=lambda pair: pair[0],
        )
        self._buffer = []
        self._means = []
        self._weights = []
        if not items:
            return
        total = sum(weight for _, weight in items)
        cum = 0.0  # weight fully merged into flushed centroids
        cur_mean, cur_weight = items[0]
        q_limit = self._k_inv(self._k(0.0) + 1.0) * total
        for mean, weight in items[1:]:
            if cum + cur_weight + weight <= q_limit:
                # Weighted incremental mean keeps the sweep single-pass.
                cur_weight += weight
                cur_mean += (mean - cur_mean) * (weight / cur_weight)
            else:
                self._means.append(cur_mean)
                self._weights.append(cur_weight)
                cum += cur_weight
                q_limit = self._k_inv(self._k(cum / total) + 1.0) * total
                cur_mean, cur_weight = mean, weight
        self._means.append(cur_mean)
        self._weights.append(cur_weight)

    # --------------------------------------------------------------- queries
    @property
    def mean(self) -> float:
        """Mean of all observed values (exact, not sketched)."""
        return self.total / self.count if self.count > 0 else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in ``[0, 1]``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._compress()
        if self.count <= 0 or not self._means:
            return 0.0
        if len(self._means) == 1:
            return self._means[0]
        target = q * self.count
        # Centroid i covers ranks centred at cum_i + w_i / 2; interpolate
        # linearly between adjacent centres, anchored at min/max.
        cum = 0.0
        prev_center = 0.0
        prev_mean = self._min if self._min is not None else self._means[0]
        for mean, weight in zip(self._means, self._weights):
            center = cum + weight / 2.0
            if target < center:
                span = center - prev_center
                if span <= 0:
                    return mean
                frac = (target - prev_center) / span
                return prev_mean + (mean - prev_mean) * frac
            prev_center = center
            prev_mean = mean
            cum += weight
        return self._max if self._max is not None else self._means[-1]

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (count, sum, headline quantiles)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self._min,
            "max": self._max,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TDigest(count={self.count:g}, centroids={len(self._means)}, "
            f"compression={self.compression:g})"
        )


def merge_tdigests(digests: Iterable[Optional["TDigest"]]) -> Optional["TDigest"]:
    """Fold digests in the given (fixed) order; None entries are skipped.

    Returns None when every entry is None — the same None-safe contract
    as :func:`repro.telemetry.digest.merge_telemetry_digests`, so shard
    merge layers can fold unconditionally.
    """
    merged: Optional[TDigest] = None
    for digest in digests:
        if digest is None:
            continue
        if merged is None:
            merged = digest.copy()
        else:
            merged.merge(digest)
    return merged
