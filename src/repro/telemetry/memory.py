"""Retained-footprint accounting for the telemetry pipeline.

``ru_maxrss`` is process-monotonic — a benchmark that runs after a bigger
one can never show a smaller peak — so the memory-reduction claims are
made against what the pipeline actually *retains*: a bounded recursive
``sys.getsizeof`` walk over the collector, the trace store, and the
coordinator sketches.  This deliberately counts only reachable payload
(dicts, deques, sample slots, numpy buffers), not interpreter overheads
shared with the rest of the process, which is exactly the state the
sketch pipeline is meant to shrink.
"""

from __future__ import annotations

import sys
import types
from collections import deque
from typing import Any, Set

try:  # numpy buffers report nbytes, not getsizeof of the view
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
    _np = None

#: Safety valve for the recursive walk (cycles are handled via the id-set).
_MAX_OBJECTS = 2_000_000

#: Shared-with-the-interpreter objects the walk must not descend into.
_SKIP_TYPES = (type, types.ModuleType, types.FunctionType,
               types.BuiltinFunctionType, types.MethodType)


def deep_sizeof(obj: Any) -> int:
    """Recursive retained size of ``obj`` in bytes.

    Follows containers, deques, ``__dict__``, and ``__slots__``; counts
    every distinct object once.  Numpy arrays contribute ``nbytes`` plus
    the view header.  Module/class/function objects are skipped (shared
    with the interpreter, not retained telemetry state).
    """
    seen: Set[int] = set()
    stack = [obj]
    total = 0
    while stack:
        current = stack.pop()
        identity = id(current)
        if identity in seen:
            continue
        seen.add(identity)
        if len(seen) > _MAX_OBJECTS:  # pragma: no cover - safety valve
            break
        if isinstance(current, _SKIP_TYPES):
            continue
        total += sys.getsizeof(current)
        if _np is not None and isinstance(current, _np.ndarray):
            total += int(current.nbytes)
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset, deque)):
            stack.extend(current)
        else:
            attributes = getattr(current, "__dict__", None)
            if attributes is not None:
                stack.append(attributes)
            for klass in type(current).__mro__:
                slots = klass.__dict__.get("__slots__")
                if not slots:
                    continue
                if isinstance(slots, str):
                    slots = (slots,)
                for name in slots:
                    try:
                        stack.append(getattr(current, name))
                    except AttributeError:
                        continue
    return total


def retained_mb(*objects: Any) -> float:
    """Combined retained size of several roots, in MiB (each counted once)."""
    return sum(deep_sizeof(obj) for obj in objects) / (1024.0 * 1024.0)
