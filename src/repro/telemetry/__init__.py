"""Streaming-sketch telemetry primitives.

The raw telemetry pipeline retains one slotted sample object per container
per sampling period and every trace until eviction; that is O(history) per
container and O(capacity) traces — the ROADMAP's scaling wall.  This
package holds the constant-memory replacements:

* :mod:`repro.telemetry.p2` — the P² incremental quantile estimator
  (Jain & Chlamtac 1985): five markers, O(1) memory, no sample retention;
* :mod:`repro.telemetry.histogram` — fixed-geometric-bin log histograms
  whose merge is bin-wise integer addition, i.e. exactly associative and
  commutative — the primitive shard digests are built from;
* :mod:`repro.telemetry.window` — fixed-size ring-buffer windowed
  statistics (count/mean/max per resource, windowed histograms, windowed
  co-moments for incremental Pearson correlation);
* :mod:`repro.telemetry.reservoir` — a SeededRNG-driven Algorithm-R
  reservoir sampler for deterministic trace retention;
* :mod:`repro.telemetry.digest` — the per-run latency digest shards
  publish and the ascending-order fold that merges them;
* :mod:`repro.telemetry.tdigest` — a deterministic merging t-digest:
  tail-accurate quantiles *and* a merge operation, closing the gap P²
  leaves (O(1) but unmergeable) for sketches that must fold across
  shards — the backend of the observability registry's histograms;
* :mod:`repro.telemetry.memory` — honest retained-footprint accounting
  used by the ``telemetry_fleet`` perf macro and the memory-reduction
  regression test.

Consumers select the pipeline through ``telemetry_mode``: ``"sketch"``
(the default on the experiment path) keeps sketches plus a sharply shrunk
raw tail, ``"raw"`` restores the historical full-history pipeline
byte-identically.
"""

from repro.telemetry.digest import TelemetryDigest, merge_telemetry_digests
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.p2 import P2Quantile
from repro.telemetry.reservoir import ReservoirSampler
from repro.telemetry.tdigest import TDigest, merge_tdigests
from repro.telemetry.window import (
    WindowedCoMoments,
    WindowedCounter,
    WindowedHistogram,
)

__all__ = [
    "LogHistogram",
    "P2Quantile",
    "ReservoirSampler",
    "TDigest",
    "TelemetryDigest",
    "WindowedCoMoments",
    "WindowedCounter",
    "WindowedHistogram",
    "merge_tdigests",
    "merge_telemetry_digests",
]
