"""SeededRNG-driven reservoir sampling (Algorithm R, Vitter 1985).

Keeps a uniform random sample of a stream in a fixed-capacity buffer: the
first ``capacity`` items are admitted outright, and from then on the
``n``-th item replaces a uniformly chosen resident with probability
``capacity / n``.  Randomness comes from one named
:class:`~repro.sim.rng.SeededRNG` substream cursor, so retention decisions
are a pure function of ``(seed, offer order)`` — repeated runs retain the
same traces, and in-process versus cross-process sharded execution cannot
diverge.
"""

from __future__ import annotations

from typing import Generic, List, Optional, TypeVar

from repro.sim.rng import StreamCursor

T = TypeVar("T")


class ReservoirSampler(Generic[T]):
    """Fixed-capacity uniform sample of an unbounded stream.

    Parameters
    ----------
    capacity:
        Number of items retained.
    cursor:
        Uniform-draw cursor from a named SeededRNG substream; one draw is
        consumed per offer beyond capacity (none before the reservoir
        fills, so small streams are retained exactly and draw-free).
    """

    def __init__(self, capacity: int, cursor: StreamCursor) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._cursor = cursor
        self.items: List[T] = []
        #: Total items offered so far (the stream length ``n``).
        self.offered = 0

    def offer(self, item: T) -> Optional[T]:
        """Offer one item; return the item displaced by it, if any.

        Returns ``None`` when the item was admitted without displacing
        anything (reservoir still filling), the displaced resident when
        the item replaced one, or ``item`` itself when it was rejected —
        so the caller can release whatever the reservoir no longer holds.
        """
        self.offered += 1
        if len(self.items) < self.capacity:
            self.items.append(item)
            return None
        slot = int(self._cursor.next_uniform() * self.offered)
        if slot < self.capacity:
            displaced = self.items[slot]
            self.items[slot] = item
            return displaced
        return item

    def __len__(self) -> int:
        return len(self.items)
