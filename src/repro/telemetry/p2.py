"""The P² incremental quantile estimator (Jain & Chlamtac, 1985).

Estimates a single quantile of a stream in O(1) memory by maintaining five
markers — the minimum, the maximum, the target quantile, and the two
mid-quantiles between them — and nudging the middle markers toward their
desired positions with a piecewise-parabolic (hence "P squared") height
adjustment on every observation.  Until five observations have arrived the
estimator answers from the sorted buffer directly (linear interpolation,
matching ``numpy.percentile``), so small streams are exact.

The estimator is *not* mergeable (marker state is order-dependent), so it
serves per-container and per-stream summaries; cross-shard digests use the
exactly-associative :class:`~repro.telemetry.histogram.LogHistogram`.
"""

from __future__ import annotations

from typing import List


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Parameters
    ----------
    quantile:
        Target quantile in ``(0, 1)``, e.g. ``0.99`` for p99.
    """

    __slots__ = ("quantile", "count", "_q", "_n", "_np", "_dn", "_initial")

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = float(quantile)
        self.count = 0
        p = self.quantile
        #: Marker heights / positions / desired positions (after init).
        self._q: List[float] = []
        self._n: List[float] = []
        self._np: List[float] = []
        self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)
        #: First five observations, buffered until the markers initialize.
        self._initial: List[float] = []

    # ------------------------------------------------------------------ feed
    def add(self, x: float) -> None:
        """Absorb one observation."""
        self.count += 1
        if self._q:
            self._update(float(x))
            return
        self._initial.append(float(x))
        if len(self._initial) == 5:
            self._initial.sort()
            self._q = list(self._initial)
            self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
            p = self.quantile
            self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            self._initial = []

    def _update(self, x: float) -> None:
        q, n = self._q, self._n
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 5):
                if x < q[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            n[i] += 1.0
        np_ = self._np
        dn = self._dn
        for i in range(5):
            np_[i] += dn[i]
        for i in range(1, 4):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, sign)
                n[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    # ----------------------------------------------------------------- query
    def value(self) -> float:
        """Current quantile estimate (0.0 before any observation).

        Exact (numpy-compatible linear interpolation over the sorted
        buffer) below five observations; the P² middle-marker height
        afterwards.
        """
        if self._q:
            return self._q[2]
        if not self._initial:
            return 0.0
        data = sorted(self._initial)
        rank = self.quantile * (len(data) - 1)
        low = int(rank)
        high = min(low + 1, len(data) - 1)
        frac = rank - low
        return data[low] * (1.0 - frac) + data[high] * frac
