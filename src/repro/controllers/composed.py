"""Composed controller policies: priority chains and SVM-gated RL.

The composition layer on top of the staged framework: a
:class:`ComposedController` owns a stack of member controllers (built
through the same registry, sharing the tenant's wiring and stage
runtime) and decides each round which members act.

Two modes:

``priority_chain``
    Every member runs, in declared order, each round.  The value over
    running them as separate controllers is the shared stage runtime:
    the chain pulls detection once and every member's own pull is a
    cache hit (with the manager enabled).

``svm_gated_rl``
    The paper's RL estimator guarded by a heuristic fallback.  The first
    FIRM-family member is the RL policy; the remaining members are the
    fallback chain.  Each round the gate pulls the shared SVM detection
    verdict and the tenant's admission signals, then routes the round to
    the RL member only while the critic looks trustworthy — its mean
    TD-error at or below ``td_error_threshold`` — and the admission gate
    is calm (no open circuit breakers, shed rate at or below
    ``shed_rate_threshold``).  Otherwise the fallback members act.
    Switches are journaled as ``policy_switch`` records.

``online_learning`` (default True) keeps the FIRM members' DDPG agents
fine-tuning while serving — the fig11 transfer-learning story extended
to continual operation; set it False to freeze the policy and serve
inference-only.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.baselines.base import ResourceController, register_controller
from repro.core.firm import FIRMController


@dataclass
class PolicySwitch:
    """Audit record of one gate decision change."""

    time_s: float
    from_policy: str
    to_policy: str
    reason: str
    td_error: Optional[float]
    shed_rate: float
    breakers_open: int


@dataclass
class ComposedRoundRecord:
    """Audit record of one composed round: who acted and why."""

    time_s: float
    active_policy: str
    slo_violated: bool
    reason: str


@register_controller("composed", aliases=("svm_gated_rl", "priority_chain"))
class ComposedController(ResourceController):
    """Composes member controllers: priority chains and SVM-gated RL with heuristic fallback.

    Parameters (as registry kwargs)
    -------------------------------
    members:
        Member controller names (or ``(name, kwargs)`` pairs), built via
        the registry with this controller's wiring.  Default
        ``("firm", "aimd")``.
    mode:
        ``"svm_gated_rl"`` (default) or ``"priority_chain"``.
    online_learning:
        Keep FIRM members' DDPG agents training while serving (default
        True); False freezes them for inference-only serving.
    td_error_threshold:
        Critic mean TD-error above which the RL member is distrusted.
    shed_rate_threshold:
        Admission shed rate above which the fallback chain takes over.
    """

    stage_subscriptions = ("detection", "admission_signals")

    def __init__(
        self,
        cluster,
        coordinator,
        orchestrator,
        engine,
        members: Sequence = ("firm", "aimd"),
        mode: str = "svm_gated_rl",
        online_learning: bool = True,
        td_error_threshold: float = 50.0,
        shed_rate_threshold: float = 0.5,
        control_interval_s: float = 2.0,
        **kwargs,
    ) -> None:
        super().__init__(
            cluster,
            coordinator,
            orchestrator,
            engine,
            control_interval_s=control_interval_s,
        )
        if mode not in ("svm_gated_rl", "priority_chain"):
            raise ValueError(f"unknown composed mode {mode!r}")
        if not members:
            raise ValueError("composed controller needs at least one member")
        self.mode = mode
        self.online_learning = bool(online_learning)
        self.td_error_threshold = float(td_error_threshold)
        self.shed_rate_threshold = float(shed_rate_threshold)
        self.members: List[ResourceController] = []
        self.member_names: List[str] = []
        for entry in members:
            name, member_kwargs = entry if isinstance(entry, (tuple, list)) else (entry, {})
            member = self._build_member(name, dict(member_kwargs), **kwargs)
            if member is None:
                raise ValueError(f"composed member {name!r} resolved to no controller")
            self.members.append(member)
            self.member_names.append(name)
        self.switches: List[PolicySwitch] = []
        self.rounds: List[ComposedRoundRecord] = []
        self.active_policy: Optional[str] = None

    def _build_member(self, name: str, member_kwargs: dict, **shared) -> ResourceController:
        from repro.baselines.base import create_controller

        merged = {**shared, **member_kwargs}
        member = create_controller(
            name,
            self.cluster,
            self.coordinator,
            self.orchestrator,
            self.engine,
            **merged,
        )
        if isinstance(member, FIRMController):
            member.config = dataclasses.replace(member.config, train_online=self.online_learning)
        return member

    # ------------------------------------------------------------- plumbing
    @property
    def obs(self):
        return self._obs

    @obs.setter
    def obs(self, value):
        # Base __init__ assigns obs before members exist; cascade once
        # they do so member rounds journal under their own sources.
        self._obs = value
        for member in getattr(self, "members", ()):
            member.obs = value

    def bind_stages(self, runtime) -> None:
        """Share one stage runtime (and thus one cache and one Extractor)
        across the gate and every member."""
        super().bind_stages(runtime)
        for member in self.members:
            member.bind_stages(runtime)

    @property
    def rl_member(self) -> Optional[FIRMController]:
        """The first FIRM-family member (the gated RL policy), if any."""
        for member in self.members:
            if isinstance(member, FIRMController):
                return member
        return None

    def _detection_params(self) -> Tuple[float, float]:
        rl = self.rl_member
        if rl is not None:
            return rl.extractor.window_s, rl.extractor.detection_percentile
        return self.control_interval_s, 99.0

    # ----------------------------------------------------------------- loop
    def control_round(self) -> ComposedRoundRecord:
        """One composed round: shared sensing, gate decision, member rounds."""
        window_s, percentile = self._detection_params()
        extraction = self.stages.pull("detection", window_s=window_s, percentile=percentile)
        if self.mode == "priority_chain":
            record = self._priority_chain_round(extraction)
        else:
            record = self._gated_round(extraction)
        self.rounds.append(record)
        if self.obs is not None:
            self.obs.journal.record(
                record.time_s,
                "composed_round",
                self.obs_source,
                active_policy=record.active_policy,
                slo_violated=record.slo_violated,
                reason=record.reason,
            )
        return record

    def _priority_chain_round(self, extraction) -> ComposedRoundRecord:
        for member in self.members:
            member.control_round()
        return ComposedRoundRecord(
            time_s=self.engine.now,
            active_policy="+".join(self.member_names),
            slo_violated=extraction.slo_violated,
            reason="priority_chain",
        )

    def _gated_round(self, extraction) -> ComposedRoundRecord:
        rl = self.rl_member
        if rl is None:
            raise ValueError("svm_gated_rl mode needs a FIRM-family member")
        signals = self.stages.pull("admission_signals")
        td_error = rl.last_critic_loss
        reason = "critic_trusted"
        use_rl = True
        if td_error is not None and td_error > self.td_error_threshold:
            use_rl, reason = False, "critic_uncertain"
        elif signals["breakers_open"] > 0:
            use_rl, reason = False, "breakers_open"
        elif signals["shed_rate"] > self.shed_rate_threshold:
            use_rl, reason = False, "shedding"
        fallback_names = [
            name
            for name, member in zip(self.member_names, self.members)
            if member is not rl
        ]
        policy = "rl" if use_rl else "+".join(fallback_names) or "rl"
        if policy != self.active_policy:
            switch = PolicySwitch(
                time_s=self.engine.now,
                from_policy=self.active_policy or "none",
                to_policy=policy,
                reason=reason,
                td_error=td_error,
                shed_rate=float(signals["shed_rate"]),
                breakers_open=int(signals["breakers_open"]),
            )
            self.switches.append(switch)
            if self.obs is not None:
                self.obs.journal.record(
                    switch.time_s,
                    "policy_switch",
                    self.obs_source,
                    from_policy=switch.from_policy,
                    to_policy=switch.to_policy,
                    reason=switch.reason,
                    td_error=switch.td_error,
                    shed_rate=switch.shed_rate,
                    breakers_open=switch.breakers_open,
                )
            self.active_policy = policy
        if use_rl or not fallback_names:
            rl.control_round()
        else:
            for member in self.members:
                if member is not rl:
                    member.control_round()
        return ComposedRoundRecord(
            time_s=self.engine.now,
            active_policy=policy,
            slo_violated=extraction.slo_violated,
            reason=reason,
        )
