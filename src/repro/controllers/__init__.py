"""Staged controller framework: stages, the manager, and composed policies.

Layers:

* :mod:`repro.controllers.stages` — :class:`ControllerStage` ABC,
  ``@register_stage``, and the built-in sensing stages (SLO verdicts,
  critical-path extraction, SVM detection, admission signals, service
  utilization) with declared dependencies.
* :mod:`repro.controllers.manager` — :class:`ControllerManager` +
  :class:`StageRuntime`: topological ordering, per-``(window, tenant)``
  memoization, scale-event invalidation, ``stage_run`` journaling.
* :mod:`repro.controllers.composed` — the ``composed`` controller family:
  priority chains and SVM-gated RL with heuristic fallback and online
  DDPG fine-tuning.
"""

from repro.controllers.manager import (
    ControllerManager,
    StageBinding,
    StageCache,
    StageContext,
    StageRuntime,
)
from repro.controllers.stages import (
    ControllerStage,
    available_stages,
    get_stage,
    register_stage,
    stage_order,
)

__all__ = [
    "ControllerManager",
    "ControllerStage",
    "StageBinding",
    "StageCache",
    "StageContext",
    "StageRuntime",
    "available_stages",
    "get_stage",
    "register_stage",
    "stage_order",
]
