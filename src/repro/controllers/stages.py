"""Controller stages: named, memoizable units of per-window control work.

A :class:`ControllerStage` is one piece of the sensing work every
controller round begins with — aggregating the telemetry window, pulling
recent traces and extracting critical paths, running SVM detection,
reading the admission gate's pressure signals.  Historically each
controller re-ran that work privately inside its monolithic
``control_round``; stages name the work, declare what other stages it
depends on, and let the :class:`~repro.controllers.manager.ControllerManager`
memoize each result per ``(stage, tenant, instant, params)`` so a stack of
controllers sharing one tenant computes it once per control window.

Stage implementations are **pure reads** of the coordinator/cluster state:
no RNG draws, no engine scheduling, no cluster mutation.  That is the
whole determinism contract — a memoized result is byte-identical to a
recomputation at the same instant, so enabling the manager can never
change experiment output (the pinned determinism suite enforces this for
every scenario family).

Stages are registered by :func:`register_stage` and looked up by name;
``requires`` declares the dependency edges :func:`stage_order` topologically
sorts (and validates for cycles).  A stage body pulls its dependencies
through :meth:`StageContext.require`, which routes through the same
manager memo — so dependencies are computed lazily, in exactly the order
the legacy monolithic loops issued the underlying queries.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

from repro.cluster.resources import Resource

#: Registry of stage singletons by name.
_STAGES: Dict[str, "ControllerStage"] = {}


class ControllerStage(abc.ABC):
    """One named unit of shared per-window control-sensing work.

    Class attributes
    ----------------
    name:
        Registry name (stable; controllers subscribe by it).
    requires:
        Names of stages this stage's ``compute`` may pull through
        :meth:`StageContext.require` — the dependency edges of the DAG.
    scope:
        ``"tenant"`` results are memoized per tenant binding (each tenant
        observes through its own coordinator/view); ``"cluster"`` results
        are keyed cluster-wide and shared across every tenant's manager
        (service names are globally unique, so e.g. per-service
        utilization is the same answer whichever tenant asks).
    """

    name: str = ""
    requires: Tuple[str, ...] = ()
    scope: str = "tenant"

    @abc.abstractmethod
    def compute(self, ctx, **params):
        """Produce this stage's result for one instant (pure read)."""


def register_stage(cls):
    """Class decorator: instantiate and register a stage by its ``name``."""
    if not cls.name:
        raise ValueError(f"stage class {cls.__name__} must set a name")
    if cls.name in _STAGES:
        raise ValueError(f"stage {cls.name!r} is already registered")
    if cls.scope not in ("tenant", "cluster"):
        raise ValueError(f"stage {cls.name!r} has unknown scope {cls.scope!r}")
    _STAGES[cls.name] = cls()
    return cls


def get_stage(name: str) -> ControllerStage:
    """The registered stage singleton for ``name``."""
    try:
        return _STAGES[name]
    except KeyError:
        known = ", ".join(sorted(_STAGES))
        raise ValueError(f"unknown controller stage {name!r}; registered: {known}")


def available_stages() -> List[str]:
    """Registered stage names, sorted."""
    return sorted(_STAGES)


def stage_order(names=None) -> List[str]:
    """Topological order of the given stages (default: all registered).

    Dependencies come before dependents; ties break alphabetically so the
    order is stable.  Raises ``ValueError`` on unknown dependencies or
    cycles — the manager runs this at construction so a bad stage graph
    fails fast, not mid-experiment.
    """
    pool = sorted(_STAGES if names is None else names)
    for name in pool:
        stage = get_stage(name)
        for dep in stage.requires:
            if dep not in _STAGES:
                raise ValueError(f"stage {name!r} requires unknown stage {dep!r}")
    # Kahn's algorithm restricted to the pool (deps outside it are pulled in).
    closure: List[str] = []
    pending = list(pool)
    while pending:
        name = pending.pop()
        if name in closure:
            continue
        closure.append(name)
        pending.extend(get_stage(name).requires)
    closure.sort()
    indegree = {name: 0 for name in closure}
    dependents: Dict[str, List[str]] = {name: [] for name in closure}
    for name in closure:
        for dep in get_stage(name).requires:
            indegree[name] += 1
            dependents[dep].append(name)
    ready = sorted(name for name, degree in indegree.items() if degree == 0)
    ordered: List[str] = []
    while ready:
        name = ready.pop(0)
        ordered.append(name)
        changed = False
        for dependent in dependents[name]:
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
                changed = True
        if changed:
            ready.sort()
    if len(ordered) != len(closure):
        cyclic = sorted(set(closure) - set(ordered))
        raise ValueError(f"controller stage dependency cycle involving {cyclic}")
    return ordered


# ---------------------------------------------------------------------------
# Built-in stages
# ---------------------------------------------------------------------------


@register_stage
class SLOVerdictStage(ControllerStage):
    """Whether any request type's tail latency currently violates its SLO.

    Exactly the coordinator query FIRM's detector and AIMD's "violating"
    test issue (:meth:`TracingCoordinator.has_slo_violation`), keyed on
    the observation window and percentile.
    """

    name = "slo_verdict"

    def compute(self, ctx, window_s: float, percentile: float = 99.0) -> bool:
        return ctx.coordinator.has_slo_violation(window_s, percentile=percentile)


@register_stage
class ComfortableStage(ControllerStage):
    """True when every request type's tail latency is well inside its SLO.

    The AIMD "decrease" predicate: a request type blocks comfort when its
    windowed tail exceeds ``slack_threshold`` times its SLO; empty windows
    (tail <= 0) don't count.  Kept call-for-call identical to the legacy
    ``AIMDController._is_comfortable`` so memoized and direct computation
    agree byte-for-byte.
    """

    name = "comfortable"

    def compute(self, ctx, window_s: float, percentile: float, slack_threshold: float) -> bool:
        coordinator = ctx.coordinator
        slos = coordinator.slo_latency_ms
        if not slos:
            return False
        for request_type, slo in slos.items():
            tail = coordinator.latency_percentile_ms(percentile, window_s, request_type)
            if tail <= 0:
                continue
            if tail > slack_threshold * slo:
                return False
        return True


@register_stage
class CriticalPathStage(ControllerStage):
    """Recent traces plus their extracted critical paths.

    Returns ``(traces, critical_paths)`` for the window; with no retained
    traces both are empty and no extraction runs (matching the legacy
    Extractor's early return).
    """

    name = "critical_path"

    def compute(self, ctx, window_s: float):
        traces = ctx.coordinator.recent_traces(window_s)
        if not traces:
            return [], []
        return traces, ctx.binding.path_extractor().extract_all(traces)


@register_stage
class DetectionStage(ControllerStage):
    """The full detect -> extract -> localize round (modules 2-3).

    Pulls the SLO verdict, and only on violation (or ``force``) the
    critical paths, then hands both to the tenant's
    :class:`~repro.core.extractor.Extractor` for SVM candidate selection —
    the same object FIRM trains online, provided through the stage binding
    so detection and training share one SVM.  Result is an
    :class:`~repro.core.extractor.ExtractionResult`.
    """

    name = "detection"
    requires = ("slo_verdict", "critical_path")

    def compute(self, ctx, window_s: float, percentile: float = 99.0, force: bool = False):
        violated = ctx.require("slo_verdict", window_s=window_s, percentile=percentile)
        extractor = ctx.binding.extractor_for(window_s, percentile)
        if not violated and not force:
            return extractor.localize(violated, force=force, traces=[], paths=[])
        traces, paths = ctx.require("critical_path", window_s=window_s)
        return extractor.localize(violated, force=force, traces=traces, paths=paths)


@register_stage
class AdmissionSignalsStage(ControllerStage):
    """The tenant's admission-gate pressure signals as detection features.

    Surfaces the survival kit's live state — cumulative shed rate and
    per-service circuit-breaker states — so controllers can treat
    admission stress as a detection feature (e.g. the composed policy
    falls back to its heuristic member while a breaker is open).  Tenants
    without a gate report the quiet baseline (``available: False``).
    """

    name = "admission_signals"

    def compute(self, ctx) -> Dict[str, object]:
        runtime = ctx.binding.runtime
        gate = getattr(runtime, "admission", None) if runtime is not None else None
        if gate is None:
            return {
                "available": False,
                "shed_rate": 0.0,
                "shed": 0,
                "submitted": 0,
                "breakers": {},
                "breakers_open": 0,
            }
        submitted = int(gate.stats["submitted"])
        shed = int(gate.stats["shed"])
        breakers = {service: breaker.state for service, breaker in sorted(gate._breakers.items())}
        return {
            "available": True,
            "shed_rate": (shed / submitted) if submitted else 0.0,
            "shed": shed,
            "submitted": submitted,
            "breakers": breakers,
            "breakers_open": sum(1 for state in breakers.values() if state == "open"),
        }


@register_stage
class ServiceCPUUtilizationStage(ControllerStage):
    """Replica count and mean CPU utilization of one service.

    The HPA's observation, keyed per service (service names are globally
    unique across tenants, so the result is cluster-scoped and shared).
    Returns ``(replica_count, mean_cpu_utilization)`` or None for
    services with no replicas.  The snapshot is taken at pull time; scale
    events invalidate the cache, but a stack that changes resource
    *limits* mid-round should order its utilization readers before its
    limit writers.
    """

    name = "service_cpu_utilization"
    scope = "cluster"

    def compute(self, ctx, service: str):
        replicas = ctx.view.replicas_of(service)
        if not replicas:
            return None
        utilizations = [replica.utilization()[Resource.CPU] for replica in replicas]
        return len(replicas), sum(utilizations) / len(utilizations)
