"""The controller manager: memoized, dependency-ordered stage execution.

One :class:`ControllerManager` is owned by each
:class:`~repro.experiments.harness.TenantRuntime` (the harness also keeps
one shared :class:`StageCache` for cluster-scoped stages).  Controllers
reach it through a :class:`StageRuntime` — a manager bound to the
tenant's coordinator/cluster-view — handed to them by
``ResourceController.bind_stages``.

Memoization contract
--------------------
A stage result is valid for exactly one engine instant: the cache is
keyed ``(stage, tenant-key, params)`` and cleared whenever ``engine.now``
advances past the instant it was filled at, and eagerly on cluster scale
events (replicas appearing or disappearing change what every stage
observes).  Within one control window every subscribing controller —
including the members of a composed stack — therefore shares a single
computation of each stage.

With the manager disabled (``enabled=False``, the legacy default) every
``pull`` computes directly, reproducing the monolithic loops'
call sequences exactly; because stages are pure reads, enabling the
manager changes only *how often* the work runs, never its result — the
pinned determinism families assert byte-identical output both ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.controllers.stages import get_stage, stage_order


def _params_key(params: Dict[str, Any]) -> Tuple:
    """A hashable, order-insensitive cache key for stage kwargs."""
    return tuple(sorted(params.items()))


class StageCache:
    """Per-instant memo of stage results, with invalidation counters."""

    def __init__(self) -> None:
        self.now: Optional[float] = None
        self.entries: Dict[Tuple, Any] = {}
        self.invalidations = 0

    def sync(self, now: float) -> None:
        """Drop all entries if the engine clock moved past our instant."""
        if self.now != now:
            self.now = now
            self.entries.clear()

    def invalidate(self) -> None:
        """Eagerly drop all entries (cluster topology changed)."""
        if self.entries:
            self.entries.clear()
        self.invalidations += 1


@dataclass
class StageBinding:
    """What a stage sees: one tenant's observation surface.

    ``key`` distinguishes tenants in the cache (None for the anonymous
    single-tenant binding); ``runtime`` is the owning ``TenantRuntime``
    when there is one (admission signals live there); ``providers`` lets
    a controller donate long-lived stateful helpers — e.g. FIRM provides
    its online-trained :class:`~repro.core.extractor.Extractor` so the
    detection stage runs the *same* SVM the agent trains.
    """

    coordinator: Any
    view: Any
    engine: Any
    key: Optional[str] = None
    runtime: Any = None
    source: str = ""
    providers: Dict[Tuple, Any] = field(default_factory=dict)

    def provide(self, key: Tuple, value: Any) -> Any:
        """Donate a helper under ``key``; first provider wins."""
        return self.providers.setdefault(key, value)

    def extractor_for(self, window_s: float, percentile: float):
        """The tenant's Extractor for this (window, percentile) config.

        Returns the provided one when a controller donated it (FIRM's,
        with its online-trained SVM); otherwise lazily creates and keeps
        a default so repeated pulls share state.
        """
        key = ("extractor", float(window_s), float(percentile))
        extractor = self.providers.get(key)
        if extractor is None:
            from repro.core.extractor import Extractor

            extractor = Extractor(
                self.coordinator,
                window_s=window_s,
                detection_percentile=percentile,
            )
            self.providers[key] = extractor
        return extractor

    def path_extractor(self):
        """The shared critical-path extractor (stateless, one per tenant)."""
        key = ("path_extractor",)
        extractor = self.providers.get(key)
        if extractor is None:
            from repro.core.critical_path import CriticalPathExtractor

            extractor = CriticalPathExtractor()
            self.providers[key] = extractor
        return extractor


class StageContext:
    """What a stage's ``compute`` receives: the binding plus dep access."""

    __slots__ = ("manager", "binding")

    def __init__(self, manager: "ControllerManager", binding: StageBinding) -> None:
        self.manager = manager
        self.binding = binding

    @property
    def coordinator(self):
        return self.binding.coordinator

    @property
    def view(self):
        return self.binding.view

    def require(self, name: str, **params):
        """Pull a dependency stage through the same memo."""
        return self.manager.pull(name, self.binding, **params)


class ControllerManager:
    """Executes stages at most once per instant per tenant.

    Parameters
    ----------
    engine:
        The simulation engine (its clock keys cache validity).
    enabled:
        Off (default) reproduces the legacy direct-computation path; on
        memoizes per ``(stage, tenant, params)`` per instant.
    cluster:
        When given and enabled, a scale listener is registered so
        replica churn invalidates both caches immediately.
    obs:
        Optional observability sink; cache misses journal ``stage_run``
        records and bump the ``controller.stage_runs`` counter.
    cluster_cache:
        Shared :class:`StageCache` for ``scope="cluster"`` stages —
        the harness passes one instance to every tenant's manager so
        cluster-wide results are computed once for all tenants.
    """

    def __init__(
        self,
        engine,
        enabled: bool = False,
        cluster=None,
        obs=None,
        cluster_cache: Optional[StageCache] = None,
    ) -> None:
        self.engine = engine
        self.enabled = bool(enabled)
        self.obs = obs
        self.cache = StageCache()
        self.cluster_cache = cluster_cache if cluster_cache is not None else StageCache()
        self.stats: Dict[str, int] = {"computed": 0, "hits": 0}
        # Validate the registered stage DAG up front (raises on cycles).
        self.order = stage_order()
        if self.enabled and cluster is not None:
            add_listener = getattr(cluster, "add_scale_listener", None)
            if add_listener is not None:
                add_listener(self._on_scale_event)

    def _on_scale_event(self, service_name, instance, added) -> None:
        self.cache.invalidate()
        self.cluster_cache.invalidate()

    def runtime_for(self, binding: StageBinding) -> "StageRuntime":
        """A runtime view of this manager bound to one tenant."""
        return StageRuntime(self, binding)

    def pull(self, name: str, binding: StageBinding, **params):
        """The result of stage ``name`` for this tenant at this instant."""
        stage = get_stage(name)
        ctx = StageContext(self, binding)
        if not self.enabled:
            # Legacy path: compute per pull, no cache — exactly the call
            # sequence the monolithic loops issued.
            return stage.compute(ctx, **params)
        cache = self.cluster_cache if stage.scope == "cluster" else self.cache
        cache.sync(self.engine.now)
        tenant_key = None if stage.scope == "cluster" else binding.key
        key = (name, tenant_key, _params_key(params))
        if key in cache.entries:
            self.stats["hits"] += 1
            return cache.entries[key]
        result = stage.compute(ctx, **params)
        cache.entries[key] = result
        self.stats["computed"] += 1
        if self.obs is not None:
            self.obs.journal.record(
                self.engine.now,
                "stage_run",
                binding.source or "ControllerManager",
                stage=name,
                tenant=binding.key,
                scope=stage.scope,
            )
            self.obs.registry.counter("stage_runs_total", stage=name).inc()
        return result


class StageRuntime:
    """A manager pre-bound to one tenant's :class:`StageBinding`.

    This is the object controllers hold as ``self.stages``: ``pull`` by
    stage name, ``provide`` to donate stateful helpers into the shared
    binding.
    """

    __slots__ = ("manager", "binding")

    def __init__(self, manager: ControllerManager, binding: StageBinding) -> None:
        self.manager = manager
        self.binding = binding

    def pull(self, name: str, **params):
        return self.manager.pull(name, self.binding, **params)

    def provide(self, key: Tuple, value: Any) -> Any:
        return self.binding.provide(key, value)
