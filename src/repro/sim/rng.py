"""Seeded random number generation with named substreams.

Every stochastic subsystem in the reproduction (workload arrivals, service
times, anomaly campaigns, RL exploration noise, SVM initialization) draws
from its own named substream derived from a single experiment seed.  This
keeps experiments reproducible while ensuring, for example, that changing
the anomaly schedule does not perturb the arrival process.

Hot-path sampling goes through :class:`StreamCursor`: a cursor owns one
substream's generator handle plus block-drawn buffers of *parameter-free*
variates (standard exponentials, standard normals, uniforms) and applies
distribution parameters at consumption time.  Block draws amortize the
numpy call overhead across ``_CURSOR_BLOCK`` samples while producing the
exact value sequence of per-draw generator calls:

* ``Generator.standard_exponential(size=n)`` equals ``n`` scalar draws of
  the same bitstream (the ziggurat fills arrays sequentially), and chunked
  fills concatenate to the same sequence;
* ``Generator.exponential(scale)`` equals ``standard_exponential() * scale``
  bit for bit, and ``Generator.lognormal(mu, sigma)`` equals
  ``math.exp(mu + sigma * standard_normal())`` (both route through libm's
  ``exp``);
* ``Generator.choice(k, p=p)`` equals ``cdf.searchsorted(random(), "right")``
  over the normalized cumulative weights.

Buffering parameter-free variates (rather than parameterized draws) means a
controller or anomaly changing a distribution's parameters mid-run does not
invalidate buffered samples or shift the stream position: the next draw
consumes the next buffered variate with the new parameters, exactly as the
unbuffered implementation would.

One caveat follows from buffering: a cursor advances its generator in
blocks, so the *raw* generator position no longer matches the number of
values consumed.  Mixing cursor draws and direct ``stream(name)`` calls on
the same substream therefore changes the direct draws' values.  Substream
names are single-purpose throughout the codebase, which keeps the two
access styles disjoint.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Optional, Sequence

import numpy as np

#: Samples drawn per buffered block.  Large enough to amortize the numpy
#: dispatch overhead, small enough that an experiment touching a stream a
#: handful of times does not waste noticeable work.
_CURSOR_BLOCK = 256

_EMPTY = np.empty(0)


class StreamCursor:
    """Buffered draws over one substream with a cached generator handle.

    The cursor is the batched sampling path: scalar conveniences pop from
    block-drawn buffers of standard variates, and the batch methods fill
    whole arrays from the same buffers, so scalar and batch consumption of
    a stream produce one interleavable, identical value sequence.
    """

    __slots__ = (
        "generator",
        "_block",
        "_exp_buf",
        "_exp_pos",
        "_norm_buf",
        "_norm_pos",
        "_uni_buf",
        "_uni_pos",
    )

    def __init__(self, generator: np.random.Generator, block: int = _CURSOR_BLOCK) -> None:
        self.generator = generator
        self._block = int(block)
        self._exp_buf = _EMPTY
        self._exp_pos = 0
        self._norm_buf = _EMPTY
        self._norm_pos = 0
        self._uni_buf = _EMPTY
        self._uni_pos = 0

    # ------------------------------------------------------- standard draws
    def next_std_exponential(self) -> float:
        """Next standard-exponential variate (mean 1)."""
        pos = self._exp_pos
        buf = self._exp_buf
        if pos >= buf.shape[0]:
            buf = self.generator.standard_exponential(self._block)
            self._exp_buf = buf
            pos = 0
        self._exp_pos = pos + 1
        return buf[pos]

    def next_std_normal(self) -> float:
        """Next standard-normal variate."""
        pos = self._norm_pos
        buf = self._norm_buf
        if pos >= buf.shape[0]:
            buf = self.generator.standard_normal(self._block)
            self._norm_buf = buf
            pos = 0
        self._norm_pos = pos + 1
        return buf[pos]

    def next_uniform(self) -> float:
        """Next uniform variate in ``[0, 1)``."""
        pos = self._uni_pos
        buf = self._uni_buf
        if pos >= buf.shape[0]:
            buf = self.generator.random(self._block)
            self._uni_buf = buf
            pos = 0
        self._uni_pos = pos + 1
        return buf[pos]

    def _take(self, n: int, buf: np.ndarray, pos: int, draw) -> tuple:
        """Copy ``n`` buffered variates into a fresh array, refilling as needed."""
        out = np.empty(n)
        filled = 0
        while filled < n:
            avail = buf.shape[0] - pos
            if avail <= 0:
                need = n - filled
                buf = draw(need if need > self._block else self._block)
                pos = 0
                avail = buf.shape[0]
            take = avail if avail < n - filled else n - filled
            out[filled : filled + take] = buf[pos : pos + take]
            pos += take
            filled += take
        return out, buf, pos

    def std_exponentials(self, n: int) -> np.ndarray:
        """The next ``n`` standard-exponential variates as an array."""
        out, self._exp_buf, self._exp_pos = self._take(
            n, self._exp_buf, self._exp_pos, self.generator.standard_exponential
        )
        return out

    def std_normals(self, n: int) -> np.ndarray:
        """The next ``n`` standard-normal variates as an array."""
        out, self._norm_buf, self._norm_pos = self._take(
            n, self._norm_buf, self._norm_pos, self.generator.standard_normal
        )
        return out

    def uniforms(self, n: int) -> np.ndarray:
        """The next ``n`` uniform variates in ``[0, 1)`` as an array."""
        out, self._uni_buf, self._uni_pos = self._take(
            n, self._uni_buf, self._uni_pos, self.generator.random
        )
        return out

    # ------------------------------------------------------- parameterized
    def exponential(self, scale: float) -> float:
        """One exponential draw with mean ``scale``."""
        return self.next_std_exponential() * scale

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """One normal draw."""
        return loc + scale * self.next_std_normal()

    def lognormal(self, mean: float, sigma: float) -> float:
        """One lognormal draw (``mean``/``sigma`` of the underlying normal)."""
        return math.exp(mean + sigma * self.next_std_normal())

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw in ``[low, high)``."""
        return low + (high - low) * self.next_uniform()

    def exponentials(self, n: int, scale: float = 1.0) -> np.ndarray:
        """``n`` exponential draws with mean ``scale``."""
        out = self.std_exponentials(n)
        if scale != 1.0:
            out *= scale
        return out

    def normals(self, n: int, loc: float = 0.0, scale: float = 1.0) -> np.ndarray:
        """``n`` normal draws."""
        out = self.std_normals(n)
        if scale != 1.0:
            out *= scale
        if loc != 0.0:
            out += loc
        return out

    def lognormals(self, n: int, mean: float, sigma: float) -> np.ndarray:
        """``n`` lognormal draws.

        The exponentiation runs through :func:`math.exp` per element — not
        ``np.exp``, whose SIMD code path differs from libm in the last ulp —
        so batch draws equal the scalar :meth:`lognormal` sequence exactly.
        """
        z = self.std_normals(n)
        exp = math.exp
        return np.array([exp(mean + sigma * v) for v in z])


class SeededRNG:
    """A family of decoupled :class:`numpy.random.Generator` substreams.

    Parameters
    ----------
    seed:
        Master experiment seed.  Substreams are derived by hashing the
        substream name together with this seed, so two :class:`SeededRNG`
        objects with the same seed produce identical streams for the same
        names regardless of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self._cursors: Dict[str, StreamCursor] = {}

    @property
    def seed(self) -> int:
        """The master seed this family was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the substream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
            substream_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(substream_seed)
        return self._streams[name]

    def cursor(self, name: str) -> StreamCursor:
        """Return (creating if needed) the buffered cursor for ``name``.

        Hot paths should hold on to the returned cursor: it caches the
        generator handle, so per-draw cost is a buffer index instead of a
        dict lookup plus a numpy method dispatch.
        """
        cursor = self._cursors.get(name)
        if cursor is None:
            cursor = StreamCursor(self.stream(name))
            self._cursors[name] = cursor
        return cursor

    def spawn(self, name: str) -> "SeededRNG":
        """Derive a child :class:`SeededRNG` whose master seed depends on ``name``."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode("utf-8")).digest()
        return SeededRNG(int.from_bytes(digest[:8], "little"))

    # --------------------------------------------------------- batch draws
    def exponentials(self, name: str, n: int, scale: float = 1.0) -> np.ndarray:
        """``n`` exponential draws (mean ``scale``) from the named substream."""
        return self.cursor(name).exponentials(n, scale)

    def lognormals(self, name: str, n: int, mean: float, sigma: float) -> np.ndarray:
        """``n`` lognormal draws from the named substream."""
        return self.cursor(name).lognormals(n, mean, sigma)

    def normals(self, name: str, n: int, loc: float = 0.0, scale: float = 1.0) -> np.ndarray:
        """``n`` normal draws from the named substream."""
        return self.cursor(name).normals(n, loc, scale)

    def uniforms(self, name: str, n: int, low: float = 0.0, high: float = 1.0) -> np.ndarray:
        """``n`` uniform draws in ``[low, high)`` from the named substream."""
        out = self.cursor(name).uniforms(n)
        if high != 1.0 or low != 0.0:
            out *= high - low
            out += low
        return out

    # --------------------------------------------------------- conveniences
    #
    # Single draws delegate to the cursor (the batched path), so the
    # generator handle is cached after the first draw instead of being
    # re-resolved through the stream dict on every sample.
    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw from the named substream."""
        return float(self.cursor(name).uniform(low, high))

    def exponential(self, name: str, scale: float) -> float:
        """One exponential draw (mean ``scale``) from the named substream."""
        return float(self.cursor(name).exponential(scale))

    def normal(self, name: str, loc: float = 0.0, scale: float = 1.0) -> float:
        """One normal draw from the named substream."""
        return float(self.cursor(name).normal(loc, scale))

    def lognormal(self, name: str, mean: float, sigma: float) -> float:
        """One lognormal draw from the named substream."""
        return float(self.cursor(name).lognormal(mean, sigma))

    def choice(self, name: str, options: Sequence, p: Optional[Sequence[float]] = None):
        """Choose one element of ``options`` (optionally weighted by ``p``).

        Weighted draws route through the cursor's uniform buffer with the
        inverse-CDF recipe ``Generator.choice`` itself uses, so they stay
        value-identical to the unbuffered implementation; unweighted draws
        use the generator's bounded-integer path directly.
        """
        if p is not None:
            weights = np.asarray(p, dtype=float)
            cdf = weights.cumsum()
            cdf /= cdf[-1]
            index = int(cdf.searchsorted(self.cursor(name).next_uniform(), side="right"))
            last = len(options) - 1
            return options[index if index < last else last]
        index = self.stream(name).choice(len(options))
        return options[int(index)]

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw in ``[low, high)`` from the named substream.

        Bounded integers use rejection sampling with no fixed per-draw bit
        budget, so they stay on the raw generator rather than a cursor.
        """
        return int(self.stream(name).integers(low, high))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeededRNG(seed={self._seed}, streams={sorted(self._streams)})"
