"""Seeded random number generation with named substreams.

Every stochastic subsystem in the reproduction (workload arrivals, service
times, anomaly campaigns, RL exploration noise, SVM initialization) draws
from its own named substream derived from a single experiment seed.  This
keeps experiments reproducible while ensuring, for example, that changing
the anomaly schedule does not perturb the arrival process.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

import numpy as np


class SeededRNG:
    """A family of decoupled :class:`numpy.random.Generator` substreams.

    Parameters
    ----------
    seed:
        Master experiment seed.  Substreams are derived by hashing the
        substream name together with this seed, so two :class:`SeededRNG`
        objects with the same seed produce identical streams for the same
        names regardless of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this family was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the substream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
            substream_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(substream_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "SeededRNG":
        """Derive a child :class:`SeededRNG` whose master seed depends on ``name``."""
        digest = hashlib.sha256(f"{self._seed}:spawn:{name}".encode("utf-8")).digest()
        return SeededRNG(int.from_bytes(digest[:8], "little"))

    # --------------------------------------------------------- conveniences
    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw from the named substream."""
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, scale: float) -> float:
        """One exponential draw (mean ``scale``) from the named substream."""
        return float(self.stream(name).exponential(scale))

    def normal(self, name: str, loc: float = 0.0, scale: float = 1.0) -> float:
        """One normal draw from the named substream."""
        return float(self.stream(name).normal(loc, scale))

    def lognormal(self, name: str, mean: float, sigma: float) -> float:
        """One lognormal draw from the named substream."""
        return float(self.stream(name).lognormal(mean, sigma))

    def choice(self, name: str, options: Sequence, p: Optional[Sequence[float]] = None):
        """Choose one element of ``options`` (optionally weighted by ``p``)."""
        index = self.stream(name).choice(len(options), p=p)
        return options[int(index)]

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw in ``[low, high)`` from the named substream."""
        return int(self.stream(name).integers(low, high))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SeededRNG(seed={self._seed}, streams={sorted(self._streams)})"
