"""Shard partitioning primitives for the sharded simulation engine.

The sharded engine partitions a multi-tenant experiment into independent
event shards — one engine, RNG, cluster, and tenant subset per shard —
synchronized by the conservative time-window barrier implemented in
:mod:`repro.sim.sync`.  This module holds the pieces that are pure data
and pure functions, shared by the in-process and cross-process drivers:

* :func:`partition_round_robin` — the deterministic tenant -> shard map,
* :class:`ShardDigest` — the per-window message a shard publishes,
* :func:`merge_remote_pressure` — the fold every shard applies to the
  other shards' digests,
* :func:`conservative_window_s` — the barrier-window sizing rule,
* :func:`merge_telemetry_digests` — the end-of-run fold combining the
  per-shard telemetry digests (re-exported from
  :mod:`repro.telemetry.digest`): log-histogram bins merge by integer
  addition, so the fold is exactly associative and the merged sketch is
  identical whether shards ran in one process or many.

Determinism contract
--------------------
Everything here is a pure function of its inputs.  The partition depends
only on the tenant order and shard count; the merge folds digests in
ascending shard-index order so floating-point summation order is fixed;
the window size depends only on static service profiles.  Consequently
``same seed + same shard count`` yields identical results regardless of
whether shards run in one process or across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TypeVar

from repro.cluster.resources import Resource
from repro.telemetry.digest import (  # noqa: F401 - shard-merge primitive
    TelemetryDigest,
    merge_telemetry_digests,
)

T = TypeVar("T")

#: Smallest permitted synchronization window (seconds).  Barriers cheaper
#: than this would dominate runtime without improving coupling fidelity:
#: cross-shard demand only feeds the slow queueing-delay contention term,
#: which the unsharded engine itself samples at telemetry cadence.
WINDOW_FLOOR_S = 0.05


def partition_round_robin(items: Sequence[T], shards: int) -> List[List[T]]:
    """Deal ``items`` across ``shards`` buckets round-robin.

    Bucket ``i`` receives ``items[i::shards]``, so the assignment is a
    pure function of input order and shard count — the cornerstone of the
    sharded determinism contract.

    Raises
    ------
    ValueError
        If ``shards < 1`` or there are fewer items than shards (an empty
        shard would stall the window barrier for nothing).
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    if len(items) < shards:
        raise ValueError(
            f"cannot split {len(items)} tenant(s) across {shards} shards; "
            "reduce --shards to at most the tenant count"
        )
    return [list(items[index::shards]) for index in range(shards)]


def conservative_window_s(
    min_service_time_s: float,
    sample_period_s: float = 1.0,
    cross_shard_lookahead_s: Optional[float] = None,
) -> float:
    """Size the conservative synchronization window.

    The window is the interval during which shards run dead-reckoned on
    the other shards' last published demand.  It must be short relative
    to the fastest timescale at which one shard's behaviour becomes
    visible to another:

    * ``min_service_time_s`` — the smallest base service time across all
      deployed services; node demand cannot ramp faster than requests
      complete, so this bounds how quickly cross-shard pressure drifts;
    * ``cross_shard_lookahead_s`` — the minimum latency of any span that
      crosses a shard boundary.  With per-tenant partitioning no span
      crosses shards, so this is ``None`` (unbounded lookahead) and only
      the demand-drift bound applies;
    * ``sample_period_s`` — telemetry cadence; windows longer than one
      sample period would let a whole telemetry tick elapse on stale
      remote demand, so it caps the window.

    The floor (:data:`WINDOW_FLOOR_S`) keeps barrier overhead bounded.
    """
    if min_service_time_s <= 0:
        raise ValueError(
            f"min_service_time_s must be positive, got {min_service_time_s}"
        )
    if sample_period_s <= 0:
        raise ValueError(f"sample_period_s must be positive, got {sample_period_s}")
    window = max(min_service_time_s, WINDOW_FLOOR_S)
    if cross_shard_lookahead_s is not None:
        window = min(window, max(cross_shard_lookahead_s, WINDOW_FLOOR_S))
    return min(window, sample_period_s)


@dataclass
class ShardDigest:
    """What one shard publishes at a window barrier.

    Attributes
    ----------
    shard_index:
        Position of the publishing shard in the shard plan.
    time:
        Barrier time the digest was captured at (virtual seconds).
    node_pressure:
        Per-node demand exerted by this shard's containers, as plain
        ``{node_name: {Resource: float}}`` mappings — already normalized
        units, picklable, and cheap to merge.
    next_event_time:
        Virtual time of the shard's next live event, or None when its
        queue is drained.  The synchronizer uses the minimum across
        shards to skip barriers nobody has work for.
    processed_events:
        Cumulative events executed by the shard's engine, reported so the
        driver can aggregate a cluster-wide events/s figure.
    """

    shard_index: int
    time: float
    node_pressure: Dict[str, Dict[Resource, float]] = field(default_factory=dict)
    next_event_time: Optional[float] = None
    processed_events: int = 0


def merge_remote_pressure(
    digests: Sequence[ShardDigest], for_shard: int
) -> Dict[str, Dict[Resource, float]]:
    """Sum every *other* shard's node demand, for delivery to ``for_shard``.

    Digests are folded in the order given, which the synchronizer fixes
    to ascending shard index — float summation order is part of the
    determinism contract.
    """
    merged: Dict[str, Dict[Resource, float]] = {}
    for digest in digests:
        if digest.shard_index == for_shard:
            continue
        for node_name, values in digest.node_pressure.items():
            into = merged.get(node_name)
            if into is None:
                merged[node_name] = dict(values)
            else:
                for resource, value in values.items():
                    into[resource] = into.get(resource, 0.0) + value
    return merged
