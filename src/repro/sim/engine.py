"""A small but complete discrete-event simulation engine.

The engine maintains a virtual clock and a priority queue of
:class:`~repro.sim.events.Event` objects.  All substrates of the FIRM
reproduction (cluster, workload generators, anomaly injector, controllers)
schedule work on a shared engine so that request execution, telemetry
sampling, and control actions interleave exactly as they would in wall-clock
time on a real cluster.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from repro.sim.events import Event, EventOrderError


class SimulationEngine:
    """Event-queue simulator with a floating-point virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(1.0, lambda eng: fired.append(eng.now))
    >>> engine.run_until(2.0)
    >>> fired
    [1.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._processed = 0
        self._stopped = False
        self._trace_hooks: List[Callable[[Event], None]] = []

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # -------------------------------------------------------------- scheduling
    def schedule(
        self,
        time: float,
        callback: Callable[["SimulationEngine"], Any],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Raises
        ------
        EventOrderError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise EventOrderError(
                f"cannot schedule event {name!r} at t={time:.6f}; clock is at {self._now:.6f}"
            )
        event = Event(time=float(time), priority=priority, callback=callback, name=name)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[["SimulationEngine"], Any],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` after a relative ``delay`` (must be >= 0)."""
        if delay < 0:
            raise EventOrderError(f"negative delay {delay!r} for event {name!r}")
        return self.schedule(self._now + delay, callback, priority=priority, name=name)

    def schedule_recurring(
        self,
        interval: float,
        callback: Callable[["SimulationEngine"], Any],
        *,
        start: Optional[float] = None,
        priority: int = 0,
        name: str = "",
        until: Optional[float] = None,
    ) -> Event:
        """Schedule ``callback`` every ``interval`` seconds.

        The returned event is the *first* occurrence; cancelling it stops the
        whole recurrence.  Subsequent occurrences inherit the cancellation
        flag from a small closure-held state cell.
        """
        if interval <= 0:
            raise ValueError(f"recurring interval must be positive, got {interval}")
        state: Dict[str, Any] = {"cancelled": False}
        first_time = self._now + interval if start is None else start

        def _tick(engine: "SimulationEngine") -> None:
            if state["cancelled"]:
                return
            callback(engine)
            next_time = engine.now + interval
            if until is not None and next_time > until:
                return
            inner = engine.schedule(next_time, _tick, priority=priority, name=name)
            state["current"] = inner

        event = self.schedule(first_time, _tick, priority=priority, name=name)
        state["current"] = event

        original_cancel = event.cancel

        def _cancel_all() -> None:
            state["cancelled"] = True
            current = state.get("current")
            if current is not None:
                current.cancelled = True
            original_cancel()

        event.cancel = _cancel_all  # type: ignore[method-assign]
        return event

    # ------------------------------------------------------------------ hooks
    def add_trace_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook invoked (with the event) after every executed event."""
        self._trace_hooks.append(hook)

    # -------------------------------------------------------------------- run
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            if event.callback is not None:
                event.callback(self)
            self._processed += 1
            for hook in self._trace_hooks:
                hook(event)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events until the clock reaches ``end_time`` (inclusive).

        Events scheduled exactly at ``end_time`` are executed; the clock is
        left at ``end_time`` even if the queue drains earlier.
        """
        if end_time < self._now:
            raise EventOrderError(
                f"run_until({end_time}) is in the past; clock at {self._now}"
            )
        self._stopped = False
        while self._queue and not self._stopped:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains or ``max_events`` events have executed."""
        self._stopped = False
        count = 0
        while self._queue and not self._stopped:
            if max_events is not None and count >= max_events:
                break
            if self.step():
                count += 1

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` loop to stop after this event."""
        self._stopped = True

    # ------------------------------------------------------------------ misc
    def clear(self) -> None:
        """Drop all pending events (the clock is preserved)."""
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationEngine(now={self._now:.3f}, pending={len(self._queue)}, "
            f"processed={self._processed})"
        )
