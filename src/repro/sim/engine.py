"""A small but complete discrete-event simulation engine.

The engine maintains a virtual clock and a priority queue of
:class:`~repro.sim.events.Event` objects.  All substrates of the FIRM
reproduction (cluster, workload generators, anomaly injector, controllers)
schedule work on a shared engine so that request execution, telemetry
sampling, and control actions interleave exactly as they would in wall-clock
time on a real cluster.

Performance notes
-----------------
The engine is the innermost loop of every experiment, so the hot path is
deliberately allocation-light:

* the heap stores plain ``(time, priority, seq, event)`` tuples, so
  ``heapq`` compares C-level floats/ints and never calls back into Python
  rich comparisons (``seq`` is unique, making the event object itself
  unreachable by the comparison);
* :meth:`run_until` and :meth:`run` inline the pop/execute loop instead of
  delegating to :meth:`step`, avoiding one extra frame per event;
* cancelled events are counted as they are cancelled and the heap is
  compacted once they outnumber the live events, so a workload that
  cancels heavily cannot degrade pop cost for everyone else.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.events import Event, EventOrderError

#: Queue entry: ``(time, priority, seq, event)``.
_QueueEntry = Tuple[float, int, int, Event]

#: Heaps smaller than this are never compacted — rebuilding a tiny heap
#: costs more than skipping its cancelled entries on pop.
_COMPACTION_MIN_QUEUE = 64


class SimulationEngine:
    """Event-queue simulator with a floating-point virtual clock.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(1.0, lambda eng: fired.append(eng.now))
    >>> engine.run_until(2.0)
    >>> fired
    [1.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_QueueEntry] = []
        self._processed = 0
        self._stopped = False
        self._cancelled_in_queue = 0
        self._trace_hooks: List[Callable[[Event], None]] = []

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued.

        Contract: cancelled events do **not** count — they are dead weight
        awaiting removal (lazily on pop, or eagerly when the heap is
        compacted), not schedulable work.  ``pending_events == 0`` therefore
        means the simulation has nothing left to do even if the internal
        heap still holds cancelled entries.
        """
        return len(self._queue) - self._cancelled_in_queue

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next *live* event, or None when idle.

        Dead (cancelled) heads are popped on the way, so the answer is
        exact; the windowed shard synchronizer uses it to skip barriers
        that no shard has events for.
        """
        queue = self._queue
        while queue:
            head = queue[0]
            event = head[3]
            if event.cancelled:
                heapq.heappop(queue)
                event._in_queue = False
                self._cancelled_in_queue -= 1
                continue
            return head[0]
        return None

    # -------------------------------------------------------------- scheduling
    def schedule(
        self,
        time: float,
        callback: Callable[["SimulationEngine"], Any],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``.

        Raises
        ------
        EventOrderError
            If ``time`` is earlier than the current clock.
        """
        if time < self._now:
            raise EventOrderError(
                f"cannot schedule event {name!r} at t={time:.6f}; clock is at {self._now:.6f}"
            )
        event = Event(time=float(time), priority=priority, callback=callback, name=name)
        event._engine = self
        event._in_queue = True
        heapq.heappush(self._queue, (event.time, priority, event.seq, event))
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[["SimulationEngine"], Any],
        *,
        priority: int = 0,
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` after a relative ``delay`` (must be >= 0)."""
        if delay < 0:
            raise EventOrderError(f"negative delay {delay!r} for event {name!r}")
        return self.schedule(self._now + delay, callback, priority=priority, name=name)

    def schedule_recurring(
        self,
        interval: float,
        callback: Callable[["SimulationEngine"], Any],
        *,
        start: Optional[float] = None,
        priority: int = 0,
        name: str = "",
        until: Optional[float] = None,
    ) -> Event:
        """Schedule ``callback`` every ``interval`` seconds.

        The returned event is the *first* occurrence; cancelling it stops the
        whole recurrence.  Subsequent occurrences inherit the cancellation
        flag from a small closure-held state cell.
        """
        if interval <= 0:
            raise ValueError(f"recurring interval must be positive, got {interval}")
        state: Dict[str, Any] = {"cancelled": False, "current": None}
        first_time = self._now + interval if start is None else start

        def _tick(engine: "SimulationEngine") -> None:
            if state["cancelled"]:
                return
            callback(engine)
            next_time = engine.now + interval
            if until is not None and next_time > until:
                return
            inner = engine.schedule(next_time, _tick, priority=priority, name=name)
            state["current"] = inner

        event = self.schedule(first_time, _tick, priority=priority, name=name)
        state["current"] = event

        def _cancel_chain() -> None:
            state["cancelled"] = True
            current = state["current"]
            if current is not None and current is not event:
                current.cancel()

        event._on_cancel = _cancel_chain
        return event

    # ------------------------------------------------------------------ hooks
    def add_trace_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook invoked (with the event) after every executed event."""
        self._trace_hooks.append(hook)

    # ---------------------------------------------------------- cancellation
    def _note_cancelled(self, event: Event) -> None:
        """Record one cancellation; compact the heap when dead weight wins.

        Called by :meth:`Event.cancel`.  Once cancelled entries exceed half
        the queue (and the queue is big enough for compaction to pay off),
        the heap is rebuilt with only live events so pop cost stays
        proportional to real work.
        """
        if not event._in_queue:
            return
        self._cancelled_in_queue += 1
        queue_size = len(self._queue)
        if (
            queue_size >= _COMPACTION_MIN_QUEUE
            and self._cancelled_in_queue * 2 > queue_size
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the heap and re-heapify.

        The queue is compacted **in place** (slice assignment, not
        rebinding): cancellation can happen inside an event callback while
        ``run_until``/``run``/``step`` hold a local alias to the queue
        list, and a rebound list would leave the running loop draining a
        stale heap — executing events twice and corrupting the
        cancellation count.
        """
        live = [entry for entry in self._queue if not entry[3].cancelled]
        for entry in self._queue:
            event = entry[3]
            if event.cancelled:
                event._in_queue = False
        self._queue[:] = live
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    # -------------------------------------------------------------------- run
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when queue is empty."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)[3]
            event._in_queue = False
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = event.time
            if event.callback is not None:
                event.callback(self)
            self._processed += 1
            for hook in self._trace_hooks:
                hook(event)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events until the clock reaches ``end_time`` (inclusive).

        Events scheduled exactly at ``end_time`` are executed; the clock is
        left at ``end_time`` even if the queue drains earlier.
        """
        if end_time < self._now:
            raise EventOrderError(
                f"run_until({end_time}) is in the past; clock at {self._now}"
            )
        self._stopped = False
        queue = self._queue
        heappop = heapq.heappop
        hooks = self._trace_hooks
        while queue and not self._stopped:
            head = queue[0]
            event = head[3]
            if event.cancelled:
                heappop(queue)
                event._in_queue = False
                self._cancelled_in_queue -= 1
                continue
            if head[0] > end_time:
                break
            heappop(queue)
            event._in_queue = False
            self._now = event.time
            callback = event.callback
            if callback is not None:
                callback(self)
            self._processed += 1
            if hooks:
                for hook in hooks:
                    hook(event)
        if end_time > self._now:
            self._now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains or ``max_events`` events have executed."""
        self._stopped = False
        count = 0
        while self._queue and not self._stopped:
            if max_events is not None and count >= max_events:
                break
            if self.step():
                count += 1

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` loop to stop after this event."""
        self._stopped = True

    # ------------------------------------------------------------------ misc
    def clear(self) -> None:
        """Drop all pending events (the clock is preserved)."""
        for entry in self._queue:
            entry[3]._in_queue = False
        self._queue.clear()
        self._cancelled_in_queue = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationEngine(now={self._now:.3f}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )
