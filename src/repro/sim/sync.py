"""Conservative time-window synchronization across simulation shards.

Classic conservative parallel discrete-event simulation advances every
logical process to a common barrier whose spacing is bounded by the
*lookahead* — the minimum delay before one process's actions can affect
another.  Here the logical processes are per-tenant shards whose only
coupling is node-level resource contention: a shard's containers add
demand to the shared nodes' best-effort pools, slowing everyone else's
service times through the queueing-delay curve.

The synchronizer therefore runs a strict two-phase loop per window:

1. **advance** — every shard runs its own event heap up to the barrier
   (shards are causally independent inside a window because remote
   demand is held frozen);
2. **exchange** — every shard publishes a :class:`ShardDigest` with its
   per-node demand, the digests of all *other* shards are folded in
   ascending shard-index order, and the sum is installed as that shard's
   remote node pressure for the next window.

Both phases are send-all-then-collect-all so that cross-process shard
workers advance concurrently; the in-process channel simply does the
work at collect time.  Window sizing is
:func:`repro.sim.shard.conservative_window_s`.

Idle-window skipping: when every shard's next live event lies beyond the
upcoming barrier, intermediate barriers are provably no-ops (no events
=> no demand change => identical digests), so the loop jumps straight to
the barrier of the window containing the earliest event.  The skip is a
pure function of the collected digests, preserving determinism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

from repro.cluster.resources import Resource
from repro.sim.shard import ShardDigest, merge_remote_pressure


class ShardChannel(Protocol):
    """Two-phase control surface of one shard, local or remote.

    ``begin_*`` must not block on the shard doing work; ``collect_*``
    retrieves (or performs) it.  The synchronizer always calls begin on
    every channel before collecting from any, so process-backed channels
    overlap shard execution.
    """

    def begin_advance(self, barrier_time: float) -> None:
        """Ask the shard to run its event heap up to ``barrier_time``."""

    def collect_digest(self) -> ShardDigest:
        """Block until the advance completes; return the shard's digest."""

    def begin_apply(self, pressure: Dict[str, Dict[Resource, float]]) -> None:
        """Deliver merged remote node demand for the next window."""

    def collect_apply(self) -> None:
        """Block until the pressure application is acknowledged."""


@dataclass
class SyncStats:
    """Outcome of one synchronized run."""

    barriers: int = 0
    skipped_windows: int = 0
    window_s: float = 0.0


class ConservativeWindowSync:
    """Drive a set of shard channels through the windowed barrier loop.

    Parameters
    ----------
    channels:
        One channel per shard, indexed by shard position; digests are
        merged in this (ascending) order.
    start_time, end_time:
        Virtual-time span to cover.  Barriers sit at
        ``start_time + k * window_s`` (clamped to ``end_time``), so the
        barrier schedule is a pure function of the window size and never
        accumulates floating-point drift.
    window_s:
        Barrier spacing from :func:`conservative_window_s`.
    observer:
        Optional callback ``observer(index, target_time, stats)`` invoked
        after each barrier's digests are collected — the hook the sharded
        runner's observability journal uses to record barrier advances.
        Runs on the driver, so it never perturbs shard determinism.
    """

    def __init__(
        self,
        channels: Sequence[ShardChannel],
        start_time: float,
        end_time: float,
        window_s: float,
        observer=None,
    ) -> None:
        if not channels:
            raise ValueError("at least one shard channel is required")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if end_time < start_time:
            raise ValueError(
                f"end_time {end_time} precedes start_time {start_time}"
            )
        self.channels = list(channels)
        self.start_time = float(start_time)
        self.end_time = float(end_time)
        self.window_s = float(window_s)
        self.observer = observer

    def _barrier_time(self, index: int) -> float:
        time = self.start_time + index * self.window_s
        return time if time < self.end_time else self.end_time

    def run(self) -> SyncStats:
        """Advance every shard to ``end_time`` through window barriers."""
        stats = SyncStats(window_s=self.window_s)
        channels = self.channels
        final_index = max(
            1, math.ceil((self.end_time - self.start_time) / self.window_s)
        )
        index = 0
        while index < final_index:
            index += 1
            target = self._barrier_time(index)

            for channel in channels:
                channel.begin_advance(target)
            digests: List[ShardDigest] = [
                channel.collect_digest() for channel in channels
            ]
            stats.barriers += 1
            if self.observer is not None:
                self.observer(index, target, stats)

            if index >= final_index:
                break

            for shard_index, channel in enumerate(channels):
                channel.begin_apply(merge_remote_pressure(digests, shard_index))
            for channel in channels:
                channel.collect_apply()

            next_times = [
                digest.next_event_time
                for digest in digests
                if digest.next_event_time is not None
            ]
            if not next_times:
                # Every heap is drained; all remaining barriers are no-ops,
                # so jump straight to the final one (clocks still advance
                # to end_time there).
                stats.skipped_windows += final_index - index - 1
                index = final_index - 1
                continue
            min_next = min(next_times)
            if min_next > target:
                # The earliest future event lies in window ``containing``;
                # every barrier before that window's end exchanges
                # identical digests and can be skipped.  ceil() rounding
                # either way is safe: a barrier too early is merely
                # redundant, a barrier at the window end still executes
                # the event (run_until is inclusive).
                containing = math.ceil(
                    (min_next - self.start_time) / self.window_s
                )
                next_index = min(max(index + 1, containing), final_index)
                stats.skipped_windows += next_index - index - 1
                index = next_index - 1
        return stats


__all__ = [
    "ConservativeWindowSync",
    "ShardChannel",
    "SyncStats",
]
