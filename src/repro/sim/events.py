"""Event objects for the discrete-event simulation engine."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional


class EventOrderError(RuntimeError):
    """Raised when an event is scheduled in the past of the simulation clock."""


_sequence = itertools.count()


class Event:
    """A unit of scheduled work.

    Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
    monotonically increasing counter that breaks ties deterministically so
    that two events scheduled for the same instant always execute in the
    order they were created.  The engine's heap stores plain
    ``(time, priority, seq, event)`` tuples so the priority queue compares
    C-level ints/floats instead of invoking rich comparisons on ``Event``
    objects; the ``__lt__`` defined here is kept for direct comparisons in
    user code and tests.

    The class uses ``__slots__`` — events are the single most allocated
    object in a simulation, and slotted instances are both smaller and
    faster to create than dict-backed ones.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Lower values run earlier among events with equal ``time``.
    callback:
        Callable invoked as ``callback(engine)`` when the event fires.
    name:
        Optional human-readable label used in traces and error messages.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "name",
        "cancelled",
        "_engine",
        "_in_queue",
        "_on_cancel",
    )

    def __init__(
        self,
        time: float,
        priority: int = 0,
        seq: Optional[int] = None,
        callback: Optional[Callable[..., Any]] = None,
        name: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = next(_sequence) if seq is None else seq
        self.callback = callback
        self.name = name
        self.cancelled = cancelled
        #: Engine whose queue currently holds this event (set by the
        #: engine when scheduled so cancellation can be accounted for).
        self._engine = None
        self._in_queue = False
        #: Optional callable invoked exactly once when the event is
        #: cancelled (used by recurring schedules to stop the whole chain).
        self._on_cancel: Optional[Callable[[], None]] = None

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it when popped.

        Cancelling is idempotent.  The owning engine is notified so that
        :attr:`SimulationEngine.pending_events` can exclude cancelled
        events and the heap can be compacted when cancellations pile up.
        """
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            engine._note_cancelled(self)
        on_cancel = self._on_cancel
        if on_cancel is not None:
            self._on_cancel = None
            on_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or (self.callback.__name__ if self.callback else "<none>")
        return f"Event(t={self.time:.6f}, prio={self.priority}, name={label!r})"
