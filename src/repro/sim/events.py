"""Event objects for the discrete-event simulation engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class EventOrderError(RuntimeError):
    """Raised when an event is scheduled in the past of the simulation clock."""


_sequence = itertools.count()


@dataclass(order=True)
class Event:
    """A unit of scheduled work.

    Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
    monotonically increasing counter that breaks ties deterministically so
    that two events scheduled for the same instant always execute in the
    order they were created.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Lower values run earlier among events with equal ``time``.
    callback:
        Callable invoked as ``callback(engine)`` when the event fires.
    name:
        Optional human-readable label used in traces and error messages.
    """

    time: float
    priority: int = 0
    seq: int = field(default_factory=lambda: next(_sequence))
    callback: Optional[Callable[..., Any]] = field(default=None, compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or (self.callback.__name__ if self.callback else "<none>")
        return f"Event(t={self.time:.6f}, prio={self.priority}, name={label!r})"
