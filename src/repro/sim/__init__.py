"""Discrete-event simulation substrate used by the FIRM reproduction.

The paper evaluates FIRM on a physical Kubernetes cluster; here every
experiment runs on a deterministic discrete-event simulation.  The package
provides:

* :class:`repro.sim.engine.SimulationEngine` -- a classic event-queue /
  virtual-clock engine with support for scheduled callbacks, recurring
  processes, and run-until semantics.
* :class:`repro.sim.events.Event` -- the scheduled-work unit.
* :class:`repro.sim.rng.SeededRNG` -- a thin wrapper over
  :class:`numpy.random.Generator` with named substreams so that independent
  subsystems (workload, anomalies, service times) draw from decoupled,
  reproducible streams.
* :mod:`repro.sim.shard` / :mod:`repro.sim.sync` -- partitioning
  primitives and the conservative time-window barrier used by the
  sharded engine (one event heap per tenant shard, cross-shard demand
  exchanged as digests at window boundaries).
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventOrderError
from repro.sim.rng import SeededRNG
from repro.sim.shard import (
    ShardDigest,
    conservative_window_s,
    merge_remote_pressure,
    partition_round_robin,
)
from repro.sim.sync import ConservativeWindowSync, ShardChannel, SyncStats

__all__ = [
    "SimulationEngine",
    "Event",
    "EventOrderError",
    "SeededRNG",
    "ShardDigest",
    "conservative_window_s",
    "merge_remote_pressure",
    "partition_round_robin",
    "ConservativeWindowSync",
    "ShardChannel",
    "SyncStats",
]
