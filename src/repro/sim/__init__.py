"""Discrete-event simulation substrate used by the FIRM reproduction.

The paper evaluates FIRM on a physical Kubernetes cluster; here every
experiment runs on a deterministic discrete-event simulation.  The package
provides:

* :class:`repro.sim.engine.SimulationEngine` -- a classic event-queue /
  virtual-clock engine with support for scheduled callbacks, recurring
  processes, and run-until semantics.
* :class:`repro.sim.events.Event` -- the scheduled-work unit.
* :class:`repro.sim.rng.SeededRNG` -- a thin wrapper over
  :class:`numpy.random.Generator` with named substreams so that independent
  subsystems (workload, anomalies, service times) draw from decoupled,
  reproducible streams.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventOrderError
from repro.sim.rng import SeededRNG

__all__ = ["SimulationEngine", "Event", "EventOrderError", "SeededRNG"]
