"""Performance anomaly injection framework.

The paper trains and evaluates FIRM by artificially creating resource
contention (§3.6): seven anomaly types (workload variation, network delay,
CPU utilization, LLC bandwidth/capacity, memory bandwidth, I/O bandwidth,
network bandwidth) with configurable intensity, duration, and timing.  This
package provides the simulated equivalent: each anomaly consumes part of a
node's capacity for the affected resources (or inflates offered load /
network delay) so that co-located containers experience genuine contention.

Injection is replica- and tenant-aware: each
:class:`~repro.anomaly.anomalies.AnomalySpec` carries an
:class:`~repro.anomaly.anomalies.AnomalyScope` deciding whether pressure
lands on one pinned node (the historical default), one replica's node,
every node hosting the target's live replica set, or every node a tenant
occupies — multi-node scopes re-resolve on cluster scale events.  Actual
pressure always covers exactly ``[start_s, end_s)``, the same window the
ground-truth queries report, so localization and mitigation scores (see
:mod:`repro.experiments.resilience`) are measured against a byte-aligned
reference.
"""

from repro.anomaly.anomalies import (
    ANOMALY_TYPES,
    AnomalyScope,
    AnomalyType,
    AnomalySpec,
)
from repro.anomaly.injector import ActiveAnomaly, PerformanceAnomalyInjector
from repro.anomaly.campaigns import (
    AnomalyCampaign,
    multi_anomaly_campaign,
    random_campaign,
    single_anomaly_sweep,
)

__all__ = [
    "ANOMALY_TYPES",
    "AnomalyScope",
    "AnomalyType",
    "AnomalySpec",
    "ActiveAnomaly",
    "PerformanceAnomalyInjector",
    "AnomalyCampaign",
    "single_anomaly_sweep",
    "multi_anomaly_campaign",
    "random_campaign",
]
