"""Performance anomaly injection framework.

The paper trains and evaluates FIRM by artificially creating resource
contention (§3.6): seven anomaly types (workload variation, network delay,
CPU utilization, LLC bandwidth/capacity, memory bandwidth, I/O bandwidth,
network bandwidth) with configurable intensity, duration, and timing.  This
package provides the simulated equivalent: each anomaly consumes part of a
node's capacity for the affected resources (or inflates offered load /
network delay) so that co-located containers experience genuine contention.
"""

from repro.anomaly.anomalies import (
    ANOMALY_TYPES,
    AnomalyType,
    AnomalySpec,
)
from repro.anomaly.injector import ActiveAnomaly, PerformanceAnomalyInjector
from repro.anomaly.campaigns import (
    AnomalyCampaign,
    multi_anomaly_campaign,
    random_campaign,
    single_anomaly_sweep,
)

__all__ = [
    "ANOMALY_TYPES",
    "AnomalyType",
    "AnomalySpec",
    "ActiveAnomaly",
    "PerformanceAnomalyInjector",
    "AnomalyCampaign",
    "single_anomaly_sweep",
    "multi_anomaly_campaign",
    "random_campaign",
]
