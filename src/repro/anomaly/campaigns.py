"""Anomaly injection campaigns.

Campaigns bundle many :class:`~repro.anomaly.anomalies.AnomalySpec`
injections into the schedules used by the evaluation:

* **single-anomaly sweeps** (Fig. 9(a)): for one anomaly type, intensity is
  swept from the SLO-violation threshold upward against one target service
  at a time;
* **multi-anomaly campaigns** (Fig. 9(b)/(c)): time is divided into fixed
  windows and each window draws an intensity for every anomaly type
  uniformly at random;
* **random campaigns** (§4.1 baseline comparison): anomalies arrive with
  exponentially distributed inter-arrival times (λ = 0.33 /s by default),
  with type and intensity drawn uniformly at random.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.anomaly.anomalies import ANOMALY_TYPES, AnomalyScope, AnomalySpec, AnomalyType
from repro.sim.rng import SeededRNG


@dataclass
class AnomalyCampaign:
    """A named collection of anomaly injections plus their ground truth."""

    name: str
    specs: List[AnomalySpec] = field(default_factory=list)

    def add(self, spec: AnomalySpec) -> None:
        self.specs.append(spec)

    def ground_truth(self, time_s: float) -> List[str]:
        """Services under active injection at ``time_s``."""
        return sorted(
            {
                spec.target_service
                for spec in self.specs
                if spec.start_s <= time_s < spec.end_s
            }
        )

    def end_time(self) -> float:
        """Time at which the last injection ends."""
        return max((spec.end_s for spec in self.specs), default=0.0)

    def intensity_timeline(
        self, window_s: float
    ) -> List[Dict[AnomalyType, float]]:
        """Per-window maximum intensity for each anomaly type (Fig. 9(c))."""
        end = self.end_time()
        windows = int(end // window_s) + (1 if end % window_s else 0)
        timeline: List[Dict[AnomalyType, float]] = []
        for index in range(windows):
            start = index * window_s
            stop = start + window_s
            snapshot: Dict[AnomalyType, float] = {atype: 0.0 for atype in ANOMALY_TYPES}
            for spec in self.specs:
                if spec.start_s < stop and spec.end_s > start:
                    snapshot[spec.anomaly_type] = max(
                        snapshot[spec.anomaly_type], spec.intensity
                    )
            timeline.append(snapshot)
        return timeline


def single_anomaly_sweep(
    anomaly_type: AnomalyType,
    target_service: str,
    intensities: Sequence[float],
    step_duration_s: float = 20.0,
    gap_s: float = 10.0,
    start_s: float = 10.0,
    scope: AnomalyScope = AnomalyScope.NODE,
) -> AnomalyCampaign:
    """Sweep one anomaly type's intensity against one service (Fig. 9(a)).

    Each intensity level is injected for ``step_duration_s`` seconds with a
    recovery gap of ``gap_s`` seconds between levels.  ``scope`` selects
    where the pressure lands (default: the historical first-replica node).
    """
    campaign = AnomalyCampaign(name=f"sweep:{anomaly_type.value}:{target_service}")
    time = start_s
    for intensity in intensities:
        campaign.add(
            AnomalySpec(
                anomaly_type=anomaly_type,
                target_service=target_service,
                start_s=time,
                duration_s=step_duration_s,
                intensity=float(intensity),
                scope=scope,
            )
        )
        time += step_duration_s + gap_s
    return campaign


def multi_anomaly_campaign(
    target_services: Sequence[str],
    rng: SeededRNG,
    windows: int = 12,
    window_s: float = 10.0,
    anomaly_types: Sequence[AnomalyType] = ANOMALY_TYPES,
    start_s: float = 5.0,
    scope: AnomalyScope = AnomalyScope.NODE,
) -> AnomalyCampaign:
    """Multi-anomaly campaign in fixed windows (Fig. 9(b)/(c)).

    In each window every anomaly type draws an intensity uniformly at random
    in [0, 1] and a target service uniformly at random; intensities below
    0.05 are skipped (effectively "off" for that window).  ``scope``
    selects where each injection's pressure lands; the RNG draws are
    identical across scopes, so the same seed yields the same schedule.
    """
    campaign = AnomalyCampaign(name="multi-anomaly")
    stream = rng.stream("campaign:multi")
    for window_index in range(windows):
        window_start = start_s + window_index * window_s
        for anomaly_type in anomaly_types:
            intensity = float(stream.uniform(0.0, 1.0))
            if intensity < 0.05:
                continue
            target = target_services[int(stream.integers(0, len(target_services)))]
            campaign.add(
                AnomalySpec(
                    anomaly_type=anomaly_type,
                    target_service=target,
                    start_s=window_start,
                    duration_s=window_s,
                    intensity=intensity,
                    scope=scope,
                )
            )
    return campaign


def random_campaign(
    target_services: Sequence[str],
    rng: SeededRNG,
    duration_s: float,
    rate_per_s: float = 0.33,
    min_duration_s: float = 5.0,
    max_duration_s: float = 20.0,
    anomaly_types: Sequence[AnomalyType] = ANOMALY_TYPES,
    min_intensity: float = 0.3,
    start_s: float = 5.0,
    scope: AnomalyScope = AnomalyScope.NODE,
) -> AnomalyCampaign:
    """Random anomaly arrivals (the §4.1 injection baseline).

    Anomaly inter-arrival times are exponential with rate ``rate_per_s``
    (λ = 0.33 /s in the paper); type, target, duration, and intensity are
    drawn uniformly at random.  ``scope`` selects where each injection's
    pressure lands; the RNG draws are identical across scopes.
    """
    campaign = AnomalyCampaign(name="random")
    stream = rng.stream("campaign:random")
    time = start_s
    while time < duration_s:
        gap = float(stream.exponential(1.0 / rate_per_s))
        time += gap
        if time >= duration_s:
            break
        anomaly_type = anomaly_types[int(stream.integers(0, len(anomaly_types)))]
        target = target_services[int(stream.integers(0, len(target_services)))]
        duration = float(stream.uniform(min_duration_s, max_duration_s))
        intensity = float(stream.uniform(min_intensity, 1.0))
        campaign.add(
            AnomalySpec(
                anomaly_type=anomaly_type,
                target_service=target,
                start_s=time,
                duration_s=duration,
                intensity=intensity,
                scope=scope,
            )
        )
    return campaign
