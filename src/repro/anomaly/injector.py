"""Performance anomaly injector.

Schedules :class:`~repro.anomaly.anomalies.AnomalySpec` injections against
the simulated cluster.  Resource anomalies add pressure to the node hosting
the target service for the injection window; workload-variation anomalies
temporarily multiply the workload generator's offered rate; network-delay
anomalies add latency to the target service's spans by inflating its node's
network pressure.

The injector keeps a full audit log so experiments can use it as ground
truth for localization accuracy (Fig. 9) and for RL training labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.anomaly.anomalies import AnomalySpec, AnomalyType
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.sim.engine import SimulationEngine
from repro.workload.generators import WorkloadGenerator
from repro.workload.patterns import ArrivalPattern


@dataclass
class ActiveAnomaly:
    """Bookkeeping for an injected (possibly still active) anomaly."""

    spec: AnomalySpec
    node: Optional[Node]
    pressure: ResourceVector
    injected_at: float
    removed_at: Optional[float] = None

    @property
    def is_active(self) -> bool:
        return self.removed_at is None


class _InflatedPattern(ArrivalPattern):
    """Wraps an arrival pattern, multiplying the rate during active windows."""

    def __init__(self, inner: ArrivalPattern) -> None:
        self.inner = inner
        #: (start, end, multiplier) windows currently registered.
        self.windows: List[List[float]] = []

    def add_window(self, start: float, end: float, multiplier: float) -> None:
        self.windows.append([start, end, multiplier])

    def rate_at(self, time_s: float) -> float:
        rate = self.inner.rate_at(time_s)
        for start, end, multiplier in self.windows:
            if start <= time_s < end:
                rate *= multiplier
        return rate


class PerformanceAnomalyInjector:
    """Injects performance anomalies into the simulated cluster.

    Parameters
    ----------
    cluster:
        Target cluster.
    engine:
        Shared simulation engine.
    workload:
        Optional workload generator; required only for
        :data:`AnomalyType.WORKLOAD_VARIATION` injections.
    """

    #: Load multiplier at intensity 1.0 for workload-variation anomalies.
    MAX_LOAD_MULTIPLIER = 4.0

    def __init__(
        self,
        cluster: Cluster,
        engine: SimulationEngine,
        workload: Optional[WorkloadGenerator] = None,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.workload = workload
        self.log: List[ActiveAnomaly] = []
        if workload is not None and not isinstance(workload.pattern, _InflatedPattern):
            workload.pattern = _InflatedPattern(workload.pattern)

    # ------------------------------------------------------------ scheduling
    def schedule(self, spec: AnomalySpec) -> ActiveAnomaly:
        """Schedule one injection; returns its bookkeeping record."""
        record = ActiveAnomaly(
            spec=spec,
            node=None,
            pressure=ResourceVector(),
            injected_at=spec.start_s,
        )
        self.log.append(record)
        if spec.start_s <= self.engine.now:
            self._begin(record)
        else:
            self.engine.schedule(
                spec.start_s, lambda eng: self._begin(record), name=f"anomaly-start:{spec.anomaly_type.value}"
            )
        return record

    def schedule_all(self, specs: List[AnomalySpec]) -> List[ActiveAnomaly]:
        """Schedule a batch of injections."""
        return [self.schedule(spec) for spec in specs]

    # ------------------------------------------------------------- lifecycle
    def _begin(self, record: ActiveAnomaly) -> None:
        spec = record.spec
        if spec.anomaly_type is AnomalyType.WORKLOAD_VARIATION:
            self._begin_workload_variation(record)
        else:
            self._begin_resource_pressure(record)
        self.engine.schedule_after(
            spec.duration_s, lambda eng: self._end(record), name=f"anomaly-end:{spec.anomaly_type.value}"
        )

    def _begin_resource_pressure(self, record: ActiveAnomaly) -> None:
        spec = record.spec
        node = self._resolve_node(spec.target_service)
        if node is None:
            record.removed_at = self.engine.now
            return
        pressure = spec.pressure_vector(node.capacity)
        node.inject_pressure(pressure)
        record.node = node
        record.pressure = pressure

    def _begin_workload_variation(self, record: ActiveAnomaly) -> None:
        spec = record.spec
        if self.workload is None:
            record.removed_at = self.engine.now
            return
        pattern = self.workload.pattern
        if not isinstance(pattern, _InflatedPattern):
            pattern = _InflatedPattern(pattern)
            self.workload.pattern = pattern
        multiplier = 1.0 + spec.intensity * (self.MAX_LOAD_MULTIPLIER - 1.0)
        pattern.add_window(self.engine.now, self.engine.now + spec.duration_s, multiplier)

    def _end(self, record: ActiveAnomaly) -> None:
        if record.removed_at is not None:
            return
        if record.node is not None:
            record.node.remove_pressure(record.pressure)
        record.removed_at = self.engine.now

    def _resolve_node(self, service_name: str) -> Optional[Node]:
        replicas = self.cluster.replicas_of(service_name)
        if not replicas:
            return None
        return replicas[0].container.node

    # ---------------------------------------------------------------- queries
    def active_anomalies(self) -> List[ActiveAnomaly]:
        """Anomalies currently applying pressure."""
        return [record for record in self.log if record.is_active and record.injected_at <= self.engine.now]

    def ground_truth_services(self, at_time: Optional[float] = None) -> List[str]:
        """Services targeted by anomalies active at ``at_time`` (default: now).

        Used as ground truth when scoring localization accuracy.
        """
        time = self.engine.now if at_time is None else at_time
        services: List[str] = []
        for record in self.log:
            spec = record.spec
            if spec.start_s <= time < spec.end_s and spec.target_service not in services:
                services.append(spec.target_service)
        return services

    def clear(self) -> None:
        """Remove all active pressure immediately (end of an experiment)."""
        for record in self.log:
            if record.is_active and record.node is not None:
                record.node.remove_pressure(record.pressure)
                record.removed_at = self.engine.now
