"""Performance anomaly injector.

Schedules :class:`~repro.anomaly.anomalies.AnomalySpec` injections against
the simulated cluster.  Resource anomalies add pressure to the node(s)
resolved by the spec's :class:`~repro.anomaly.anomalies.AnomalyScope` for
the injection window; workload-variation anomalies temporarily multiply
the workload generator's offered rate; network-delay anomalies add latency
to the target service's spans by inflating its node's network pressure.

The injector is replica- and tenant-aware: multi-node scopes
(``service_wide``, ``tenant``) apply one pressure vector per node across
the target's *live* replica set and re-resolve their node sets when the
cluster scales the target out or in (via the cluster's scale listeners, the
same refresh channel the request router uses).  The default ``node`` scope
reproduces the historical behaviour — pressure pinned to the first
replica's node, resolved once — byte for byte.

Timing contract: pressure is applied over exactly ``[start_s, end_s)``
(clamped to the present for late-registered specs), so the audit log, the
node-pressure timeline, and :meth:`ground_truth_services` always agree —
experiments score localization accuracy (Fig. 9) and mitigation against
this ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.anomaly.anomalies import AnomalyScope, AnomalySpec, AnomalyType
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event
from repro.workload.generators import WorkloadGenerator
from repro.workload.patterns import ArrivalPattern

#: Scopes whose node sets must be re-resolved on cluster scale events.
_DYNAMIC_SCOPES = (AnomalyScope.REPLICA, AnomalyScope.SERVICE_WIDE, AnomalyScope.TENANT)


@dataclass
class ActiveAnomaly:
    """Bookkeeping for an injected (possibly still active) anomaly.

    ``node``/``pressure`` describe the *primary* target (the first node the
    pressure landed on — for the default ``node`` scope, the only one);
    multi-node scopes record every ``(node, pressure)`` pair in
    :attr:`applied`.
    """

    spec: AnomalySpec
    node: Optional[Node]
    pressure: ResourceVector
    injected_at: float
    removed_at: Optional[float] = None
    #: Every node currently (or, after the anomaly ended, last) under this
    #: anomaly's pressure, with the per-node pressure vector applied to it.
    applied: List[Tuple[Node, ResourceVector]] = field(default_factory=list)
    _start_event: Optional[Event] = field(default=None, init=False, repr=False)
    _end_event: Optional[Event] = field(default=None, init=False, repr=False)

    @property
    def is_active(self) -> bool:
        return self.removed_at is None

    def nodes(self) -> List[Node]:
        """All nodes this anomaly is applying pressure to."""
        return [node for node, _ in self.applied]


class _InflatedPattern(ArrivalPattern):
    """Wraps an arrival pattern, multiplying the rate during active windows.

    Windows are pruned as they expire: adding a window drops every window
    that ended at or before the new one's start (queries only ever move
    forward in time), so a long campaign keeps the scan in :meth:`rate_at`
    bounded by the number of *concurrently* active windows instead of every
    window ever added.
    """

    def __init__(self, inner: ArrivalPattern) -> None:
        self.inner = inner
        #: (start, end, multiplier) windows currently registered.
        self.windows: List[List[float]] = []

    def add_window(self, start: float, end: float, multiplier: float) -> None:
        if self.windows:
            self.windows = [window for window in self.windows if window[1] > start]
        self.windows.append([start, end, multiplier])

    def rate_at(self, time_s: float) -> float:
        rate = self.inner.rate_at(time_s)
        for start, end, multiplier in self.windows:
            if start <= time_s < end:
                rate *= multiplier
        return rate


class PerformanceAnomalyInjector:
    """Injects performance anomalies into the simulated cluster.

    Parameters
    ----------
    cluster:
        Target cluster — the shared :class:`~repro.cluster.cluster.Cluster`
        or one tenant's :class:`~repro.cluster.cluster.TenantClusterView`
        (tenant-scoped injections then cover exactly that tenant's
        services).
    engine:
        Shared simulation engine.
    workload:
        Optional workload generator; required only for
        :data:`AnomalyType.WORKLOAD_VARIATION` injections.
    obs:
        Optional :class:`~repro.obs.run.Observability` bundle; when set,
        every inject/clear is journalled (``anomaly_inject`` /
        ``anomaly_clear`` records with scope and node set).
    """

    #: Load multiplier at intensity 1.0 for workload-variation anomalies.
    MAX_LOAD_MULTIPLIER = 4.0

    def __init__(
        self,
        cluster: Cluster,
        engine: SimulationEngine,
        workload: Optional[WorkloadGenerator] = None,
        obs=None,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.workload = workload
        self.obs = obs
        self.log: List[ActiveAnomaly] = []
        #: Active records with a dynamic scope (re-resolved on scale events).
        self._dynamic: List[ActiveAnomaly] = []
        self._listening = False
        if workload is not None and not isinstance(workload.pattern, _InflatedPattern):
            workload.pattern = _InflatedPattern(workload.pattern)

    # ------------------------------------------------------------ scheduling
    def schedule(self, spec: AnomalySpec) -> ActiveAnomaly:
        """Schedule one injection; returns its bookkeeping record.

        Late registrations are clamped to the spec's own window: a spec
        whose window already started begins immediately but still ends at
        ``spec.end_s``; a spec whose window fully passed is never applied.
        Either way actual pressure covers ``[start_s, end_s) ∩ [now, ∞)``,
        in agreement with :meth:`ground_truth_services`.
        """
        record = ActiveAnomaly(
            spec=spec,
            node=None,
            pressure=ResourceVector(),
            injected_at=spec.start_s,
        )
        self.log.append(record)
        now = self.engine.now
        if spec.end_s <= now:
            # The whole window is in the past: nothing is injected, and
            # the removal time pins the effective window empty so ground
            # truth never reports pressure that was never applied.
            record.removed_at = spec.start_s
        elif spec.start_s <= now:
            self._begin(record)
        else:
            record._start_event = self.engine.schedule(
                spec.start_s, lambda eng: self._begin(record), name=f"anomaly-start:{spec.anomaly_type.value}"
            )
        return record

    def schedule_all(self, specs: List[AnomalySpec]) -> List[ActiveAnomaly]:
        """Schedule a batch of injections."""
        return [self.schedule(spec) for spec in specs]

    # --------------------------------------------------------- observability
    def _observe_anomaly(self, kind: str, record: ActiveAnomaly, **extra) -> None:
        if self.obs is None:
            return
        spec = record.spec
        self.obs.journal.record(
            self.engine.now,
            kind,
            "injector",
            type=spec.anomaly_type.value,
            target=spec.target_service,
            scope=spec.scope.value,
            **extra,
        )
        self.obs.registry.counter(
            f"{kind}s_total", type=spec.anomaly_type.value
        ).inc()

    # ------------------------------------------------------------- lifecycle
    def _begin(self, record: ActiveAnomaly) -> None:
        record._start_event = None
        if record.removed_at is not None:  # cleared before the start fired
            return
        spec = record.spec
        if spec.anomaly_type is AnomalyType.WORKLOAD_VARIATION:
            self._begin_workload_variation(record)
        else:
            self._begin_resource_pressure(record)
        if record.removed_at is not None:
            return
        record._end_event = self.engine.schedule(
            spec.end_s, lambda eng: self._end(record), name=f"anomaly-end:{spec.anomaly_type.value}"
        )

    def _begin_resource_pressure(self, record: ActiveAnomaly) -> None:
        spec = record.spec
        nodes = self._resolve_nodes(spec)
        if not nodes:
            record.removed_at = self.engine.now
            return
        for node in nodes:
            pressure = spec.pressure_vector(node.capacity)
            node.inject_pressure(pressure)
            record.applied.append((node, pressure))
        record.node, record.pressure = record.applied[0]
        self._observe_anomaly(
            "anomaly_inject",
            record,
            intensity=spec.intensity,
            nodes=[node.name for node, _ in record.applied],
            start_s=spec.start_s,
            end_s=spec.end_s,
        )
        if spec.scope in _DYNAMIC_SCOPES:
            self._track_dynamic(record)

    def _begin_workload_variation(self, record: ActiveAnomaly) -> None:
        spec = record.spec
        if self.workload is None:
            record.removed_at = self.engine.now
            return
        pattern = self.workload.pattern
        if not isinstance(pattern, _InflatedPattern):
            pattern = _InflatedPattern(pattern)
            self.workload.pattern = pattern
        multiplier = 1.0 + spec.intensity * (self.MAX_LOAD_MULTIPLIER - 1.0)
        # Clamped to the spec's own end, so a late-registered variation
        # inflates load for the remainder of its window, not a full
        # duration beyond it.
        pattern.add_window(self.engine.now, spec.end_s, multiplier)
        self._observe_anomaly(
            "anomaly_inject",
            record,
            intensity=spec.intensity,
            multiplier=multiplier,
            nodes=[],
            start_s=spec.start_s,
            end_s=spec.end_s,
        )

    def _end(self, record: ActiveAnomaly) -> None:
        record._end_event = None
        if record.removed_at is not None:
            return
        for node, pressure in record.applied:
            node.remove_pressure(pressure)
        record.removed_at = self.engine.now
        self._observe_anomaly("anomaly_clear", record, reason="window_end")

    # --------------------------------------------------- target resolution
    def _scope_services(self, spec: AnomalySpec) -> List[str]:
        """The services whose replica nodes the spec's scope covers."""
        if spec.scope is not AnomalyScope.TENANT:
            return [spec.target_service]
        cluster = self.cluster
        tenant_of = getattr(cluster, "tenant_of", None)
        if tenant_of is None:
            # A TenantClusterView: services() is already tenant-scoped.
            return cluster.services()
        tenant = tenant_of(spec.target_service)
        if tenant is not None:
            return cluster.services(tenant=tenant)
        return [name for name in cluster.services() if tenant_of(name) is None]

    def _resolve_nodes(
        self, spec: AnomalySpec, services: Optional[List[str]] = None
    ) -> List[Node]:
        """The live node set the spec's scope resolves to (deduplicated).

        ``services`` short-circuits :meth:`_scope_services` when the
        caller already resolved the scope's service list.
        """
        if spec.scope is AnomalyScope.NODE:
            node = self._resolve_node(spec.target_service)
            return [node] if node is not None else []
        if spec.scope is AnomalyScope.REPLICA:
            replicas = self.cluster.replicas_of(spec.target_service)
            if spec.replica_index >= len(replicas):
                return []
            node = replicas[spec.replica_index].container.node
            return [node] if node is not None else []
        if services is None:
            services = self._scope_services(spec)
        nodes: List[Node] = []
        seen = set()
        for service in services:
            for instance in self.cluster.replicas_of(service):
                node = instance.container.node
                if node is not None and id(node) not in seen:
                    seen.add(id(node))
                    nodes.append(node)
        return nodes

    def _resolve_node(self, service_name: str) -> Optional[Node]:
        replicas = self.cluster.replicas_of(service_name)
        if not replicas:
            return None
        return replicas[0].container.node

    # --------------------------------------------------- scale-event refresh
    def _track_dynamic(self, record: ActiveAnomaly) -> None:
        """Register a record for re-resolution on cluster scale events."""
        self._dynamic.append(record)
        if self._listening:
            return
        add_listener = getattr(self.cluster, "add_scale_listener", None)
        if add_listener is not None:
            add_listener(self._on_scale_event)
            self._listening = True

    def _on_scale_event(self, service_name: str, instance, added: bool) -> None:
        """Cluster hook: a replica of ``service_name`` was added/removed."""
        if not self._dynamic:
            return
        self._dynamic = [record for record in self._dynamic if record.is_active]
        for record in self._dynamic:
            services = self._scope_services(record.spec)
            if service_name in services:
                self._refresh(record, services)

    def _refresh(
        self, record: ActiveAnomaly, services: Optional[List[str]] = None
    ) -> None:
        """Re-resolve one record's node set against the live replica set.

        Pressure is removed from nodes no longer hosting a target replica
        and applied to newly hosting nodes; nodes in both sets keep their
        original pressure vector untouched.
        """
        desired = self._resolve_nodes(record.spec, services=services)
        desired_ids = {id(node) for node in desired}
        kept: List[Tuple[Node, ResourceVector]] = []
        for node, pressure in record.applied:
            if id(node) in desired_ids:
                kept.append((node, pressure))
            else:
                node.remove_pressure(pressure)
        current_ids = {id(node) for node, _ in kept}
        for node in desired:
            if id(node) not in current_ids:
                pressure = record.spec.pressure_vector(node.capacity)
                node.inject_pressure(pressure)
                kept.append((node, pressure))
        record.applied = kept
        record.node, record.pressure = (
            kept[0] if kept else (None, ResourceVector())
        )

    # ---------------------------------------------------------------- queries
    def active_anomalies(self) -> List[ActiveAnomaly]:
        """Anomalies currently applying pressure."""
        return [record for record in self.log if record.is_active and record.injected_at <= self.engine.now]

    def injected_node_names(self, min_intensity: float = 0.0) -> List[str]:
        """Names of nodes currently under injection at/above ``min_intensity``.

        Covers every node of multi-node scopes; used (alongside
        :meth:`ground_truth_services`) as localization ground truth, since
        services co-located on an injected node are genuine victims.
        """
        names: List[str] = []
        seen = set()
        for record in self.active_anomalies():
            if record.spec.intensity < min_intensity:
                continue
            for node in record.nodes():
                if node.name not in seen:
                    seen.add(node.name)
                    names.append(node.name)
        return names

    def ground_truth_services(self, at_time: Optional[float] = None) -> List[str]:
        """Services targeted by anomalies active at ``at_time`` (default: now).

        Used as ground truth when scoring localization accuracy.  Windows
        are half-open ``[start_s, end_s)`` — exactly the interval actual
        pressure is applied over: a record removed early (``clear()``, or
        a target that never resolved) has its window truncated at the
        removal time, so ground truth never outlives real pressure.
        """
        time = self.engine.now if at_time is None else at_time
        services: List[str] = []
        for record in self.log:
            spec = record.spec
            if spec.start_s <= time < self._effective_end(record) and spec.target_service not in services:
                services.append(spec.target_service)
        return services

    @staticmethod
    def _effective_end(record: ActiveAnomaly) -> float:
        """End of the record's *actual* pressure window.

        ``spec.end_s`` for records that ran (or will run) their full
        window; the removal time for records ended early (``clear()``) or
        never applied (unresolvable target, fully-past registration).
        """
        end = record.spec.end_s
        if record.removed_at is not None and record.removed_at < end:
            return record.removed_at
        return end

    def ground_truth_window(
        self, start_s: float, end_s: float, min_intensity: float = 0.0
    ) -> Tuple[List[str], List[str]]:
        """Ground truth over the analysis window ``[start_s, end_s)``.

        Returns ``(target_services, injected_node_names)`` of every
        injection at/above ``min_intensity`` whose *actual* pressure
        window overlapped the analysis window — the reference the
        resilience scoreboard scores localization against.
        """
        targets: List[str] = []
        node_names: List[str] = []
        seen_nodes = set()
        for record in self.log:
            spec = record.spec
            if spec.intensity < min_intensity:
                continue
            if spec.start_s >= end_s or self._effective_end(record) <= start_s:
                continue
            if spec.target_service not in targets:
                targets.append(spec.target_service)
            for node in record.nodes():
                if node.name not in seen_nodes:
                    seen_nodes.add(node.name)
                    node_names.append(node.name)
        return targets, node_names

    def clear(self) -> None:
        """Remove all pressure and cancel pending begin/end events.

        Safe mid-campaign: outstanding ``anomaly-start`` events are
        cancelled too, so a begin scheduled before ``clear()`` can never
        fire afterwards and re-apply pressure nobody removes; active
        workload-variation windows are truncated at the present so the
        inflated offered rate stops with everything else.
        """
        now = self.engine.now
        for record in self.log:
            if record._start_event is not None:
                record._start_event.cancel()
                record._start_event = None
            if record._end_event is not None:
                record._end_event.cancel()
                record._end_event = None
            if record.is_active:
                for node, pressure in record.applied:
                    node.remove_pressure(pressure)
                record.removed_at = now
                self._observe_anomaly("anomaly_clear", record, reason="cleared")
        if self.workload is not None:
            pattern = self.workload.pattern
            if isinstance(pattern, _InflatedPattern):
                pattern.windows = [
                    [start, min(end, now), multiplier]
                    for start, end, multiplier in pattern.windows
                    if start < now
                ]
        self._dynamic = []
