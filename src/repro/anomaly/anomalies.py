"""Anomaly type definitions.

Each anomaly type models one of the interference generators the paper uses
(iBench, stress-ng, pmbw, sysbench, tc, trickle, wrk2) as pressure on the
corresponding simulated resource.  Intensity is expressed in [0, 1]: the
fraction of the target node's capacity consumed by the interfering
workload (or, for workload variation and network delay, the relative load
inflation / added delay).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster.resources import Resource, ResourceVector


class AnomalyType(str, enum.Enum):
    """The seven anomaly types of Table 5."""

    WORKLOAD_VARIATION = "workload_variation"
    NETWORK_DELAY = "network_delay"
    CPU_UTILIZATION = "cpu_utilization"
    LLC_CONTENTION = "llc_contention"
    MEMORY_BANDWIDTH = "memory_bandwidth"
    IO_BANDWIDTH = "io_bandwidth"
    NETWORK_BANDWIDTH = "network_bandwidth"


#: Canonical ordering used by campaign schedules and figures.
ANOMALY_TYPES: Tuple[AnomalyType, ...] = (
    AnomalyType.WORKLOAD_VARIATION,
    AnomalyType.NETWORK_DELAY,
    AnomalyType.CPU_UTILIZATION,
    AnomalyType.LLC_CONTENTION,
    AnomalyType.MEMORY_BANDWIDTH,
    AnomalyType.IO_BANDWIDTH,
    AnomalyType.NETWORK_BANDWIDTH,
)

#: Which simulated resource each anomaly type pressures (None = no node
#: resource: workload variation inflates offered load instead).
ANOMALY_RESOURCE: Dict[AnomalyType, Optional[Resource]] = {
    AnomalyType.WORKLOAD_VARIATION: None,
    AnomalyType.NETWORK_DELAY: Resource.NETWORK,
    AnomalyType.CPU_UTILIZATION: Resource.CPU,
    AnomalyType.LLC_CONTENTION: Resource.LLC,
    AnomalyType.MEMORY_BANDWIDTH: Resource.MEMORY_BANDWIDTH,
    AnomalyType.IO_BANDWIDTH: Resource.DISK_IO,
    AnomalyType.NETWORK_BANDWIDTH: Resource.NETWORK,
}

#: Tool names from Table 5 (documentation / report labelling only).
ANOMALY_TOOLS: Dict[AnomalyType, str] = {
    AnomalyType.WORKLOAD_VARIATION: "wrk2",
    AnomalyType.NETWORK_DELAY: "tc",
    AnomalyType.CPU_UTILIZATION: "iBench/stress-ng",
    AnomalyType.LLC_CONTENTION: "iBench/pmbw",
    AnomalyType.MEMORY_BANDWIDTH: "iBench/pmbw",
    AnomalyType.IO_BANDWIDTH: "sysbench",
    AnomalyType.NETWORK_BANDWIDTH: "tc/trickle",
}


@dataclass
class AnomalySpec:
    """One injection: what, where, when, how hard, and for how long.

    Attributes
    ----------
    anomaly_type:
        Which of the seven anomaly types to inject.
    target_service:
        Service whose hosting node receives the interference.  The injector
        resolves the service's first replica's node at injection time.
    start_s / duration_s:
        Injection window in simulation seconds.
    intensity:
        In [0, 1]: fraction of node capacity consumed (resource anomalies),
        relative load inflation (workload variation), or fraction of the
        maximum modelled delay (network delay).
    """

    anomaly_type: AnomalyType
    target_service: str
    start_s: float
    duration_s: float
    intensity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.start_s < 0:
            raise ValueError(f"start time must be non-negative, got {self.start_s}")
        self.anomaly_type = AnomalyType(self.anomaly_type)

    @property
    def end_s(self) -> float:
        """End of the injection window."""
        return self.start_s + self.duration_s

    def pressure_vector(self, node_capacity: ResourceVector) -> ResourceVector:
        """Absolute resource pressure this anomaly puts on the target node.

        Workload variation contributes no direct node pressure (the injector
        inflates offered load instead); network delay is modelled as partial
        network-capacity consumption proportional to the configured delay.
        """
        resource = ANOMALY_RESOURCE[self.anomaly_type]
        if resource is None:
            return ResourceVector()
        amount = self.intensity * node_capacity[resource]
        return ResourceVector({resource: amount})
