"""Anomaly type and scope definitions.

Each anomaly type models one of the interference generators the paper uses
(iBench, stress-ng, pmbw, sysbench, tc, trickle, wrk2) as pressure on the
corresponding simulated resource.  Intensity is expressed in [0, 1]: the
fraction of the target node's capacity consumed by the interfering
workload (or, for workload variation and network delay, the relative load
inflation / added delay).

:class:`AnomalyScope` decides *where* that pressure lands relative to the
target service — one pinned node, one replica's node, the whole live
replica set, or every node the owning tenant occupies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster.resources import Resource, ResourceVector


class AnomalyType(str, enum.Enum):
    """The seven anomaly types of Table 5."""

    WORKLOAD_VARIATION = "workload_variation"
    NETWORK_DELAY = "network_delay"
    CPU_UTILIZATION = "cpu_utilization"
    LLC_CONTENTION = "llc_contention"
    MEMORY_BANDWIDTH = "memory_bandwidth"
    IO_BANDWIDTH = "io_bandwidth"
    NETWORK_BANDWIDTH = "network_bandwidth"


class AnomalyScope(str, enum.Enum):
    """Where an anomaly's pressure lands, relative to its target service.

    ``NODE`` is the historical behaviour: the interference is pinned to the
    node hosting the target's *first* replica, resolved once at injection
    time.  The other scopes are replica- and tenant-aware:

    * ``REPLICA`` — the node hosting one specific replica
      (:attr:`AnomalySpec.replica_index`), re-resolved on scale events;
    * ``SERVICE_WIDE`` — every node hosting a live replica of the target
      service, re-resolved as the replica set scales out or in;
    * ``TENANT`` — every node hosting a live replica of *any* service owned
      by the target's tenant (for untenanted clusters: every deployed
      service), re-resolved on scale events.

    Multi-node scopes apply one full-intensity pressure vector **per node**
    (an interfering workload per machine, as iBench/stress-ng campaigns run
    one stressor per victim host).
    """

    NODE = "node"
    REPLICA = "replica"
    SERVICE_WIDE = "service_wide"
    TENANT = "tenant"


#: Canonical ordering used by campaign schedules and figures.
ANOMALY_TYPES: Tuple[AnomalyType, ...] = (
    AnomalyType.WORKLOAD_VARIATION,
    AnomalyType.NETWORK_DELAY,
    AnomalyType.CPU_UTILIZATION,
    AnomalyType.LLC_CONTENTION,
    AnomalyType.MEMORY_BANDWIDTH,
    AnomalyType.IO_BANDWIDTH,
    AnomalyType.NETWORK_BANDWIDTH,
)

#: Which simulated resource each anomaly type pressures (None = no node
#: resource: workload variation inflates offered load instead).
ANOMALY_RESOURCE: Dict[AnomalyType, Optional[Resource]] = {
    AnomalyType.WORKLOAD_VARIATION: None,
    AnomalyType.NETWORK_DELAY: Resource.NETWORK,
    AnomalyType.CPU_UTILIZATION: Resource.CPU,
    AnomalyType.LLC_CONTENTION: Resource.LLC,
    AnomalyType.MEMORY_BANDWIDTH: Resource.MEMORY_BANDWIDTH,
    AnomalyType.IO_BANDWIDTH: Resource.DISK_IO,
    AnomalyType.NETWORK_BANDWIDTH: Resource.NETWORK,
}

#: Tool names from Table 5 (documentation / report labelling only).
ANOMALY_TOOLS: Dict[AnomalyType, str] = {
    AnomalyType.WORKLOAD_VARIATION: "wrk2",
    AnomalyType.NETWORK_DELAY: "tc",
    AnomalyType.CPU_UTILIZATION: "iBench/stress-ng",
    AnomalyType.LLC_CONTENTION: "iBench/pmbw",
    AnomalyType.MEMORY_BANDWIDTH: "iBench/pmbw",
    AnomalyType.IO_BANDWIDTH: "sysbench",
    AnomalyType.NETWORK_BANDWIDTH: "tc/trickle",
}


@dataclass
class AnomalySpec:
    """One injection: what, where, when, how hard, and for how long.

    Attributes
    ----------
    anomaly_type:
        Which of the seven anomaly types to inject.
    target_service:
        Service whose hosting node(s) receive the interference.  How the
        service resolves to nodes is governed by ``scope``.
    start_s / duration_s:
        Injection window in simulation seconds.  The actual pressure window
        and the ground truth both cover exactly ``[start_s, end_s)``.
    intensity:
        In [0, 1]: fraction of node capacity consumed (resource anomalies),
        relative load inflation (workload variation), or fraction of the
        maximum modelled delay (network delay).
    scope:
        Target scope (see :class:`AnomalyScope`).  The default ``NODE``
        reproduces the historical first-replica pinning exactly.
    replica_index:
        Which replica's node to pressure under :attr:`AnomalyScope.REPLICA`
        (ignored by every other scope).
    """

    anomaly_type: AnomalyType
    target_service: str
    start_s: float
    duration_s: float
    intensity: float
    scope: AnomalyScope = AnomalyScope.NODE
    replica_index: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.start_s < 0:
            raise ValueError(f"start time must be non-negative, got {self.start_s}")
        if self.replica_index < 0:
            raise ValueError(f"replica index must be non-negative, got {self.replica_index}")
        self.anomaly_type = AnomalyType(self.anomaly_type)
        self.scope = AnomalyScope(self.scope)

    @property
    def end_s(self) -> float:
        """End of the injection window."""
        return self.start_s + self.duration_s

    def pressure_vector(self, node_capacity: ResourceVector) -> ResourceVector:
        """Absolute resource pressure this anomaly puts on the target node.

        Workload variation contributes no direct node pressure (the injector
        inflates offered load instead); network delay is modelled as partial
        network-capacity consumption proportional to the configured delay.
        """
        resource = ANOMALY_RESOURCE[self.anomaly_type]
        if resource is None:
            return ResourceVector()
        amount = self.intensity * node_capacity[resource]
        return ResourceVector({resource: amount})
