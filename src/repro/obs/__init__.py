"""Unified run-record observability for the reproduction's own runs.

FIRM's premise is that cheap, fine-grained observability is what makes
SLO-violation localization possible; this package applies the same idea
to the simulator itself.  One per-run :class:`Observability` bundle —
created only when ``ScenarioSpec.observability`` is true, so every
pinned determinism family stays byte-identical with it off — collects:

* a **metrics registry** (:mod:`repro.obs.registry`): named counters,
  gauges, and sketch-backed histograms with interned label sets,
  mergeable across shards (counters add, gauges max, histograms fold
  their t-digest/log-histogram sketches);
* a **structured event journal** (:mod:`repro.obs.journal`): a bounded
  ring-buffer flight recorder of typed records — controller scale
  decisions with before/after replica counts, routing policy picks,
  anomaly inject/clear with scope and node set, shard-sync barrier
  advances, detector verdicts, SLO-violation window transitions —
  flushed to JSONL at run end;
* **exporters** (:mod:`repro.obs.exporters`): Chrome trace-event JSON
  (Perfetto-loadable; spans as slices, journal records as instants) and
  Prometheus text exposition of the registry snapshot;
* a **run inspector** (:mod:`repro.obs.inspector`, surfaced as
  ``repro.cli inspect``): the injection → detection → mitigation →
  recovery causal timeline per anomaly, with time-to-detect and
  time-to-mitigate, reconstructed from any archived run record.

Sharded runs stamp each shard's journal with its shard index and merge
the exported records by ``(t, shard, seq)`` — a pure function of the
per-shard journals, hence deterministic for a fixed seed in both
``inprocess`` and ``process`` shard modes.
"""

from repro.obs.exporters import (
    chrome_trace_events,
    chrome_trace_json,
    prometheus_exposition,
)
from repro.obs.inspector import (
    AnomalyEpisode,
    build_timeline,
    inspect_run_record,
    load_journal,
)
from repro.obs.journal import (
    EventJournal,
    merge_journal_records,
    read_journal_jsonl,
    write_journal_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    merge_registries,
)
from repro.obs.run import Observability, write_run_record

__all__ = [
    "AnomalyEpisode",
    "Counter",
    "EventJournal",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "Observability",
    "build_timeline",
    "chrome_trace_events",
    "chrome_trace_json",
    "inspect_run_record",
    "load_journal",
    "merge_journal_records",
    "merge_registries",
    "prometheus_exposition",
    "read_journal_jsonl",
    "write_journal_jsonl",
    "write_run_record",
]
