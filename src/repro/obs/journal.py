"""The structured event journal: a bounded flight recorder of run events.

Every instrumented component appends typed records — controller scale
decisions, routing picks, anomaly inject/clear, shard-sync barrier
advances, detector verdicts, SLO-violation window transitions — to one
per-run :class:`EventJournal`.  The journal is a fixed-capacity ring
(``collections.deque(maxlen=...)``): recording is O(1), memory is
bounded regardless of run length, and under pressure the *oldest*
records are evicted first, which is exactly the flight-recorder
semantics (the recent past explains the present).

Records are plain tuples in memory and plain dicts at the export
boundary (:meth:`EventJournal.as_dicts`), so they cross process
boundaries and serialize to JSONL without any class machinery.  Each
record carries ``(t, seq, kind, source, data)`` plus the journal's shard
index; :func:`merge_journal_records` folds per-shard journals by
``(t, shard, seq)``, so a sharded run's merged journal is a pure
function of the per-shard journals — deterministic for a fixed seed
whether shards ran in-process or across worker processes.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "EventJournal",
    "merge_journal_records",
    "read_journal_jsonl",
    "write_journal_jsonl",
]

#: Default ring capacity: generously above what the pinned scenarios
#: produce, small enough that a runaway hot-path recorder stays bounded.
DEFAULT_CAPACITY = 65536


class EventJournal:
    """Bounded ring buffer of typed run-event records.

    Parameters
    ----------
    capacity:
        Maximum records retained; older records are evicted first.
    shard_index:
        Identity stamped on exported records so per-shard journals merge
        deterministically (``-1`` marks the sharded-run driver, whose
        barrier records sort ahead of shard records at equal times).
    """

    __slots__ = ("capacity", "shard_index", "_records", "_seq")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, shard_index: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"journal capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.shard_index = int(shard_index)
        self._records: deque = deque(maxlen=self.capacity)
        self._seq = 0

    def record(self, time_s: float, kind: str, source: str, **data) -> None:
        """Append one typed record (O(1); evicts the oldest when full)."""
        self._seq += 1
        self._records.append((time_s, self._seq, kind, source, data))

    def __len__(self) -> int:
        return len(self._records)

    @property
    def recorded(self) -> int:
        """Total records ever appended (``recorded - len`` were evicted)."""
        return self._seq

    @property
    def evicted(self) -> int:
        """Records lost to ring eviction."""
        return self._seq - len(self._records)

    def counts_by_kind(self) -> Dict[str, int]:
        """Retained record count per kind (sorted by kind)."""
        counts: Dict[str, int] = {}
        for _, _, kind, _, _ in self._records:
            counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def as_dicts(self) -> List[dict]:
        """Export retained records as JSON-ready dicts (time order)."""
        shard = self.shard_index
        return [
            {
                "t": time_s,
                "seq": seq,
                "shard": shard,
                "kind": kind,
                "source": source,
                "data": data,
            }
            for time_s, seq, kind, source, data in self._records
        ]


def merge_journal_records(
    journals: Iterable[Optional[Sequence[dict]]],
) -> List[dict]:
    """Merge exported per-shard journals into one deterministic stream.

    Records are ordered by ``(t, shard, seq)``: time first, then shard
    index (the driver's ``-1`` barrier records lead at equal times), then
    each journal's own append order.  The result is independent of the
    order the per-shard journals arrive in, so ``inprocess`` and
    ``process`` shard modes produce identical merged journals.
    """
    merged: List[dict] = []
    for journal in journals:
        if journal:
            merged.extend(journal)
    merged.sort(key=lambda r: (r["t"], r["shard"], r["seq"]))
    return merged


def write_journal_jsonl(records: Sequence[dict], path: str) -> None:
    """Flush exported records to ``path`` as JSON Lines (one per record)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, default=str))
            handle.write("\n")


def read_journal_jsonl(path: str) -> List[dict]:
    """Load a journal JSONL file back into record dicts."""
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
