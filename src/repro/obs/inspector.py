"""The run inspector: causal timelines from a run-record journal.

Given a run record written by :func:`repro.obs.run.write_run_record`
(or just its ``journal.jsonl``), the inspector reconstructs the causal
story of each injected anomaly:

``injection`` (``anomaly_inject`` record)
    → ``detection`` (first SLO-violation signal at or after the
    injection: a ``control_round`` record with ``slo_violated`` true, or
    an ``slo_window`` open transition)
    → ``mitigation`` (first ``scale_action`` at or after detection)
    → ``recovery`` (first ``slo_window`` close at or after detection,
    or the anomaly's own clear when the SLO never opened a window).

Time-to-detect and time-to-mitigate are derived per episode, which is
exactly the decomposition FIRM's evaluation reports (detection latency
vs mitigation latency), now recoverable from any archived run record
without re-running the scenario.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.journal import read_journal_jsonl

__all__ = [
    "AnomalyEpisode",
    "build_timeline",
    "inspect_run_record",
    "load_journal",
]


@dataclass
class AnomalyEpisode:
    """One injected anomaly and the reaction chain it triggered."""

    target: str
    anomaly_type: str
    scope: str
    injected_at: float
    cleared_at: Optional[float] = None
    detected_at: Optional[float] = None
    mitigated_at: Optional[float] = None
    recovered_at: Optional[float] = None
    mitigation: Optional[str] = None
    nodes: List[str] = field(default_factory=list)

    @property
    def time_to_detect_s(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def time_to_mitigate_s(self) -> Optional[float]:
        if self.mitigated_at is None:
            return None
        return self.mitigated_at - self.injected_at


def load_journal(path: str) -> List[dict]:
    """Load journal records from a run-record directory or a JSONL file."""
    if os.path.isdir(path):
        path = os.path.join(path, "journal.jsonl")
    if not os.path.exists(path):
        raise FileNotFoundError(f"no journal at {path}")
    return read_journal_jsonl(path)


def build_timeline(records: Sequence[dict]) -> List[AnomalyEpisode]:
    """Reconstruct per-anomaly episodes from merged journal records.

    Records must be time-ordered (the journal merge guarantees this).
    Detection/mitigation/recovery are matched greedily forward from each
    injection, so overlapping anomalies each claim the first subsequent
    signal — a deliberate simplification that matches how the mitigation
    tracker attributes violation windows.
    """
    episodes: List[AnomalyEpisode] = []
    open_by_target: Dict[str, AnomalyEpisode] = {}
    for record in records:
        kind = record["kind"]
        data = record.get("data", {})
        t = record["t"]
        if kind == "anomaly_inject":
            episode = AnomalyEpisode(
                target=str(data.get("target", record.get("source", "?"))),
                anomaly_type=str(data.get("type", "?")),
                scope=str(data.get("scope", "?")),
                injected_at=t,
                nodes=list(data.get("nodes", [])),
            )
            episodes.append(episode)
            open_by_target[episode.target] = episode
        elif kind == "anomaly_clear":
            target = str(data.get("target", ""))
            episode = open_by_target.pop(target, None)
            if episode is not None and episode.cleared_at is None:
                episode.cleared_at = t
        elif kind in ("control_round", "slo_window"):
            violated = (
                bool(data.get("slo_violated"))
                if kind == "control_round"
                else bool(data.get("open"))
            )
            if violated:
                for episode in episodes:
                    if episode.detected_at is None and t >= episode.injected_at:
                        episode.detected_at = t
            elif kind == "slo_window":
                for episode in episodes:
                    if (
                        episode.recovered_at is None
                        and episode.detected_at is not None
                        and t >= episode.detected_at
                    ):
                        episode.recovered_at = t
        elif kind == "scale_action":
            for episode in episodes:
                anchor = (
                    episode.detected_at
                    if episode.detected_at is not None
                    else episode.injected_at
                )
                if episode.mitigated_at is None and t >= anchor:
                    episode.mitigated_at = t
                    episode.mitigation = "{action} {service}".format(
                        action=data.get("action", "?"),
                        service=data.get("service", data.get("instance", "?")),
                    )
    # An anomaly whose SLO window never closed "recovers" at its clear.
    for episode in episodes:
        if episode.recovered_at is None and episode.detected_at is None:
            episode.recovered_at = episode.cleared_at
    return episodes


def _fmt_t(value: Optional[float]) -> str:
    return f"{value:9.2f}s" if value is not None else "        --"


def _fmt_delta(value: Optional[float]) -> str:
    return f"{value:.2f}s" if value is not None else "--"


def render_timeline(episodes: Sequence[AnomalyEpisode]) -> str:
    """A readable per-anomaly timeline table."""
    if not episodes:
        return "no anomaly injections recorded\n"
    lines = ["causal timeline (injection -> detection -> mitigation -> recovery):"]
    for i, ep in enumerate(episodes, start=1):
        lines.append(
            f"  [{i}] {ep.anomaly_type} on {ep.target} (scope={ep.scope}"
            + (f", nodes={','.join(ep.nodes)}" if ep.nodes else "")
            + ")"
        )
        lines.append(
            f"      injected {_fmt_t(ep.injected_at)}   "
            f"detected {_fmt_t(ep.detected_at)}   "
            f"mitigated {_fmt_t(ep.mitigated_at)}   "
            f"recovered {_fmt_t(ep.recovered_at)}"
        )
        detail = (
            f"      time-to-detect {_fmt_delta(ep.time_to_detect_s)}, "
            f"time-to-mitigate {_fmt_delta(ep.time_to_mitigate_s)}"
        )
        if ep.mitigation:
            detail += f" ({ep.mitigation})"
        lines.append(detail)
    return "\n".join(lines) + "\n"


def inspect_run_record(path: str) -> str:
    """The full inspector report for a run record (directory or JSONL)."""
    records = load_journal(path)
    sections: List[str] = []

    directory = path if os.path.isdir(path) else os.path.dirname(path)
    summary_path = os.path.join(directory, "summary.json")
    if os.path.exists(summary_path):
        with open(summary_path, "r", encoding="utf-8") as handle:
            summary = json.load(handle)
        head = summary.get("summary", {})
        sections.append(
            "run: {app} / {controller} / {dur:g}s".format(
                app=summary.get("application", "?"),
                controller=summary.get("controller", "?"),
                dur=float(summary.get("duration_s", 0.0)),
            )
        )
        sections.append(
            "  completed {completed:g}  violations {violations:g} "
            "(rate {rate:.4f})  dropped {dropped:g}  "
            "p50 {p50:.1f}ms  p99 {p99:.1f}ms".format(
                completed=head.get("completed", 0.0),
                violations=head.get("violations", 0.0),
                rate=head.get("violation_rate", 0.0),
                dropped=head.get("dropped", 0.0),
                p50=head.get("p50_ms", 0.0),
                p99=head.get("p99_ms", 0.0),
            )
        )

    counts: Dict[str, int] = {}
    for record in records:
        counts[record["kind"]] = counts.get(record["kind"], 0) + 1
    sections.append(
        "journal: {n} records ({kinds})".format(
            n=len(records),
            kinds=", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            or "empty",
        )
    )

    sections.append("")
    sections.append(render_timeline(build_timeline(records)).rstrip("\n"))

    metrics_path = os.path.join(directory, "metrics.json")
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        histograms = snapshot.get("histograms", [])
        counters = snapshot.get("counters", [])
        if histograms or counters:
            sections.append("")
            sections.append("top-line metrics:")
            for row in histograms:
                labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
                quantiles = row.get("quantiles", {})
                sections.append(
                    "  {name}{{{labels}}}: count={count:g} "
                    "p50={p50:.2f} p99={p99:.2f}".format(
                        name=row["name"],
                        labels=labels,
                        count=row.get("count", 0),
                        p50=float(quantiles.get("0.5", 0.0)),
                        p99=float(quantiles.get("0.99", 0.0)),
                    )
                )
            for row in counters:
                labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
                sections.append(
                    f"  {row['name']}{{{labels}}}: {row['value']:g}"
                )
    return "\n".join(sections) + "\n"
