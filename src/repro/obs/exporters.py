"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

Two render-only views over the observability state (neither mutates
anything, so exporting twice is idempotent):

* :func:`chrome_trace_json` — the Chrome trace-event format
  (``{"traceEvents": [...]}``) loadable in Perfetto / ``chrome://tracing``.
  Each tenant becomes a process, each service instance a thread, each span
  a complete (``"X"``) event spanning its sojourn at the instance, and
  each journal record a global instant (``"i"``) event — so controller
  decisions, anomaly injections, and SLO-window transitions line up
  visually against the request spans they explain.
* :func:`prometheus_exposition` — the Prometheus text format rendered
  from a :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.  Counters
  and gauges map directly; sketch histograms are rendered as summaries
  (``quantile`` label plus ``_count``/``_sum`` series), which is the
  faithful exposition for quantile sketches.

All output is deterministically ordered (tenant order, span store order,
sorted label keys), so golden tests can pin it byte for byte.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

__all__ = [
    "chrome_trace_events",
    "chrome_trace_json",
    "prometheus_exposition",
]

_S_TO_US = 1e6


def chrome_trace_events(
    harness, journal_records: Optional[Sequence[dict]] = None
) -> List[dict]:
    """Build trace-event dicts from a finished harness (plus journal).

    Tenants map to processes (pid = tenant order, 1-based), service
    instances to threads (tid = first-seen order within the tenant's
    span store), spans to ``"X"`` complete events covering the span's
    sojourn at the instance, and journal records to ``"i"`` global
    instant events under a synthetic pid 0 "run events" process.
    """
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "run events"}},
    ]
    for pid, tenant in enumerate(harness.tenants, start=1):
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": tenant.display_name}}
        )
        tids: Dict[str, int] = {}
        span_events: List[dict] = []
        for trace in tenant.coordinator.store.all_traces():
            for span in trace.spans:
                tid = tids.get(span.instance)
                if tid is None:
                    tid = len(tids) + 1
                    tids[span.instance] = tid
                    events.append(
                        {"ph": "M", "name": "thread_name", "pid": pid,
                         "tid": tid, "args": {"name": span.instance}}
                    )
                span_events.append(
                    {
                        "ph": "X",
                        "name": span.service,
                        "cat": span.kind.value,
                        "pid": pid,
                        "tid": tid,
                        "ts": span.enqueue_time * _S_TO_US,
                        "dur": span.sojourn_time * _S_TO_US,
                        "args": {
                            "request_id": span.request_id,
                            "queue_ms": span.queue_time * 1e3,
                            "service_ms": span.service_time * 1e3,
                            "dropped": span.dropped,
                        },
                    }
                )
        events.extend(span_events)
    for record in journal_records or ():
        events.append(
            {
                "ph": "i",
                "s": "g",
                "name": record["kind"],
                "pid": 0,
                "tid": 0,
                "ts": record["t"] * _S_TO_US,
                "args": {"source": record["source"], **record["data"]},
            }
        )
    return events


def chrome_trace_json(
    harness, journal_records: Optional[Sequence[dict]] = None
) -> str:
    """The full trace file as a JSON string (Perfetto-loadable)."""
    payload = {
        "traceEvents": chrome_trace_events(harness, journal_records),
        "displayTimeUnit": "ms",
    }
    return json.dumps(payload, sort_keys=True, default=str)


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _format_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Integral values print without a trailing ".0", matching the usual
    # client_golang output and keeping goldens readable.
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_exposition(snapshot: Dict[str, List[dict]]) -> str:
    """Render a registry snapshot in the Prometheus text format.

    ``snapshot`` is the dict produced by
    :meth:`repro.obs.registry.MetricsRegistry.snapshot`.  Histograms are
    exposed as summaries: one ``quantile``-labelled sample per headline
    quantile plus ``<name>_count`` and ``<name>_sum``.
    """
    lines: List[str] = []
    typed: set = set()

    def _type_line(name: str, type_: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {type_}")

    for row in snapshot.get("counters", ()):
        _type_line(row["name"], "counter")
        lines.append(
            f"{row['name']}{_format_labels(row['labels'])} "
            f"{_format_value(row['value'])}"
        )
    for row in snapshot.get("gauges", ()):
        _type_line(row["name"], "gauge")
        lines.append(
            f"{row['name']}{_format_labels(row['labels'])} "
            f"{_format_value(row['value'])}"
        )
    for row in snapshot.get("histograms", ()):
        name = row["name"]
        _type_line(name, "summary")
        for q, value in sorted(row["quantiles"].items(), key=lambda kv: float(kv[0])):
            labels = _format_labels(row["labels"], {"quantile": q})
            lines.append(f"{name}{labels} {_format_value(value)}")
        plain = _format_labels(row["labels"])
        lines.append(f"{name}_count{plain} {_format_value(row['count'])}")
        lines.append(f"{name}_sum{plain} {_format_value(row['sum'])}")
    return "\n".join(lines) + ("\n" if lines else "")
