"""Per-run observability state and the on-disk run record.

:class:`Observability` is the single object the harness threads through
every instrumented component: one :class:`~repro.obs.journal.EventJournal`
(the flight recorder) plus one
:class:`~repro.obs.registry.MetricsRegistry` (the metric series).  It is
created once per harness when ``ScenarioSpec.observability`` is true and
stays ``None`` otherwise, so every instrumentation site is a single
``if obs is not None`` away from the uninstrumented fast path.

:func:`write_run_record` flushes a finished run to a directory — the
"run record" the ``repro.cli inspect`` subcommand reads back:

``journal.jsonl``
    The merged event journal, one JSON record per line.
``metrics.json``
    The registry snapshot (counters, gauges, histogram quantiles).
``metrics.prom``
    The same snapshot in Prometheus text exposition.
``summary.json``
    Headline result numbers plus per-tenant breakdown and journal stats.
``trace.json``
    Chrome trace-event JSON (only when the harness — and therefore its
    span stores — is still available, i.e. unsharded runs).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.obs.exporters import chrome_trace_json, prometheus_exposition
from repro.obs.journal import DEFAULT_CAPACITY, EventJournal, write_journal_jsonl
from repro.obs.registry import MetricsRegistry

__all__ = ["Observability", "write_run_record"]


class Observability:
    """One run's journal + registry bundle.

    Parameters
    ----------
    capacity:
        Event-journal ring capacity.
    shard_index:
        Shard identity stamped on journal records (0 for unsharded runs;
        the sharded runner re-stamps each shard harness's journal with its
        shard index before the run starts).
    """

    __slots__ = ("journal", "registry")

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, shard_index: int = 0
    ) -> None:
        self.journal = EventJournal(capacity=capacity, shard_index=shard_index)
        self.registry = MetricsRegistry()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Observability(journal={len(self.journal)} records, "
            f"shard={self.journal.shard_index})"
        )


def write_run_record(
    directory: str,
    result,
    harness=None,
) -> Dict[str, str]:
    """Flush a finished run's observability state to ``directory``.

    ``result`` is an :class:`~repro.experiments.harness.ExperimentResult`
    whose ``journal`` (exported record dicts) and ``metrics``
    (:class:`MetricsRegistry`) attributes were populated by a run with
    observability enabled.  Passing the (unsharded) ``harness`` as well
    adds the Chrome trace export, which needs the live span stores.

    Returns the mapping of artifact name to written path.
    """
    journal_records = getattr(result, "journal", None)
    registry: Optional[MetricsRegistry] = getattr(result, "metrics", None)
    if journal_records is None and registry is None:
        raise ValueError(
            "result carries no observability state; run with "
            "ScenarioSpec.observability=True (or --obs)"
        )
    os.makedirs(directory, exist_ok=True)
    paths: Dict[str, str] = {}

    journal_path = os.path.join(directory, "journal.jsonl")
    write_journal_jsonl(journal_records or [], journal_path)
    paths["journal"] = journal_path

    snapshot = registry.snapshot() if registry is not None else {
        "counters": [], "gauges": [], "histograms": []
    }
    metrics_path = os.path.join(directory, "metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    paths["metrics"] = metrics_path

    prom_path = os.path.join(directory, "metrics.prom")
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_exposition(snapshot))
    paths["prometheus"] = prom_path

    summary = {
        "application": result.application,
        "controller": result.controller,
        "duration_s": result.duration_s,
        "summary": result.summary(),
        "per_tenant": result.per_tenant_summary(),
        "journal_records": len(journal_records or []),
    }
    summary_path = os.path.join(directory, "summary.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    paths["summary"] = summary_path

    if harness is not None:
        trace_path = os.path.join(directory, "trace.json")
        with open(trace_path, "w", encoding="utf-8") as handle:
            handle.write(chrome_trace_json(harness, journal_records))
        paths["trace"] = trace_path

    return paths
