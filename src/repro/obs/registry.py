"""The metrics registry: named counters, gauges, and sketch histograms.

Components register metrics by name plus a label set
(``registry.counter("routing_picks_total", service="nginx",
policy="ewma_latency")``); the registry interns each ``(name, labels)``
series so hot paths resolve to the *same* metric object on every call
and can cache it outright.  Three metric types cover the run-record
needs:

* :class:`Counter` — monotone float, cross-shard merge is addition;
* :class:`Gauge` — last-set float, cross-shard merge keeps the maximum
  (order-independent, which a last-write-wins merge would not be);
* :class:`HistogramMetric` — a value distribution backed by one of the
  :mod:`repro.telemetry` sketches: ``tdigest`` (the default — mergeable
  with tail-accurate quantiles), ``log`` (exactly-associative bin
  merges), or ``p2`` (cheapest, but **not mergeable** — reject it for
  any series that must fold across shards).

Everything is picklable (plain attributes, no callables), so a shard
worker's registry rides home inside its
:class:`~repro.experiments.harness.ExperimentResult` and
:func:`merge_registries` folds the per-shard registries in ascending
shard order — the same fixed-order contract as
:func:`repro.telemetry.digest.merge_telemetry_digests`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.telemetry.histogram import LogHistogram
from repro.telemetry.p2 import P2Quantile
from repro.telemetry.tdigest import TDigest

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "merge_registries",
]

#: Headline quantiles exported in snapshots and Prometheus exposition.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)

LabelsKey = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing value (merge = addition)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (merge = maximum across shards)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class HistogramMetric:
    """A value distribution backed by a :mod:`repro.telemetry` sketch.

    ``kind`` selects the backend: ``"tdigest"`` (mergeable, the default),
    ``"log"`` (mergeable, fixed relative error), or ``"p2"`` (cheapest;
    quantile estimators for :data:`SNAPSHOT_QUANTILES` only, and
    :meth:`merge` raises — P² markers cannot be combined).
    """

    __slots__ = ("kind", "count", "total", "_sketch", "_p2")

    def __init__(self, kind: str = "tdigest") -> None:
        if kind not in ("tdigest", "log", "p2"):
            raise ValueError(f"unknown histogram kind {kind!r}")
        self.kind = kind
        self.count = 0
        self.total = 0.0
        self._sketch = None
        self._p2: Optional[Dict[float, P2Quantile]] = None
        if kind == "tdigest":
            self._sketch = TDigest()
        elif kind == "log":
            self._sketch = LogHistogram()
        else:
            self._p2 = {q: P2Quantile(q) for q in SNAPSHOT_QUANTILES}

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self._sketch is not None:
            self._sketch.add(value)
        else:
            for estimator in self._p2.values():
                estimator.add(value)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in ``[0, 1]``)."""
        if self.count == 0:
            return 0.0
        if self.kind == "tdigest":
            return self._sketch.quantile(q)
        if self.kind == "log":
            # LogHistogram.quantile takes percent.
            return self._sketch.quantile(q * 100.0)
        estimator = self._p2.get(q)
        if estimator is None:
            raise ValueError(
                f"p2 histograms only track quantiles {SNAPSHOT_QUANTILES}, got {q}"
            )
        return estimator.value()

    def merge(self, other: "HistogramMetric") -> None:
        """Fold ``other`` in (raises for the unmergeable ``p2`` kind)."""
        if self.kind != other.kind:
            raise ValueError(
                f"cannot merge histogram kinds {self.kind!r} and {other.kind!r}"
            )
        if self.kind == "p2":
            raise ValueError(
                "p2 histograms are not mergeable; use kind='tdigest' or "
                "'log' for series that fold across shards"
            )
        self._sketch.merge(other._sketch)
        self.count += other.count
        self.total += other.total


_TYPE_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
}


class MetricsRegistry:
    """Interned ``(name, labels)`` series of counters/gauges/histograms."""

    def __init__(self) -> None:
        #: (name, labels_key) -> metric object.
        self._metrics: Dict[Tuple[str, LabelsKey], object] = {}
        #: name -> declared type ("counter" | "gauge" | "histogram").
        self._types: Dict[str, str] = {}

    # -------------------------------------------------------------- creation
    @staticmethod
    def _labels_key(labels: Dict[str, str]) -> LabelsKey:
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _series(self, name: str, type_: str, labels: Dict[str, str], factory):
        declared = self._types.get(name)
        if declared is None:
            self._types[name] = type_
        elif declared != type_:
            raise ValueError(
                f"metric {name!r} is already registered as a {declared}, "
                f"not a {type_}"
            )
        key = (name, self._labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        return self._series(name, "counter", labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        return self._series(name, "gauge", labels, Gauge)

    def histogram(self, name: str, kind: str = "tdigest", **labels) -> HistogramMetric:
        """The histogram series ``name{labels}`` (created on first use).

        ``kind`` must agree across calls for one name; pick ``"tdigest"``
        (default) or ``"log"`` for any series merged across shards.
        """
        metric = self._series(
            name, "histogram", labels, lambda: HistogramMetric(kind)
        )
        if metric.kind != kind:
            raise ValueError(
                f"histogram {name!r} is already registered with kind "
                f"{metric.kind!r}, not {kind!r}"
            )
        return metric

    # --------------------------------------------------------------- queries
    def series(self) -> List[Tuple[str, str, Dict[str, str], object]]:
        """All series as ``(name, type, labels, metric)``, sorted."""
        rows = []
        for (name, labels_key), metric in self._metrics.items():
            rows.append((name, self._types[name], dict(labels_key), metric))
        rows.sort(key=lambda row: (row[0], tuple(sorted(row[2].items()))))
        return rows

    def snapshot(self) -> Dict[str, List[dict]]:
        """A JSON-ready snapshot, deterministically ordered."""
        out: Dict[str, List[dict]] = {"counters": [], "gauges": [], "histograms": []}
        for name, type_, labels, metric in self.series():
            if type_ == "counter":
                out["counters"].append(
                    {"name": name, "labels": labels, "value": metric.value}
                )
            elif type_ == "gauge":
                out["gauges"].append(
                    {"name": name, "labels": labels, "value": metric.value}
                )
            else:
                out["histograms"].append(
                    {
                        "name": name,
                        "labels": labels,
                        "kind": metric.kind,
                        "count": metric.count,
                        "sum": metric.total,
                        "quantiles": {
                            str(q): metric.quantile(q) for q in SNAPSHOT_QUANTILES
                        },
                    }
                )
        return out

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters add, gauges max,
        histograms sketch-merge)."""
        for (name, labels_key), metric in other._metrics.items():
            type_ = other._types[name]
            declared = self._types.get(name)
            if declared is not None and declared != type_:
                raise ValueError(
                    f"metric {name!r} type conflict on merge: "
                    f"{declared} vs {type_}"
                )
            self._types.setdefault(name, type_)
            mine = self._metrics.get((name, labels_key))
            if mine is None:
                if type_ == "counter":
                    mine = Counter()
                    mine.value = metric.value
                elif type_ == "gauge":
                    mine = Gauge()
                    mine.value = metric.value
                else:
                    mine = HistogramMetric(metric.kind)
                    mine.merge(metric)
                self._metrics[(name, labels_key)] = mine
            elif type_ == "counter":
                mine.value += metric.value
            elif type_ == "gauge":
                mine.value = max(mine.value, metric.value)
            else:
                mine.merge(metric)


def merge_registries(
    registries: Iterable[Optional[MetricsRegistry]],
) -> Optional[MetricsRegistry]:
    """Fold registries in the given (fixed) order; None entries skipped.

    Returns None when every entry is None, so shard merge layers can
    fold unconditionally whether or not observability was enabled.
    """
    merged: Optional[MetricsRegistry] = None
    for registry in registries:
        if registry is None:
            continue
        if merged is None:
            merged = MetricsRegistry()
        merged.merge(registry)
    return merged
