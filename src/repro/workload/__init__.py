"""Workload generation (the wrk2 substitute).

Open-loop workload generators drive the benchmark applications with
constant, diurnal, exponentially distributed, and spiky load, matching the
load shapes the paper uses for evaluation (§4.1).
"""

from repro.workload.patterns import (
    ArrivalPattern,
    ConstantPattern,
    DiurnalPattern,
    ExponentialRampPattern,
    SpikePattern,
    StepPattern,
)
from repro.workload.generators import WorkloadGenerator

__all__ = [
    "ArrivalPattern",
    "ConstantPattern",
    "DiurnalPattern",
    "ExponentialRampPattern",
    "SpikePattern",
    "StepPattern",
    "WorkloadGenerator",
]
