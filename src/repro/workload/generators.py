"""Open-loop workload generator.

The generator schedules request arrivals against an
:class:`~repro.apps.runtime.ApplicationRuntime` following a configurable
arrival pattern.  Arrivals are open-loop (a non-homogeneous Poisson process
thinned to the instantaneous target rate) so that slow responses do not
reduce offered load — the behaviour of wrk2 that exposes queueing collapse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.runtime import ApplicationRuntime
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRNG
from repro.workload.patterns import ArrivalPattern, ConstantPattern


class WorkloadGenerator:
    """Drives one application with an open-loop arrival process.

    Parameters
    ----------
    runtime:
        The deployed application runtime to send requests to.
    engine:
        Shared simulation engine.
    rng:
        Seeded RNG family; arrivals draw from the ``"workload:<app>"`` stream.
    pattern:
        Arrival-rate pattern (defaults to a constant 100 req/s).
    request_mix:
        Optional explicit ``(request_type, probability)`` pairs; defaults to
        the application's declared mix.
    """

    def __init__(
        self,
        runtime: ApplicationRuntime,
        engine: SimulationEngine,
        rng: SeededRNG,
        pattern: Optional[ArrivalPattern] = None,
        request_mix: Optional[Sequence[Tuple[str, float]]] = None,
    ) -> None:
        self.runtime = runtime
        self.engine = engine
        self.rng = rng
        self.pattern = pattern if pattern is not None else ConstantPattern(rate=100.0)
        if request_mix is None:
            request_mix = runtime.app.request_mix()
        total = sum(weight for _, weight in request_mix)
        if total <= 0:
            raise ValueError("request mix weights must sum to a positive value")
        self.request_mix: List[Tuple[str, float]] = [
            (name, weight / total) for name, weight in request_mix
        ]
        self._running = False
        self._stop_time: Optional[float] = None
        self.generated_requests = 0
        self.per_type_counts: Dict[str, int] = {name: 0 for name, _ in self.request_mix}
        # Cached per-arrival state: buffered stream cursors (block draws of
        # standard variates instead of one numpy dispatch per sample) and
        # the normalized mix as a name list plus cumulative weights for the
        # per-request inverse-CDF type draw.
        self._arrival_cursor = rng.cursor(f"workload:{runtime.app.name}")
        self._mix_cursor = rng.cursor(f"workload-mix:{runtime.app.name}")
        self._mix_names: List[str] = [name for name, _ in self.request_mix]
        mix_cdf = np.asarray([weight for _, weight in self.request_mix]).cumsum()
        mix_cdf /= mix_cdf[-1]
        self._mix_cdf = mix_cdf

    # ------------------------------------------------------------------ run
    def start(self, duration_s: Optional[float] = None) -> None:
        """Begin generating arrivals; optionally stop after ``duration_s``."""
        if self._running:
            return
        self._running = True
        self._stop_time = None if duration_s is None else self.engine.now + duration_s
        self._schedule_next_arrival()

    def stop(self) -> None:
        """Stop generating new arrivals (in-flight requests still finish)."""
        self._running = False

    def _schedule_next_arrival(self) -> None:
        if not self._running:
            return
        rate = max(self.pattern.rate_at(self.engine.now), 1e-9)
        gap = float(self._arrival_cursor.exponential(1.0 / rate))
        # Keep inter-arrival gaps bounded so a near-zero rate does not stall
        # the generator forever: re-evaluate the pattern at least every 5 s.
        gap = min(gap, 5.0)
        next_time = self.engine.now + gap
        if self._stop_time is not None and next_time > self._stop_time:
            self._running = False
            return
        self.engine.schedule(next_time, self._fire_arrival, name="workload-arrival")

    def _fire_arrival(self, engine: SimulationEngine) -> None:
        if not self._running:
            return
        rate = self.pattern.rate_at(engine.now)
        if rate > 0:
            self._submit_one()
        self._schedule_next_arrival()

    def _submit_one(self) -> None:
        mix_cdf = self._mix_cdf
        index = int(mix_cdf.searchsorted(self._mix_cursor.next_uniform(), side="right"))
        last = len(self._mix_names) - 1
        request_type = self._mix_names[index if index < last else last]
        self.runtime.submit_request(request_type)
        self.generated_requests += 1
        self.per_type_counts[request_type] = self.per_type_counts.get(request_type, 0) + 1

    # -------------------------------------------------------------- metrics
    @property
    def is_running(self) -> bool:
        return self._running

    def observed_mix(self) -> Dict[str, float]:
        """Empirical request-type mix generated so far."""
        if self.generated_requests == 0:
            return {}
        return {
            name: count / self.generated_requests
            for name, count in sorted(self.per_type_counts.items())
        }
