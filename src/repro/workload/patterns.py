"""Arrival-rate patterns for open-loop load generation.

Each pattern maps simulation time to a target arrival rate (requests per
second).  The paper drives its benchmarks with constant, diurnal,
exponential, and spiky load shapes; all four are provided, plus a stepped
sweep used by the scale-up/scale-out trade-off experiment (Fig. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple


class ArrivalPattern:
    """Base class: maps simulation time (s) to an arrival rate (req/s)."""

    def rate_at(self, time_s: float) -> float:
        """Target arrival rate at ``time_s``; must be non-negative."""
        raise NotImplementedError

    def mean_rate(self, duration_s: float, samples: int = 200) -> float:
        """Numerical mean rate over ``[0, duration_s]`` (for reporting)."""
        if duration_s <= 0:
            return 0.0
        step = duration_s / samples
        total = sum(self.rate_at(i * step) for i in range(samples))
        return total / samples


@dataclass
class ConstantPattern(ArrivalPattern):
    """Constant arrival rate."""

    rate: float

    def rate_at(self, time_s: float) -> float:
        return max(0.0, self.rate)


@dataclass
class DiurnalPattern(ArrivalPattern):
    """Sinusoidal day/night pattern.

    ``rate(t) = base + amplitude * sin(2*pi*t / period)`` clipped at zero.
    """

    base_rate: float
    amplitude: float
    period_s: float = 86_400.0
    phase_s: float = 0.0

    def rate_at(self, time_s: float) -> float:
        value = self.base_rate + self.amplitude * math.sin(
            2.0 * math.pi * (time_s + self.phase_s) / self.period_s
        )
        return max(0.0, value)


@dataclass
class ExponentialRampPattern(ArrivalPattern):
    """Exponentially growing (or decaying) load.

    ``rate(t) = initial_rate * exp(growth_per_s * t)``, capped at ``max_rate``.
    """

    initial_rate: float
    growth_per_s: float
    max_rate: float = float("inf")

    def rate_at(self, time_s: float) -> float:
        value = self.initial_rate * math.exp(self.growth_per_s * time_s)
        return max(0.0, min(value, self.max_rate))


@dataclass
class SpikePattern(ArrivalPattern):
    """Base load with rectangular spikes.

    Attributes
    ----------
    base_rate:
        Load outside spikes.
    spikes:
        Sequence of ``(start_s, duration_s, rate)`` triples; during a spike
        the rate is the spike's rate (not additive).
    """

    base_rate: float
    spikes: Sequence[Tuple[float, float, float]] = field(default_factory=list)

    def rate_at(self, time_s: float) -> float:
        for start, duration, rate in self.spikes:
            if start <= time_s < start + duration:
                return max(0.0, rate)
        return max(0.0, self.base_rate)


@dataclass
class StepPattern(ArrivalPattern):
    """Piecewise-constant load sweep (used by the Fig. 5 load sweep).

    Attributes
    ----------
    steps:
        Sequence of ``(duration_s, rate)`` pairs applied in order; after the
        last step the final rate persists.
    """

    steps: Sequence[Tuple[float, float]]

    def rate_at(self, time_s: float) -> float:
        elapsed = 0.0
        rate = 0.0
        for duration, step_rate in self.steps:
            rate = step_rate
            if time_s < elapsed + duration:
                return max(0.0, step_rate)
            elapsed += duration
        return max(0.0, rate)

    @classmethod
    def sweep(cls, rates: Sequence[float], step_duration_s: float) -> "StepPattern":
        """Equal-duration sweep across ``rates``."""
        return cls(steps=[(step_duration_s, rate) for rate in rates])
