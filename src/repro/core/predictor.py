"""Proactive SLO-violation prediction (the paper's stated future work).

Section 5 of the paper notes that transient SLO violations shorter than the
actuation latency (Table 6) cannot be mitigated reactively, and that
"predicting the spikes before they happen, and proactively taking
mitigation actions can be a solution ... this will be the subject of our
future work."  This module implements that extension: lightweight online
time-series predictors over the tail-latency signal, and a
:class:`ProactiveTrigger` that fires when the *predicted* latency is
expected to cross the SLO within the actuation horizon, so the controller
can re-provision before the violation materializes.

Two predictors are provided:

* :class:`EWMAPredictor` -- exponentially weighted moving average with a
  linear trend term (Holt's method), cheap and robust;
* :class:`LinearTrendPredictor` -- least-squares line fit over a sliding
  window, better at catching steady ramps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np


class LatencyPredictor:
    """Interface: observe latency samples, forecast the near future."""

    def observe(self, time_s: float, latency_ms: float) -> None:
        """Feed one observation."""
        raise NotImplementedError

    def forecast(self, horizon_s: float) -> Optional[float]:
        """Predicted latency (ms) ``horizon_s`` seconds ahead (None = no data)."""
        raise NotImplementedError


class EWMAPredictor(LatencyPredictor):
    """Holt's linear exponential smoothing over the latency signal.

    Parameters
    ----------
    level_alpha:
        Smoothing factor for the level term.
    trend_beta:
        Smoothing factor for the trend term.
    """

    def __init__(self, level_alpha: float = 0.4, trend_beta: float = 0.2) -> None:
        if not 0.0 < level_alpha <= 1.0 or not 0.0 < trend_beta <= 1.0:
            raise ValueError("smoothing factors must be in (0, 1]")
        self.level_alpha = float(level_alpha)
        self.trend_beta = float(trend_beta)
        self._level: Optional[float] = None
        self._trend = 0.0
        self._last_time: Optional[float] = None

    def observe(self, time_s: float, latency_ms: float) -> None:
        if self._level is None:
            self._level = float(latency_ms)
            self._last_time = float(time_s)
            return
        previous_time = self._last_time if self._last_time is not None else float(time_s)
        dt = max(float(time_s) - previous_time, 1e-9)
        previous_level = self._level
        self._level = (
            self.level_alpha * float(latency_ms)
            + (1.0 - self.level_alpha) * (self._level + self._trend * dt)
        )
        observed_trend = (self._level - previous_level) / dt
        self._trend = self.trend_beta * observed_trend + (1.0 - self.trend_beta) * self._trend
        self._last_time = float(time_s)

    def forecast(self, horizon_s: float) -> Optional[float]:
        if self._level is None:
            return None
        return max(0.0, self._level + self._trend * float(horizon_s))


class LinearTrendPredictor(LatencyPredictor):
    """Least-squares linear extrapolation over a sliding window of samples."""

    def __init__(self, window: int = 12) -> None:
        if window < 2:
            raise ValueError("window must hold at least two samples")
        self.window = int(window)
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=self.window)

    def observe(self, time_s: float, latency_ms: float) -> None:
        self._samples.append((float(time_s), float(latency_ms)))

    def forecast(self, horizon_s: float) -> Optional[float]:
        if not self._samples:
            return None
        if len(self._samples) == 1:
            return self._samples[0][1]
        times = np.array([t for t, _ in self._samples])
        values = np.array([v for _, v in self._samples])
        # Centre time to keep the fit well-conditioned.
        t0 = times[-1]
        slope, intercept = np.polyfit(times - t0, values, 1)
        return float(max(0.0, intercept + slope * float(horizon_s)))


@dataclass
class PredictionEvent:
    """One proactive-trigger decision (kept for evaluation/audit)."""

    time_s: float
    predicted_ms: float
    observed_ms: float
    slo_ms: float
    triggered: bool


class ProactiveTrigger:
    """Fires when the predicted tail latency will cross the SLO.

    Parameters
    ----------
    slo_latency_ms:
        The SLO to protect.
    predictor:
        Any :class:`LatencyPredictor` (defaults to Holt EWMA).
    horizon_s:
        Forecast horizon; should cover detection + actuation latency
        (Table 6 puts actuation at 2-46 ms, detection dominates).
    margin:
        Trigger when the forecast exceeds ``margin x SLO`` (a margin below
        1.0 triggers early, above 1.0 tolerates brief excursions).
    """

    def __init__(
        self,
        slo_latency_ms: float,
        predictor: Optional[LatencyPredictor] = None,
        horizon_s: float = 5.0,
        margin: float = 0.9,
    ) -> None:
        self.slo_latency_ms = float(slo_latency_ms)
        self.predictor = predictor if predictor is not None else EWMAPredictor()
        self.horizon_s = float(horizon_s)
        self.margin = float(margin)
        self.events: List[PredictionEvent] = []

    def update(self, time_s: float, observed_latency_ms: float) -> bool:
        """Feed one observation; returns True when proactive action is warranted."""
        self.predictor.observe(time_s, observed_latency_ms)
        forecast = self.predictor.forecast(self.horizon_s)
        triggered = forecast is not None and forecast >= self.margin * self.slo_latency_ms
        self.events.append(
            PredictionEvent(
                time_s=float(time_s),
                predicted_ms=float(forecast) if forecast is not None else 0.0,
                observed_ms=float(observed_latency_ms),
                slo_ms=self.slo_latency_ms,
                triggered=bool(triggered),
            )
        )
        return bool(triggered)

    # ------------------------------------------------------------ evaluation
    def lead_time_s(self) -> Optional[float]:
        """Seconds between the first trigger and the first observed violation.

        Positive lead time means the trigger fired before the violation
        (the goal of proactive mitigation); None when either never happened.
        """
        first_trigger = next((e.time_s for e in self.events if e.triggered), None)
        first_violation = next(
            (e.time_s for e in self.events if e.observed_ms > self.slo_ms_threshold()), None
        )
        if first_trigger is None or first_violation is None:
            return None
        return first_violation - first_trigger

    def slo_ms_threshold(self) -> float:
        """The observed-latency threshold counted as a violation."""
        return self.slo_latency_ms

    def precision_recall(self) -> Tuple[float, float]:
        """Precision/recall of trigger decisions against same-step violations.

        A step is a true positive when the trigger fired and the observed
        latency violated the SLO within the forecast horizon afterwards.
        """
        if not self.events:
            return 0.0, 0.0
        times = [e.time_s for e in self.events]
        violations = [e.observed_ms > self.slo_latency_ms for e in self.events]
        true_positive = false_positive = false_negative = 0
        for index, event in enumerate(self.events):
            horizon_end = event.time_s + self.horizon_s
            future_violation = any(
                violated
                for t, violated in zip(times[index:], violations[index:])
                if t <= horizon_end
            )
            if event.triggered and future_violation:
                true_positive += 1
            elif event.triggered and not future_violation:
                false_positive += 1
            elif not event.triggered and future_violation:
                false_negative += 1
        precision = (
            true_positive / (true_positive + false_positive)
            if (true_positive + false_positive)
            else 0.0
        )
        recall = (
            true_positive / (true_positive + false_negative)
            if (true_positive + false_negative)
            else 0.0
        )
        return precision, recall
