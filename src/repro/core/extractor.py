"""Extractor: SLO-violation detection plus CP / critical-component analysis.

The Extractor (modules 2-3 in the paper's architecture) detects SLO
violations from the tracing coordinator's recent latency statistics,
extracts critical paths from the recent traces, and localizes the critical
microservice instances that should be handed to the RL-based resource
estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.critical_component import (
    CriticalComponentExtractor,
    InstanceFeatures,
)
from repro.core.critical_path import CriticalPath, CriticalPathExtractor
from repro.core.svm import IncrementalSVM
from repro.tracing.coordinator import TracingCoordinator


@dataclass
class ExtractionResult:
    """Everything the Extractor produces in one analysis round."""

    time_s: float
    slo_violated: bool
    critical_paths: List[CriticalPath] = field(default_factory=list)
    candidates: List[InstanceFeatures] = field(default_factory=list)

    @property
    def candidate_instances(self) -> List[str]:
        """Instance names flagged for re-provisioning."""
        return [feature.instance for feature in self.candidates]

    @property
    def candidate_services(self) -> List[str]:
        """Service names flagged for re-provisioning (deduplicated)."""
        seen: List[str] = []
        for feature in self.candidates:
            if feature.service not in seen:
                seen.append(feature.service)
        return seen


class Extractor:
    """Detects SLO violations and localizes the responsible instances.

    Parameters
    ----------
    coordinator:
        Tracing coordinator to query.
    svm:
        Shared incremental SVM (so online training persists across rounds).
    window_s:
        Analysis window for traces and latency statistics.
    detection_percentile:
        Latency percentile compared against the SLO for detection.
    """

    def __init__(
        self,
        coordinator: TracingCoordinator,
        svm: Optional[IncrementalSVM] = None,
        window_s: float = 10.0,
        detection_percentile: float = 99.0,
    ) -> None:
        self.coordinator = coordinator
        self.window_s = float(window_s)
        self.detection_percentile = float(detection_percentile)
        self.path_extractor = CriticalPathExtractor()
        self.component_extractor = CriticalComponentExtractor(svm=svm)

    # -------------------------------------------------------------- analysis
    @property
    def _sketch_mode(self) -> bool:
        """Whether the coordinator serves windowed features from sketches."""
        return getattr(self.coordinator, "telemetry_mode", "raw") == "sketch"

    def _sketch_features(self, paths: Sequence[CriticalPath]) -> List[InstanceFeatures]:
        """Windowed (RI, CI) features for every instance on the given CPs.

        Sketch mode: the coordinator's per-instance co-moments and sojourn
        histograms answer in O(instances × buckets), independent of how
        many traces the window saw — no per-request alignment scans.
        """
        instances = sorted({span.instance for path in paths for span in path.spans})
        return self.coordinator.instance_features(
            self.window_s,
            instances=instances,
            min_samples=self.component_extractor.min_samples,
        )

    def detect(self) -> bool:
        """True when any request type's tail latency currently violates its SLO."""
        return self.coordinator.has_slo_violation(
            self.window_s, percentile=self.detection_percentile
        )

    def analyse(self, force: bool = False) -> ExtractionResult:
        """Run one detection + localization round.

        When no SLO violation is detected (and ``force`` is False) the
        result carries no candidates so the controller can skip mitigation
        and consider scaling down instead.

        Critical paths always come from retained traces (the reservoir
        sample in sketch mode); the per-instance features feeding the SVM
        come from the coordinator's windowed sketches in sketch mode and
        from the retained traces themselves in raw mode.
        """
        return self.localize(self.detect(), force=force)

    def localize(
        self,
        violated: bool,
        force: bool = False,
        traces=None,
        paths=None,
    ) -> ExtractionResult:
        """Localization half of :meth:`analyse` from a known verdict.

        The staged controller path pre-computes the verdict
        (``slo_verdict`` stage) and the window's traces + critical paths
        (``critical_path`` stage) and passes them in so a shared pull
        feeds every subscriber; with ``traces``/``paths`` None the data
        is fetched here, reproducing ``analyse`` exactly.
        """
        result = ExtractionResult(time_s=self.coordinator.engine.now, slo_violated=violated)
        if not violated and not force:
            return result
        if traces is None:
            traces = self.coordinator.recent_traces(self.window_s)
        if not traces:
            return result
        if paths is None:
            paths = self.path_extractor.extract_all(traces)
        result.critical_paths = list(paths)
        if self._sketch_mode:
            features = self._sketch_features(result.critical_paths)
            result.candidates = self.component_extractor.select(features)
        else:
            result.candidates = self.component_extractor.extract(result.critical_paths, traces)
        return result

    # -------------------------------------------------------------- training
    def train_svm(self, culprit_services: Sequence[str]) -> float:
        """Online SVM update using injector ground truth for the current window."""
        traces = self.coordinator.recent_traces(self.window_s)
        if not traces:
            return 0.0
        paths = self.path_extractor.extract_all(traces)
        if self._sketch_mode:
            features = self._sketch_features(paths)
            if not features:
                return 0.0
            labels = [
                1 if feature.service in culprit_services else 0 for feature in features
            ]
            matrix = np.vstack([feature.as_vector() for feature in features])
            return self.component_extractor.svm.partial_fit(matrix, labels)
        return self.component_extractor.train_from_ground_truth(
            paths, traces, culprit_services
        )

    # ----------------------------------------------------------------- extras
    def rank_instances(self) -> List[tuple]:
        """Scored ranking of all instances on recent CPs (for ROC sweeps)."""
        traces = self.coordinator.recent_traces(self.window_s)
        if not traces:
            return []
        paths = self.path_extractor.extract_all(traces)
        if self._sketch_mode:
            features = self._sketch_features(paths)
            if not features:
                return []
            matrix = np.vstack([feature.as_vector() for feature in features])
            scores = self.component_extractor.svm.decision_function(matrix)
            ranked = sorted(zip(features, scores), key=lambda pair: pair[1], reverse=True)
            return [(feature, float(score)) for feature, score in ranked]
        return self.component_extractor.rank(paths, traces)
