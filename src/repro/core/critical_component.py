"""Critical component extraction (Algorithm 2 of the paper).

Given extracted critical paths and the per-instance latency samples behind
them, the extractor computes two features per instance:

* **Relative importance (RI)** -- the Pearson correlation between the
  instance's per-request latency and the end-to-end CP latency ("variance
  explained"): how much of the end-to-end variability this instance
  accounts for.
* **Congestion intensity (CI)** -- the ratio of the instance's 99th
  percentile latency to its median latency: how congested the instance's
  request queue is.

The (RI, CI) pairs are classified by the incremental SVM; instances whose
decision is positive are the candidates handed to the RL-based resource
estimator for mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.critical_path import CriticalPath
from repro.core.svm import IncrementalSVM
from repro.tracing.trace import Trace


@dataclass
class InstanceFeatures:
    """Features computed for one microservice instance on the critical path."""

    instance: str
    service: str
    relative_importance: float
    congestion_intensity: float
    sample_count: int

    def as_vector(self) -> np.ndarray:
        """Feature vector in the order expected by the SVM."""
        return np.array([self.relative_importance, self.congestion_intensity], dtype=float)


class CriticalComponentExtractor:
    """Localizes the microservice instances likely responsible for SLO violations.

    Parameters
    ----------
    svm:
        The incremental SVM used for the final binary decision; a fresh
        (cold-start) classifier is created when omitted.
    min_samples:
        Minimum latency samples an instance needs before its features are
        considered trustworthy.
    """

    def __init__(self, svm: Optional[IncrementalSVM] = None, min_samples: int = 5) -> None:
        self.svm = svm if svm is not None else IncrementalSVM(input_dim=2)
        self.min_samples = int(min_samples)

    # --------------------------------------------------------------- features
    def compute_features(
        self,
        paths: Sequence[CriticalPath],
        traces: Sequence[Trace],
    ) -> List[InstanceFeatures]:
        """Compute (RI, CI) for every instance appearing on any critical path.

        Per-request instance latencies are aligned with the end-to-end CP
        latency of the same request so the Pearson correlation is computed
        over matched pairs, as in the paper's "variance explained" metric.
        """
        trace_by_id = {trace.request_id: trace for trace in traces}
        cp_latency_by_request: Dict[str, float] = {}
        instance_latency: Dict[str, Dict[str, float]] = {}
        instance_service: Dict[str, str] = {}
        instance_all_samples: Dict[str, List[float]] = {}

        for path in paths:
            trace = trace_by_id.get(path.request_id)
            if trace is None or not path.spans:
                continue
            cp_latency_by_request[path.request_id] = path.end_to_end_latency_ms
            for span in path.spans:
                instance_service[span.instance] = span.service
                per_request = instance_latency.setdefault(span.instance, {})
                per_request[path.request_id] = (
                    per_request.get(path.request_id, 0.0) + span.sojourn_time_ms
                )
                instance_all_samples.setdefault(span.instance, []).append(span.sojourn_time_ms)

        features: List[InstanceFeatures] = []
        for instance, per_request in instance_latency.items():
            samples = instance_all_samples[instance]
            if len(per_request) < self.min_samples:
                continue
            request_ids = sorted(per_request)
            instance_series = np.array([per_request[rid] for rid in request_ids])
            total_series = np.array([cp_latency_by_request[rid] for rid in request_ids])
            ri = self._pearson(instance_series, total_series)
            ci = self._congestion_intensity(samples)
            features.append(
                InstanceFeatures(
                    instance=instance,
                    service=instance_service[instance],
                    relative_importance=ri,
                    congestion_intensity=ci,
                    sample_count=len(samples),
                )
            )
        return features

    @staticmethod
    def _pearson(x: np.ndarray, y: np.ndarray) -> float:
        """Pearson correlation coefficient, defined as 0 for degenerate input."""
        if x.size < 2 or y.size < 2:
            return 0.0
        if float(np.std(x)) == 0.0 or float(np.std(y)) == 0.0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    @staticmethod
    def _congestion_intensity(samples: Sequence[float]) -> float:
        """p99 / p50 of the instance's sojourn times (0 for empty/zero median)."""
        if len(samples) == 0:
            return 0.0
        data = np.asarray(samples, dtype=float)
        median = float(np.percentile(data, 50))
        if median <= 0:
            return 0.0
        return float(np.percentile(data, 99)) / median

    # ----------------------------------------------------------- localization
    def select(self, features: Sequence[InstanceFeatures]) -> List[InstanceFeatures]:
        """SVM-flagged candidates among precomputed features (batch classify).

        One vectorized :meth:`IncrementalSVM.classify` call replaces the
        per-instance ``classify_one`` loop; decisions are per-row, so the
        answers match the loop.  Sketch mode feeds this directly with
        features computed from the coordinator's windowed sketches.
        """
        features = list(features)
        if not features:
            return []
        matrix = np.vstack([feature.as_vector() for feature in features])
        decisions = self.svm.classify(matrix)
        return [feature for feature, flag in zip(features, decisions) if flag]

    def extract(
        self,
        paths: Sequence[CriticalPath],
        traces: Sequence[Trace],
    ) -> List[InstanceFeatures]:
        """Return the candidate instances the SVM flags for re-provisioning."""
        return self.select(self.compute_features(paths, traces))

    def rank(
        self,
        paths: Sequence[CriticalPath],
        traces: Sequence[Trace],
    ) -> List[Tuple[InstanceFeatures, float]]:
        """All instances ranked by the SVM decision score (highest first).

        Useful for the Fig. 9(a) ROC sweep, where the decision threshold is
        varied across the score range.
        """
        features = self.compute_features(paths, traces)
        if not features:
            return []
        matrix = np.vstack([feature.as_vector() for feature in features])
        scores = self.svm.decision_function(matrix)
        ranked = sorted(zip(features, scores), key=lambda pair: pair[1], reverse=True)
        return [(feature, float(score)) for feature, score in ranked]

    # --------------------------------------------------------------- training
    def train_from_ground_truth(
        self,
        paths: Sequence[CriticalPath],
        traces: Sequence[Trace],
        culprit_services: Sequence[str],
    ) -> float:
        """Online SVM update from injector ground truth.

        The anomaly injector knows which services were under injection; the
        paper uses such injections to generate labelled data for the SVM.
        Returns the post-update hinge loss (0.0 when there was nothing to
        train on).
        """
        features = self.compute_features(paths, traces)
        if not features:
            return 0.0
        labels = [1 if feature.service in culprit_services else 0 for feature in features]
        matrix = np.vstack([feature.as_vector() for feature in features])
        return self.svm.partial_fit(matrix, labels)
