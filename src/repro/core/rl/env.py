"""RL environment wrapper around one managed microservice instance.

The environment converts telemetry and tracing observations into the RL
state vector of Table 3 and converts the agent's normalized actions back
into resource limits actuated through the deployment module.

State (8 inputs to the actor):
    SLO violation ratio (SV), workload change (WC), request composition
    (RC, encoded), and per-resource utilization (RU, 5 values).

Action (5 outputs): new resource limits, one per managed resource type,
normalized to [-1, 1] and mapped to each resource's [lower, upper] range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cluster.instance import MicroserviceInstance
from repro.cluster.resources import RESOURCE_TYPES, Resource, ResourceVector
from repro.core.rl.reward import RewardConfig, compute_reward, slo_violation_ratio
from repro.tracing.coordinator import TracingCoordinator


@dataclass
class RLState:
    """The structured state of Table 3 plus its flat vector form."""

    slo_violation_ratio: float
    workload_change: float
    request_composition: float
    utilization: Dict[Resource, float]

    def as_vector(self) -> np.ndarray:
        """Flatten to the 8-dimensional actor input."""
        values = [
            self.slo_violation_ratio,
            self.workload_change,
            self.request_composition,
        ] + [self.utilization[resource] for resource in RESOURCE_TYPES]
        return np.array(values, dtype=float)


@dataclass
class ResourceBounds:
    """Per-resource action range [lower, upper] for limit setting."""

    lower: ResourceVector
    upper: ResourceVector

    @classmethod
    def default(cls) -> "ResourceBounds":
        """Bounds spanning a small fraction to the node-scale maximum."""
        return cls(
            lower=ResourceVector.from_kwargs(
                cpu=2.0, memory_bandwidth=4.0, llc=2.0, disk_io=100.0, network=0.5
            ),
            upper=ResourceVector.from_kwargs(
                cpu=16.0, memory_bandwidth=40.0, llc=16.0, disk_io=800.0, network=4.0
            ),
        )


class MicroserviceEnvironment:
    """Environment exposing one microservice instance to a DDPG agent.

    Parameters
    ----------
    instance:
        The (critical) microservice instance being managed.
    coordinator:
        Tracing coordinator supplying latency / workload observations.
    slo_latency_ms:
        The SLO applied to this instance's end-to-end request type.
    bounds:
        Action range per resource type.
    observation_window_s:
        Time window used for latency and arrival-rate statistics.
    reward_config:
        Reward weights.
    """

    def __init__(
        self,
        instance: MicroserviceInstance,
        coordinator: TracingCoordinator,
        slo_latency_ms: float,
        bounds: Optional[ResourceBounds] = None,
        observation_window_s: float = 10.0,
        reward_config: Optional[RewardConfig] = None,
    ) -> None:
        self.instance = instance
        self.coordinator = coordinator
        self.slo_latency_ms = float(slo_latency_ms)
        self.bounds = bounds or ResourceBounds.default()
        self.observation_window_s = float(observation_window_s)
        self.reward_config = reward_config or RewardConfig()
        self._previous_arrival_rate: Optional[float] = None

    # ------------------------------------------------------------ observation
    def observe(self, is_culprit: bool = True) -> RLState:
        """Build the Table-3 state from current telemetry and traces."""
        current_latency = self.coordinator.latency_percentile_ms(
            99.0, self.observation_window_s
        )
        if is_culprit:
            sv = slo_violation_ratio(self.slo_latency_ms, current_latency)
        else:
            sv = 1.0

        arrival_rate = self.coordinator.arrival_rate(self.observation_window_s)
        if self._previous_arrival_rate is None or self._previous_arrival_rate <= 0:
            wc = 1.0
        else:
            wc = arrival_rate / self._previous_arrival_rate
        self._previous_arrival_rate = arrival_rate

        rc = self._encode_request_composition(
            self.coordinator.request_composition(self.observation_window_s)
        )

        utilization = self.instance.utilization()
        util_map = {resource: float(utilization[resource]) for resource in RESOURCE_TYPES}
        return RLState(
            slo_violation_ratio=sv,
            workload_change=min(wc, 4.0) / 4.0,
            request_composition=rc,
            utilization=util_map,
        )

    @staticmethod
    def _encode_request_composition(composition: Dict[str, float]) -> float:
        """Encode the request-type mix into a single scalar in [0, 1].

        The paper encodes the percentage array with
        ``numpy.ravel_multi_index``; we use an equivalent deterministic
        encoding: quantize each fraction to 10 bins and ravel the bins into
        a single index, normalized by the index space size.
        """
        if not composition:
            return 0.0
        fractions = [composition[key] for key in sorted(composition)]
        bins = np.minimum((np.array(fractions) * 10).astype(int), 9)
        dims = tuple([10] * len(bins))
        index = int(np.ravel_multi_index(tuple(int(b) for b in bins), dims))
        max_index = int(np.prod(dims)) - 1
        return index / max_index if max_index > 0 else 0.0

    # ----------------------------------------------------------------- action
    def action_to_limits(self, action: np.ndarray) -> ResourceVector:
        """Map a normalized action in [-1, 1]^5 to absolute resource limits."""
        action = np.clip(np.asarray(action, dtype=float).reshape(-1), -1.0, 1.0)
        if action.shape[0] != len(RESOURCE_TYPES):
            raise ValueError(
                f"expected {len(RESOURCE_TYPES)} action dimensions, got {action.shape[0]}"
            )
        limits: Dict[Resource, float] = {}
        for index, resource in enumerate(RESOURCE_TYPES):
            low = self.bounds.lower[resource]
            high = self.bounds.upper[resource]
            fraction = (action[index] + 1.0) / 2.0
            limits[resource] = low + fraction * (high - low)
        return ResourceVector(limits)

    def limits_to_action(self, limits: ResourceVector) -> np.ndarray:
        """Inverse mapping (used to seed exploration around current limits)."""
        action = []
        for resource in RESOURCE_TYPES:
            low = self.bounds.lower[resource]
            high = self.bounds.upper[resource]
            span = max(high - low, 1e-9)
            fraction = (limits[resource] - low) / span
            action.append(2.0 * min(max(fraction, 0.0), 1.0) - 1.0)
        return np.array(action, dtype=float)

    # ----------------------------------------------------------------- reward
    def reward(self, is_culprit: bool = True) -> float:
        """Compute the current reward for the managed instance."""
        state = self.observe(is_culprit=is_culprit)
        utilizations = [state.utilization[resource] for resource in RESOURCE_TYPES]
        return compute_reward(state.slo_violation_ratio, utilizations, self.reward_config)
