"""Reward function for the resource-estimation RL agent.

The paper's objective: keep SLO violations as low as possible while keeping
resource utilization (relative to the granted limits) as high as possible.
The reward at each step is

``r_t = alpha * SV_t * |R| + (1 - alpha) * sum_i RU_i / RLT_i``

where ``SV_t`` is the SLO-violation ratio (SLO latency / current latency,
1 when no violation), ``RU_i / RLT_i`` is the utilization of resource ``i``
relative to its limit, and ``|R|`` is the number of managed resource types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass
class RewardConfig:
    """Weights for the reward function.

    Attributes
    ----------
    alpha:
        Trade-off between SLO preservation (alpha) and utilization
        (1 - alpha).  The paper emphasizes SLO maintenance, so the default
        weighs it more heavily.
    num_resources:
        ``|R|``, the number of managed resource types (5 in the paper).
    """

    alpha: float = 0.7
    num_resources: int = 5

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.num_resources <= 0:
            raise ValueError("num_resources must be positive")


def compute_reward(
    slo_violation_ratio: float,
    utilizations: Sequence[float],
    config: RewardConfig | None = None,
) -> float:
    """Compute the per-step reward.

    Parameters
    ----------
    slo_violation_ratio:
        ``SV_t`` = SLO latency / current latency for the managed instance,
        clipped to [0, 1]; 1 means "meeting the SLO with no slack deficit".
    utilizations:
        ``RU_i / RLT_i`` for each managed resource type, each clipped to
        [0, 1].
    config:
        Reward weights; defaults are used when omitted.
    """
    cfg = config or RewardConfig()
    sv = float(min(max(slo_violation_ratio, 0.0), 1.0))
    clipped = [min(max(float(u), 0.0), 1.0) for u in utilizations]
    utilization_term = sum(clipped)
    return cfg.alpha * sv * cfg.num_resources + (1.0 - cfg.alpha) * utilization_term


def slo_violation_ratio(slo_latency_ms: float, current_latency_ms: float) -> float:
    """``SV_t`` as defined in the paper: SLO latency over current latency.

    Returns 1.0 when the current latency is within the SLO (no violation)
    or when no latency has been observed yet.
    """
    if current_latency_ms <= 0.0:
        return 1.0
    ratio = slo_latency_ms / current_latency_ms
    return float(min(1.0, max(0.0, ratio)))
