"""Deep deterministic policy gradient (DDPG) agent.

Implements the actor-critic training loop of the paper's Algorithm 3 on
top of the numpy MLPs in :mod:`repro.core.rl.nn`:

* the **critic** ``Q_w(s, a)`` is trained by minimizing the TD error
  against the target networks' bootstrap value;
* the **actor** ``pi_theta(s)`` is updated along the sampled policy
  gradient, i.e. the gradient of the critic's value with respect to the
  action, backpropagated through the actor;
* **target networks** for both are updated by Polyak averaging;
* exploration adds Ornstein-Uhlenbeck noise to the deterministic action.

Network shapes follow the paper (§3.4 "Implementation Details"): two
hidden layers of 40 ReLU units each, Tanh on the actor output, 8 actor
inputs, 5 actor outputs, 23 critic inputs (8 state + 5 action + 10 action
broadcast into the second layer, modelled here simply as an 13-input
concatenation padded to the same capacity), and 1 critic output.
Hyperparameters default to Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.rl.nn import MLP, Adam
from repro.core.rl.noise import OrnsteinUhlenbeckNoise
from repro.core.rl.replay_buffer import ReplayBuffer


@dataclass
class DDPGConfig:
    """Hyperparameters for the DDPG agent (defaults follow Table 4)."""

    state_dim: int = 8
    action_dim: int = 5
    hidden_units: int = 40
    actor_learning_rate: float = 3e-4
    critic_learning_rate: float = 3e-3
    discount: float = 0.9
    target_update_tau: float = 0.1
    replay_capacity: int = 100_000
    batch_size: int = 64
    exploration_sigma: float = 0.2
    exploration_decay: float = 0.999
    min_exploration: float = 0.05
    seed: int = 0


class DDPGAgent:
    """Model-free actor-critic agent for fine-grained resource estimation.

    Actions live in ``[-1, 1]^action_dim`` (Tanh range) and are mapped to
    resource limits by the environment.
    """

    def __init__(self, config: Optional[DDPGConfig] = None) -> None:
        self.config = config or DDPGConfig()
        cfg = self.config
        self.actor = MLP(
            [cfg.state_dim, cfg.hidden_units, cfg.hidden_units, cfg.action_dim],
            ["relu", "relu", "tanh"],
            seed=cfg.seed,
        )
        self.critic = MLP(
            [cfg.state_dim + cfg.action_dim, cfg.hidden_units, cfg.hidden_units, 1],
            ["relu", "relu", "identity"],
            seed=cfg.seed + 1,
        )
        self.target_actor = self.actor.clone()
        self.target_critic = self.critic.clone()
        self.actor_optimizer = Adam(self.actor.get_parameters(), cfg.actor_learning_rate)
        self.critic_optimizer = Adam(self.critic.get_parameters(), cfg.critic_learning_rate)
        self.replay_buffer = ReplayBuffer(cfg.replay_capacity, seed=cfg.seed + 2)
        self.noise = OrnsteinUhlenbeckNoise(
            cfg.action_dim, sigma=cfg.exploration_sigma, seed=cfg.seed + 3
        )
        self.exploration_scale = 1.0
        self.training_steps = 0

    # --------------------------------------------------------------- policy
    def act(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        """Select an action for ``state`` (with exploration noise if asked)."""
        state = np.asarray(state, dtype=float).reshape(1, -1)
        action = self.actor.forward(state)[0]
        if explore:
            action = action + self.noise.scaled_sample(self.exploration_scale)
        return np.clip(action, -1.0, 1.0)

    def remember(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
        done: bool = False,
    ) -> None:
        """Store one transition in the replay buffer."""
        self.replay_buffer.push(state, action, reward, next_state, done)

    def begin_episode(self) -> None:
        """Reset exploration noise and decay its scale (per-episode schedule)."""
        self.noise.reset()
        self.exploration_scale = max(
            self.config.min_exploration,
            self.exploration_scale * self.config.exploration_decay,
        )

    # ------------------------------------------------------------- learning
    def train_step(self) -> Optional[Dict[str, float]]:
        """One minibatch update of critic and actor.

        Returns None when the replay buffer does not yet hold a full batch;
        otherwise a dict with the critic loss and the actor's (negative)
        objective for monitoring.
        """
        cfg = self.config
        if len(self.replay_buffer) < cfg.batch_size:
            return None
        states, actions, rewards, next_states, dones = self.replay_buffer.sample(cfg.batch_size)

        # ---- critic update: minimize TD error against the target networks.
        next_actions = self.target_actor.forward(next_states)
        target_q = self.target_critic.forward(
            np.concatenate([next_states, next_actions], axis=1)
        ).reshape(-1)
        targets = rewards + cfg.discount * (1.0 - dones) * target_q
        critic_inputs = np.concatenate([states, actions], axis=1)
        q_values = self.critic.forward(critic_inputs, cache=True).reshape(-1)
        td_errors = q_values - targets
        critic_loss = float(np.mean(td_errors**2))
        grad_q = (2.0 * td_errors / cfg.batch_size).reshape(-1, 1)
        critic_wgrads, critic_bgrads, _ = self.critic.backward(grad_q)
        critic_grads = self._interleave(critic_wgrads, critic_bgrads)
        self.critic_optimizer.step(self.critic.get_parameters(), critic_grads)

        # ---- actor update: ascend dQ/da through the actor.
        policy_actions = self.actor.forward(states, cache=True)
        critic_eval_inputs = np.concatenate([states, policy_actions], axis=1)
        q_of_policy = self.critic.forward(critic_eval_inputs, cache=True)
        actor_objective = float(np.mean(q_of_policy))
        # dQ/d(inputs) gives gradients wrt [state, action]; keep the action part.
        _, _, grad_inputs = self.critic.backward(
            np.full_like(q_of_policy, -1.0 / cfg.batch_size)
        )
        grad_actions = grad_inputs[:, cfg.state_dim:]
        actor_wgrads, actor_bgrads, _ = self.actor.backward(grad_actions)
        actor_grads = self._interleave(actor_wgrads, actor_bgrads)
        self.actor_optimizer.step(self.actor.get_parameters(), actor_grads)

        # ---- target network soft updates.
        self.target_actor.soft_update_from(self.actor, cfg.target_update_tau)
        self.target_critic.soft_update_from(self.critic, cfg.target_update_tau)

        self.training_steps += 1
        return {"critic_loss": critic_loss, "actor_objective": actor_objective}

    @staticmethod
    def _interleave(
        weight_grads: List[np.ndarray], bias_grads: List[np.ndarray]
    ) -> List[np.ndarray]:
        """Interleave weight/bias gradients to match ``MLP.get_parameters`` order."""
        grads: List[np.ndarray] = []
        for wgrad, bgrad in zip(weight_grads, bias_grads):
            grads.append(wgrad)
            grads.append(bgrad)
        return grads

    # ---------------------------------------------------------- persistence
    def state_dict(self) -> Dict[str, dict]:
        """Snapshot of all four networks (for checkpoints and transfer)."""
        return {
            "actor": self.actor.state_dict(),
            "critic": self.critic.state_dict(),
            "target_actor": self.target_actor.state_dict(),
            "target_critic": self.target_critic.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, dict]) -> None:
        """Restore networks from a :meth:`state_dict` snapshot."""
        self.actor = MLP.from_state_dict(state["actor"])
        self.critic = MLP.from_state_dict(state["critic"])
        self.target_actor = MLP.from_state_dict(state["target_actor"])
        self.target_critic = MLP.from_state_dict(state["target_critic"])
        self.actor_optimizer = Adam(
            self.actor.get_parameters(), self.config.actor_learning_rate
        )
        self.critic_optimizer = Adam(
            self.critic.get_parameters(), self.config.critic_learning_rate
        )
