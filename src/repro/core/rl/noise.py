"""Exploration noise for DDPG action selection.

DDPG explores by adding temporally correlated noise to the deterministic
policy's actions (Algorithm 3, line 8: ``a_t = pi(s_t) + N_t``).  We use an
Ornstein-Uhlenbeck process, the standard choice for DDPG on continuous
control, plus a simple Gaussian alternative for ablations.
"""

from __future__ import annotations


import numpy as np


class OrnsteinUhlenbeckNoise:
    """Ornstein-Uhlenbeck process noise.

    Parameters
    ----------
    size:
        Dimensionality of the action vector.
    mu / theta / sigma:
        Process parameters (long-run mean, mean-reversion rate, volatility).
    seed:
        Seed for the underlying Gaussian draws.
    """

    def __init__(
        self,
        size: int,
        mu: float = 0.0,
        theta: float = 0.15,
        sigma: float = 0.2,
        seed: int = 0,
    ) -> None:
        self.size = int(size)
        self.mu = float(mu)
        self.theta = float(theta)
        self.sigma = float(sigma)
        self._rng = np.random.default_rng(seed)
        self._state = np.full(self.size, self.mu)

    def reset(self) -> None:
        """Reset the process to its long-run mean (start of an episode)."""
        self._state = np.full(self.size, self.mu)

    def sample(self) -> np.ndarray:
        """Draw the next correlated noise vector."""
        drift = self.theta * (self.mu - self._state)
        diffusion = self.sigma * self._rng.normal(size=self.size)
        self._state = self._state + drift + diffusion
        return self._state.copy()

    def scaled_sample(self, scale: float) -> np.ndarray:
        """Noise sample multiplied by ``scale`` (for annealed exploration)."""
        return self.sample() * float(scale)


class GaussianNoise:
    """Uncorrelated Gaussian exploration noise (ablation alternative)."""

    def __init__(self, size: int, sigma: float = 0.1, seed: int = 0) -> None:
        self.size = int(size)
        self.sigma = float(sigma)
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """No state to reset; present for interface compatibility."""

    def sample(self) -> np.ndarray:
        """Draw one uncorrelated noise vector."""
        return self._rng.normal(0.0, self.sigma, size=self.size)

    def scaled_sample(self, scale: float) -> np.ndarray:
        """Noise sample multiplied by ``scale``."""
        return self.sample() * float(scale)
