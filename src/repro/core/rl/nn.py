"""Minimal fully connected neural networks with manual backpropagation.

The DDPG actor and critic in the paper are small multilayer perceptrons
(two hidden layers of 40 units).  This module provides exactly what those
need: dense layers, ReLU/Tanh/identity activations, forward/backward
passes, an Adam optimizer, and (de)serialization of parameters so that
agents can be checkpointed and transferred.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_ACTIVATIONS = ("relu", "tanh", "identity")


def _activate(name: str, x: np.ndarray) -> np.ndarray:
    if name == "relu":
        return np.maximum(0.0, x)
    if name == "tanh":
        return np.tanh(x)
    if name == "identity":
        return x
    raise ValueError(f"unknown activation {name!r}")


def _activate_grad(name: str, pre_activation: np.ndarray, output: np.ndarray) -> np.ndarray:
    if name == "relu":
        return (pre_activation > 0.0).astype(float)
    if name == "tanh":
        return 1.0 - output**2
    if name == "identity":
        return np.ones_like(pre_activation)
    raise ValueError(f"unknown activation {name!r}")


class MLP:
    """A small dense network with explicit forward/backward passes.

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``[8, 40, 40, 5]``.
    activations:
        One activation name per layer transition ("relu", "tanh",
        "identity"); length must be ``len(layer_sizes) - 1``.
    seed:
        Seed for weight initialization (He-style scaling).
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activations: Sequence[str],
        seed: int = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("need at least an input and an output layer")
        if len(activations) != len(layer_sizes) - 1:
            raise ValueError("need one activation per layer transition")
        for name in activations:
            if name not in _ACTIVATIONS:
                raise ValueError(f"unknown activation {name!r}")
        self.layer_sizes = list(int(s) for s in layer_sizes)
        self.activations = list(activations)
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._cache: Optional[Dict[str, List[np.ndarray]]] = None

    # ------------------------------------------------------------ inference
    def forward(self, inputs: np.ndarray, cache: bool = False) -> np.ndarray:
        """Forward pass over a batch (n, input_dim) -> (n, output_dim)."""
        x = np.atleast_2d(np.asarray(inputs, dtype=float))
        pre_activations: List[np.ndarray] = []
        outputs: List[np.ndarray] = [x]
        for weight, bias, activation in zip(self.weights, self.biases, self.activations):
            z = outputs[-1] @ weight + bias
            a = _activate(activation, z)
            pre_activations.append(z)
            outputs.append(a)
        if cache:
            self._cache = {"pre": pre_activations, "out": outputs}
        return outputs[-1]

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ------------------------------------------------------------- gradients
    def backward(
        self, grad_output: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray]:
        """Backpropagate ``dLoss/dOutput`` through the cached forward pass.

        Returns ``(weight_grads, bias_grads, grad_input)``.  Requires the
        last :meth:`forward` call to have been made with ``cache=True``.
        """
        if self._cache is None:
            raise RuntimeError("backward() requires a cached forward pass")
        pre_activations = self._cache["pre"]
        outputs = self._cache["out"]
        grad = np.atleast_2d(np.asarray(grad_output, dtype=float))
        weight_grads: List[np.ndarray] = [np.zeros_like(w) for w in self.weights]
        bias_grads: List[np.ndarray] = [np.zeros_like(b) for b in self.biases]
        for layer in reversed(range(len(self.weights))):
            activation = self.activations[layer]
            grad = grad * _activate_grad(activation, pre_activations[layer], outputs[layer + 1])
            weight_grads[layer] = outputs[layer].T @ grad
            bias_grads[layer] = grad.sum(axis=0)
            grad = grad @ self.weights[layer].T
        return weight_grads, bias_grads, grad

    # ------------------------------------------------------------ parameters
    def get_parameters(self) -> List[np.ndarray]:
        """Flat list of parameter arrays (weights then biases, interleaved)."""
        params: List[np.ndarray] = []
        for weight, bias in zip(self.weights, self.biases):
            params.append(weight)
            params.append(bias)
        return params

    def set_parameters(self, params: Sequence[np.ndarray]) -> None:
        """Replace parameters from a list produced by :meth:`get_parameters`."""
        expected = 2 * len(self.weights)
        if len(params) != expected:
            raise ValueError(f"expected {expected} parameter arrays, got {len(params)}")
        for index in range(len(self.weights)):
            weight = np.asarray(params[2 * index], dtype=float)
            bias = np.asarray(params[2 * index + 1], dtype=float)
            if weight.shape != self.weights[index].shape or bias.shape != self.biases[index].shape:
                raise ValueError("parameter shape mismatch")
            self.weights[index] = weight.copy()
            self.biases[index] = bias.copy()

    def copy_from(self, other: "MLP") -> None:
        """Hard-copy parameters from another network of the same shape."""
        self.set_parameters(other.get_parameters())

    def soft_update_from(self, other: "MLP", tau: float) -> None:
        """Polyak averaging: ``theta <- tau * other + (1 - tau) * theta``."""
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        for index in range(len(self.weights)):
            self.weights[index] = tau * other.weights[index] + (1.0 - tau) * self.weights[index]
            self.biases[index] = tau * other.biases[index] + (1.0 - tau) * self.biases[index]

    def clone(self) -> "MLP":
        """Structural + parameter copy."""
        twin = MLP(self.layer_sizes, self.activations)
        twin.copy_from(self)
        return twin

    def state_dict(self) -> Dict[str, list]:
        """JSON-serializable parameter snapshot."""
        return {
            "layer_sizes": list(self.layer_sizes),
            "activations": list(self.activations),
            "weights": [w.tolist() for w in self.weights],
            "biases": [b.tolist() for b in self.biases],
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, list]) -> "MLP":
        """Rebuild a network from :meth:`state_dict` output."""
        net = cls(state["layer_sizes"], state["activations"])
        net.weights = [np.asarray(w, dtype=float) for w in state["weights"]]
        net.biases = [np.asarray(b, dtype=float) for b in state["biases"]]
        return net


class Adam:
    """Adam optimizer over a list of parameter arrays."""

    def __init__(
        self,
        parameters: Sequence[np.ndarray],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self, parameters: List[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        """Apply one Adam update in place."""
        if len(parameters) != len(self._m) or len(gradients) != len(self._m):
            raise ValueError("parameter/gradient count mismatch with optimizer state")
        self._t += 1
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * (grad * grad)
            m_hat = self._m[index] / (1.0 - self.beta1**self._t)
            v_hat = self._v[index] / (1.0 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
