"""Experience replay buffer for DDPG.

The replay buffer stores ``(state, action, reward, next_state, done)``
transitions and supplies uniformly sampled minibatches, breaking the
temporal correlation between consecutive transitions (paper §3.4, "DDPG
also solves the issue of dependency between samples ... by introducing a
replay buffer").  Capacity defaults to 10^5 as in Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class Transition:
    """One environment transition."""

    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray
    done: bool = False


class ReplayBuffer:
    """Fixed-capacity FIFO replay buffer with uniform sampling.

    Parameters
    ----------
    capacity:
        Maximum number of transitions retained (oldest evicted first).
    seed:
        Seed for minibatch sampling.
    """

    def __init__(self, capacity: int = 100_000, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._storage: List[Transition] = []
        self._next_index = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def is_full(self) -> bool:
        return len(self._storage) >= self.capacity

    def add(self, transition: Transition) -> None:
        """Insert one transition, evicting the oldest when full."""
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._next_index] = transition
        self._next_index = (self._next_index + 1) % self.capacity

    def push(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
        done: bool = False,
    ) -> None:
        """Convenience wrapper building the :class:`Transition`."""
        self.add(
            Transition(
                state=np.asarray(state, dtype=float),
                action=np.asarray(action, dtype=float),
                reward=float(reward),
                next_state=np.asarray(next_state, dtype=float),
                done=bool(done),
            )
        )

    def sample(
        self, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniformly sample a minibatch as stacked arrays.

        Raises
        ------
        ValueError
            If the buffer holds fewer than ``batch_size`` transitions.
        """
        if batch_size > len(self._storage):
            raise ValueError(
                f"cannot sample {batch_size} transitions from a buffer of {len(self._storage)}"
            )
        indices = self._rng.choice(len(self._storage), size=batch_size, replace=False)
        batch = [self._storage[int(i)] for i in indices]
        states = np.vstack([t.state for t in batch])
        actions = np.vstack([t.action for t in batch])
        rewards = np.array([t.reward for t in batch], dtype=float)
        next_states = np.vstack([t.next_state for t in batch])
        dones = np.array([t.done for t in batch], dtype=float)
        return states, actions, rewards, next_states, dones

    def clear(self) -> None:
        """Drop all stored transitions."""
        self._storage.clear()
        self._next_index = 0
