"""Transfer learning for per-microservice RL agents.

Training a tailored agent for every microservice from scratch is too slow
for production churn; the paper bootstraps specialized ("one-for-each")
agents from a general ("one-for-all") agent by transferring its learned
parameters and then fine-tuning.  Here transfer copies the actor/critic
(and target) weights into a fresh agent, optionally shrinking the
exploration scale because the transferred policy is already competent.
"""

from __future__ import annotations

from typing import Optional

from repro.core.rl.ddpg import DDPGAgent, DDPGConfig


def transfer_agent(
    source: DDPGAgent,
    config: Optional[DDPGConfig] = None,
    exploration_scale: float = 0.3,
    keep_replay: bool = False,
) -> DDPGAgent:
    """Create a new agent initialized from a trained source agent.

    Parameters
    ----------
    source:
        The trained general-case agent to transfer from.
    config:
        Configuration of the new agent; defaults to a copy of the source's
        configuration.
    exploration_scale:
        Initial exploration-noise scale of the new agent.  Transferred
        agents start with reduced exploration because the prior policy is
        already close to competent.
    keep_replay:
        When True the source's replay buffer contents are carried over so
        the new agent can keep learning from prior experience.

    Returns
    -------
    DDPGAgent
        A new agent whose networks are initialized from ``source``.
    """
    new_config = config if config is not None else DDPGConfig(**vars(source.config))
    if (
        new_config.state_dim != source.config.state_dim
        or new_config.action_dim != source.config.action_dim
    ):
        raise ValueError("transfer requires matching state/action dimensions")
    agent = DDPGAgent(new_config)
    agent.load_state_dict(source.state_dict())
    agent.exploration_scale = float(exploration_scale)
    if keep_replay:
        for transition in source.replay_buffer._storage:  # noqa: SLF001 - intentional reuse
            agent.replay_buffer.add(transition)
    return agent
