"""Reinforcement-learning resource estimator (DDPG).

The paper's Resource Estimator is a model-free actor-critic agent trained
with the deep deterministic policy gradient (DDPG) algorithm.  The original
implementation uses PyTorch; this package re-implements the same
architecture on numpy:

* actor: 2 fully connected hidden layers of 40 ReLU units, Tanh output,
  8 state inputs and 5 action outputs;
* critic: 2 fully connected hidden layers of 40 ReLU units, 23 inputs
  (state + action broadcast into the hidden layers) and 1 output;
* replay buffer of 10^5 transitions, minibatches of 64, discount 0.9,
  actor/critic learning rates 3e-4 / 3e-3, soft target updates
  (Table 4 of the paper).
"""

from repro.core.rl.nn import MLP, Adam
from repro.core.rl.noise import OrnsteinUhlenbeckNoise
from repro.core.rl.replay_buffer import ReplayBuffer, Transition
from repro.core.rl.ddpg import DDPGAgent, DDPGConfig
from repro.core.rl.reward import RewardConfig, compute_reward
from repro.core.rl.env import MicroserviceEnvironment, RLState
from repro.core.rl.transfer import transfer_agent

__all__ = [
    "MLP",
    "Adam",
    "OrnsteinUhlenbeckNoise",
    "ReplayBuffer",
    "Transition",
    "DDPGAgent",
    "DDPGConfig",
    "RewardConfig",
    "compute_reward",
    "MicroserviceEnvironment",
    "RLState",
    "transfer_agent",
]
