"""Incremental SVM with RBF kernel approximation.

The paper's critical-component extractor feeds two features (relative
importance, congestion intensity) into an incremental SVM classifier
"implemented using stochastic gradient descent optimization and RBF kernel
approximation".  We implement the same pipeline from scratch on numpy:

* :class:`RBFFeatureMap` -- random Fourier features (Rahimi & Recht)
  approximating an RBF kernel.
* :class:`IncrementalSVM` -- a linear SVM trained by SGD on the hinge loss
  with L2 regularization, supporting ``partial_fit`` for online updates.

When no labelled data has been seen yet, the classifier falls back to a
conservative threshold rule on the raw features so FIRM can operate from a
cold start (and generate its own labels from mitigation outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


class RBFFeatureMap:
    """Random Fourier feature map approximating an RBF kernel.

    Parameters
    ----------
    input_dim:
        Dimensionality of the raw feature vectors.
    n_components:
        Number of random Fourier components (output dimensionality).
    gamma:
        RBF kernel bandwidth parameter.
    seed:
        Seed for the random projection.
    """

    def __init__(
        self,
        input_dim: int,
        n_components: int = 64,
        gamma: float = 1.0,
        seed: int = 0,
    ) -> None:
        if input_dim <= 0 or n_components <= 0:
            raise ValueError("input_dim and n_components must be positive")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.input_dim = int(input_dim)
        self.n_components = int(n_components)
        self.gamma = float(gamma)
        rng = np.random.default_rng(seed)
        self._weights = rng.normal(
            0.0, np.sqrt(2.0 * self.gamma), size=(self.input_dim, self.n_components)
        )
        self._offsets = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Map raw features (n, input_dim) to (n, n_components)."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != self.input_dim:
            raise ValueError(
                f"expected {self.input_dim} features, got {features.shape[1]}"
            )
        projection = features @ self._weights + self._offsets
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)


@dataclass
class SVMConfig:
    """Hyperparameters for the incremental SVM."""

    learning_rate: float = 0.05
    regularization: float = 1e-3
    n_components: int = 64
    gamma: float = 0.5
    epochs_per_fit: int = 5
    seed: int = 0


class IncrementalSVM:
    """Hinge-loss linear SVM trained by SGD over RBF random features.

    The classifier answers Algorithm 2's question: given the (relative
    importance, congestion intensity) features of a microservice instance
    on the critical path, should the instance be re-provisioned?

    Parameters
    ----------
    input_dim:
        Number of raw input features (2 in the paper).
    config:
        Hyperparameters; sensible defaults match the paper's setup.
    """

    def __init__(self, input_dim: int = 2, config: Optional[SVMConfig] = None) -> None:
        self.config = config or SVMConfig()
        self.input_dim = int(input_dim)
        self.feature_map = RBFFeatureMap(
            input_dim=self.input_dim,
            n_components=self.config.n_components,
            gamma=self.config.gamma,
            seed=self.config.seed,
        )
        self.weights = np.zeros(self.config.n_components)
        self.bias = 0.0
        self.samples_seen = 0
        #: Cold-start thresholds on the raw features, used before any
        #: labelled data arrives: an instance is flagged only when *both*
        #: its relative importance and its congestion intensity exceed the
        #: thresholds, which keeps the false-positive rate low until the
        #: SVM has seen labelled injections.
        self.cold_start_thresholds = np.array([0.6, 3.0])

    # ----------------------------------------------------------------- state
    @property
    def is_trained(self) -> bool:
        """Whether any labelled data has been absorbed."""
        return self.samples_seen > 0

    # -------------------------------------------------------------- training
    def partial_fit(self, features: np.ndarray, labels: Sequence[int]) -> float:
        """One incremental update over a mini-batch.

        Parameters
        ----------
        features:
            Array of shape (n, input_dim).
        labels:
            Binary labels in {0, 1} (1 = instance should be re-provisioned).

        Returns
        -------
        float
            Mean hinge loss over the batch after the update epochs.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.where(np.asarray(labels, dtype=int) > 0, 1.0, -1.0)
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and labels must have the same length")
        mapped = self.feature_map.transform(features)
        lr = self.config.learning_rate
        lam = self.config.regularization
        for _ in range(self.config.epochs_per_fit):
            margins = targets * (mapped @ self.weights + self.bias)
            violating = margins < 1.0
            grad_w = lam * self.weights
            grad_b = 0.0
            if np.any(violating):
                grad_w = grad_w - (targets[violating, None] * mapped[violating]).mean(axis=0)
                grad_b = -float(targets[violating].mean())
            self.weights = self.weights - lr * grad_w
            self.bias = self.bias - lr * grad_b
        self.samples_seen += features.shape[0]
        margins = targets * (mapped @ self.weights + self.bias)
        return float(np.maximum(0.0, 1.0 - margins).mean())

    # ------------------------------------------------------------- inference
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance to the decision boundary for each row."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if not self.is_trained:
            # Cold start: positive score only when every raw feature exceeds
            # its threshold (scaled so scores are comparable across features).
            scaled = features / self.cold_start_thresholds
            return scaled.min(axis=1) - 1.0
        mapped = self.feature_map.transform(features)
        return mapped @ self.weights + self.bias

    def classify(self, features: np.ndarray, threshold: float = 0.0) -> np.ndarray:
        """Binary decisions (True = re-provision) for each feature row."""
        return self.decision_function(features) > threshold

    def classify_one(self, relative_importance: float, congestion_intensity: float) -> bool:
        """Convenience single-instance classification (Algorithm 2 line 10)."""
        features = np.array([[relative_importance, congestion_intensity]], dtype=float)
        return bool(self.classify(features)[0])

    def score(self, features: np.ndarray, labels: Sequence[int]) -> float:
        """Classification accuracy on a labelled set."""
        predictions = self.classify(features)
        targets = np.asarray(labels, dtype=int) > 0
        if predictions.shape[0] == 0:
            return 0.0
        return float((predictions == targets).mean())
