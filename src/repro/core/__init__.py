"""FIRM core: the paper's primary contribution.

The multilevel ML pipeline of Fig. 6:

1. :mod:`repro.core.critical_path` -- Algorithm 1, weighted longest-path
   extraction over execution history graphs honouring sequential, parallel,
   and background workflows.
2. :mod:`repro.core.critical_component` -- Algorithm 2, per-CP relative
   importance and per-instance congestion intensity fed to an incremental
   SVM to localize the microservice instances responsible for SLO
   violations.
3. :mod:`repro.core.rl` -- the DDPG resource estimator producing
   fine-grained reprovisioning actions.
4. :mod:`repro.core.deployment` -- action validation and actuation through
   the orchestrator.
5. :mod:`repro.core.firm` -- the end-to-end controller tying them together.
"""

from repro.core.critical_path import CriticalPathExtractor, CriticalPath
from repro.core.critical_component import (
    CriticalComponentExtractor,
    InstanceFeatures,
)
from repro.core.svm import IncrementalSVM, RBFFeatureMap
from repro.core.deployment import DeploymentModule
from repro.core.extractor import Extractor
from repro.core.firm import FIRMController, FIRMConfig

__all__ = [
    "CriticalPathExtractor",
    "CriticalPath",
    "CriticalComponentExtractor",
    "InstanceFeatures",
    "IncrementalSVM",
    "RBFFeatureMap",
    "DeploymentModule",
    "Extractor",
    "FIRMController",
    "FIRMConfig",
]
