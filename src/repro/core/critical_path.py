"""Critical path extraction (Algorithm 1 of the paper).

The critical path (CP) of a request's execution history graph is the path
of maximal duration from the client request to the service response.  The
extractor walks the span tree from the root, following at each level the
child whose completion determines when the parent can return ("last
returned child"), while also descending into any sibling whose execution
happens-before that child (a sequential predecessor also lies on the CP).
Background spans never participate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.tracing.span import Span
from repro.tracing.trace import Trace


@dataclass
class CriticalPath:
    """One extracted critical path.

    Attributes
    ----------
    request_id:
        The request whose execution history graph was analysed.
    spans:
        Spans on the CP, ordered from the root (frontend) outward.
    """

    request_id: str
    spans: List[Span] = field(default_factory=list)

    @property
    def services(self) -> List[str]:
        """Service names along the CP (root first, no duplicates)."""
        seen: List[str] = []
        for span in self.spans:
            if span.service not in seen:
                seen.append(span.service)
        return seen

    @property
    def instances(self) -> List[str]:
        """Instance names along the CP (root first, no duplicates)."""
        seen: List[str] = []
        for span in self.spans:
            if span.instance not in seen:
                seen.append(span.instance)
        return seen

    @property
    def total_latency_ms(self) -> float:
        """Sum of sojourn times along the CP (ms).

        The root span's sojourn already covers its children's foreground
        time, so end-to-end latency is bounded by the root span; the sum is
        reported for per-service attribution (Table 1's "Individual
        Latency" columns).
        """
        return sum(span.sojourn_time_ms for span in self.spans)

    @property
    def end_to_end_latency_ms(self) -> float:
        """Root-span sojourn time (ms) — the request's end-to-end latency."""
        if not self.spans:
            return 0.0
        return self.spans[0].sojourn_time_ms

    def latency_of(self, service: str) -> float:
        """Total CP sojourn time (ms) attributed to one service."""
        return sum(span.sojourn_time_ms for span in self.spans if span.service == service)

    def signature(self) -> tuple:
        """Hashable service-sequence signature (used to group identical CPs)."""
        return tuple(self.services)

    def __len__(self) -> int:
        return len(self.spans)

    def __contains__(self, service: str) -> bool:
        return service in self.services


class CriticalPathExtractor:
    """Extracts critical paths from execution history graphs (Algorithm 1)."""

    def extract(self, trace: Trace) -> CriticalPath:
        """Extract the critical path of one trace.

        Returns an empty path for traces without a root span (dropped
        requests whose frontend span never completed).
        """
        root = trace.root
        path = CriticalPath(request_id=trace.request_id)
        if root is None:
            return path
        path.spans = self._longest_path(trace, root)
        return path

    def extract_all(self, traces: Sequence[Trace]) -> List[CriticalPath]:
        """Extract critical paths for a batch of traces (incomplete ones skipped)."""
        paths = []
        for trace in traces:
            if trace.root is None:
                continue
            paths.append(self.extract(trace))
        return paths

    # ------------------------------------------------------------- internals
    def _longest_path(self, trace: Trace, current: Span) -> List[Span]:
        """Recursive longest-path walk from ``current`` (paper Algorithm 1).

        Starting from the last-returned foreground child (the child whose
        completion releases the parent), the walk chains backwards through
        the predecessors that gate it: among the children that happen
        before the cursor, the one finishing latest is the stage's critical
        child.  Parallel siblings that finish earlier than the stage's
        critical child are, by definition, off the critical path.  Each
        critical child is then expanded recursively.
        """
        path: List[Span] = [current]
        children = trace.foreground_children_of(current)
        if not children:
            return path

        chain: List[Span] = []
        cursor = max(children, key=lambda span: span.end_time)
        chain.append(cursor)
        while True:
            predecessors = [
                child for child in children if child.happens_before(cursor)
            ]
            if not predecessors:
                break
            cursor = max(predecessors, key=lambda span: span.end_time)
            chain.append(cursor)

        for span in reversed(chain):
            path.extend(self._longest_path(trace, span))
        return path

    # ------------------------------------------------------------ utilities
    def group_by_signature(
        self, paths: Sequence[CriticalPath]
    ) -> Dict[tuple, List[CriticalPath]]:
        """Group CPs by their service-sequence signature.

        Fig. 3 of the paper compares the latency distributions of the
        minimum- and maximum-latency CPs of each application; grouping by
        signature is the first step.
        """
        groups: Dict[tuple, List[CriticalPath]] = {}
        for path in paths:
            groups.setdefault(path.signature(), []).append(path)
        return groups

    def min_max_signature_latencies(
        self, paths: Sequence[CriticalPath]
    ) -> Dict[str, List[float]]:
        """End-to-end latency samples of the fastest and slowest CP groups.

        Groups with fewer than 5 observations are ignored to avoid single
        outlier paths dominating.  Returns ``{"min_cp": [...], "max_cp": [...]}``.
        """
        groups = self.group_by_signature(paths)
        eligible = {
            signature: [p.end_to_end_latency_ms for p in group]
            for signature, group in groups.items()
            if len(group) >= 5
        }
        if not eligible:
            eligible = {
                signature: [p.end_to_end_latency_ms for p in group]
                for signature, group in groups.items()
            }
        if not eligible:
            return {"min_cp": [], "max_cp": []}

        def median(samples: List[float]) -> float:
            ordered = sorted(samples)
            middle = len(ordered) // 2
            if len(ordered) % 2:
                return ordered[middle]
            return 0.5 * (ordered[middle - 1] + ordered[middle])

        min_signature = min(eligible, key=lambda s: median(eligible[s]))
        max_signature = max(eligible, key=lambda s: median(eligible[s]))
        return {"min_cp": eligible[min_signature], "max_cp": eligible[max_signature]}
