"""Deployment module: validates and actuates RL-generated actions.

The paper's deployment module (§3.5) verifies each action before execution:
scaling a resource type is bounded by what the hosting node physically has,
and an action that would oversubscribe the node is replaced by a scale-out
operation.  CPU limits are additionally capped by the service's thread
count, since granting more CPU than threads cannot help.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.instance import MicroserviceInstance
from repro.cluster.orchestrator import ActionRecord, Orchestrator
from repro.cluster.resources import RESOURCE_TYPES, Resource, ResourceVector


@dataclass
class DeploymentDecision:
    """Outcome of validating + actuating one RL action."""

    instance: str
    requested_limits: ResourceVector
    applied_limits: ResourceVector
    scaled_out: bool
    records: List[ActionRecord] = field(default_factory=list)


class DeploymentModule:
    """Validates RL actions and executes them through the orchestrator.

    Parameters
    ----------
    orchestrator:
        The cluster orchestrator used to actuate validated actions.
    demand_headroom:
        When positive, a requested partition is never allowed below the
        instance's currently observed demand divided by this target
        utilization (e.g. 0.7 keeps at least ~43% headroom).  This is part
        of action *verification* (paper §3.5): an action that would
        partition a resource below what the instance is already consuming
        is guaranteed to make the SLO violation worse, so it is raised to
        the safe floor before actuation.  Set to 0 to disable (pure RL
        output, used in training ablations).
    """

    def __init__(self, orchestrator: Orchestrator, demand_headroom: float = 0.7) -> None:
        self.orchestrator = orchestrator
        self.demand_headroom = float(demand_headroom)
        self.decisions: List[DeploymentDecision] = []

    def apply_limits(
        self,
        instance: MicroserviceInstance,
        limits: ResourceVector,
    ) -> DeploymentDecision:
        """Validate and actuate a full resource-limit vector for one instance.

        Validation rules (paper §3.4-§3.5):

        * a partition is never set below the instance's observed demand
          (with headroom), which would only worsen the violation;
        * each limit is clamped to the hosting node's remaining capacity for
          that resource (capacity minus what other containers reserve);
        * the CPU limit is capped at the service's thread count;
        * if the requested amount of any resource exceeds what the node can
          provide, the surplus demand is satisfied with a scale-out instead.
        """
        node = instance.container.node
        applied: Dict[Resource, float] = {}
        needs_scale_out = False
        demand = instance.resource_demand()

        for resource in RESOURCE_TYPES:
            requested = max(0.0, limits[resource])
            if self.demand_headroom > 0:
                floor = demand[resource] / self.demand_headroom
                requested = max(requested, floor)
            if resource is Resource.CPU:
                requested = min(requested, float(instance.profile.threads))
            if node is None:
                applied[resource] = requested
                continue
            other_reserved = sum(
                container.limits[resource]
                for container in node.containers
                if container is not instance.container
            )
            available = max(0.0, node.capacity[resource] - other_reserved)
            if requested > available:
                needs_scale_out = True
                applied[resource] = available
            else:
                applied[resource] = requested

        applied_vector = ResourceVector(applied)
        records = self.orchestrator.set_resource_limits(instance, applied_vector)
        scaled_out = False
        if needs_scale_out:
            records.append(self.orchestrator.scale_out(instance.profile.name))
            scaled_out = True

        decision = DeploymentDecision(
            instance=instance.name,
            requested_limits=limits.copy(),
            applied_limits=applied_vector,
            scaled_out=scaled_out,
            records=records,
        )
        self.decisions.append(decision)
        return decision

    def scale_out(self, service_name: str) -> ActionRecord:
        """Explicit scale-out (exposed for baselines and experiments)."""
        return self.orchestrator.scale_out(service_name)

    def scale_in(self, service_name: str) -> ActionRecord:
        """Explicit scale-in (never removes the last replica)."""
        return self.orchestrator.scale_in(service_name)

    def last_decision_for(self, instance_name: str) -> Optional[DeploymentDecision]:
        """Most recent decision applied to ``instance_name`` (None when absent)."""
        for decision in reversed(self.decisions):
            if decision.instance == instance_name:
                return decision
        return None
