"""The FIRM controller: the end-to-end multilevel ML control loop.

Ties together the pieces of the paper's Fig. 6 architecture:

1. the Tracing Coordinator collects spans and telemetry (module 1);
2. the Extractor detects SLO violations, extracts critical paths, and
   localizes critical microservice instances (modules 2-3);
3. the RL-based Resource Estimator proposes new fine-grained resource
   limits for each critical instance (module 4);
4. the Deployment Module validates and actuates the actions (module 5),
   replacing oversubscribing partitions with scale-out operations;
5. rewards are computed from the post-action SLO and utilization state and
   fed back into the DDPG agent's replay buffer for online learning.

The controller supports the paper's two agent granularities: a shared
"one-for-all" agent, or per-microservice "one-for-each" agents that may be
bootstrapped by transfer learning from the shared agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import dataclasses

import numpy as np

from repro.baselines.base import ResourceController, register_controller
from repro.cluster.cluster import Cluster
from repro.cluster.instance import MicroserviceInstance
from repro.cluster.orchestrator import Orchestrator
from repro.core.deployment import DeploymentModule
from repro.core.extractor import Extractor
from repro.core.rl.ddpg import DDPGAgent, DDPGConfig
from repro.core.rl.env import MicroserviceEnvironment, ResourceBounds
from repro.core.rl.reward import RewardConfig
from repro.core.rl.transfer import transfer_agent
from repro.core.svm import IncrementalSVM
from repro.sim.engine import SimulationEngine
from repro.tracing.coordinator import TracingCoordinator


@dataclass
class FIRMConfig:
    """Configuration of the FIRM controller.

    Attributes
    ----------
    control_interval_s:
        Period of the detect-localize-mitigate loop.
    window_s:
        Observation window for the Extractor and RL state.
    per_service_agents:
        False = one shared ("one-for-all") agent; True = a tailored
        ("one-for-each") agent per microservice.
    use_transfer_learning:
        When ``per_service_agents`` is on, bootstrap each new per-service
        agent from the shared agent's weights.
    train_online:
        Whether to store transitions and run DDPG updates during operation.
    scale_down_when_idle:
        Whether to reclaim resources (scale down limits) when no SLO
        violation is detected, which is how FIRM reduces the requested CPU.
    exploration:
        Whether action selection adds exploration noise (disable for pure
        evaluation of a trained policy).
    """

    control_interval_s: float = 2.0
    window_s: float = 5.0
    per_service_agents: bool = False
    use_transfer_learning: bool = True
    train_online: bool = True
    scale_down_when_idle: bool = True
    #: Right-sizing runs at most this often per container (seconds).
    reclaim_interval_s: float = 30.0
    #: Target limit = reclaim_headroom x the windowed peak usage.
    reclaim_headroom: float = 4.0
    #: Only shrink when the current limit exceeds this multiple of the
    #: windowed peak usage (avoids churn on already right-sized containers).
    reclaim_trigger_ratio: float = 6.0
    #: Usage window consulted for right-sizing (seconds).
    reclaim_window_s: float = 60.0
    #: Minimum telemetry samples before a container may be right-sized; a
    #: short history under-estimates the peak and over-shrinks.
    reclaim_min_samples: int = 30
    #: Instances whose utilization of any resource exceeds this are treated
    #: as mitigation candidates during violation rounds even when the SVM
    #: does not flag them (a saturated partition is unambiguously starved).
    saturation_threshold: float = 0.9
    exploration: bool = True
    #: Deployment-module action verification: partitions are never set below
    #: observed demand / this target utilization (0 disables the floor).
    demand_headroom: float = 0.7
    reward: RewardConfig = field(default_factory=RewardConfig)
    ddpg: DDPGConfig = field(default_factory=DDPGConfig)
    bounds: ResourceBounds = field(default_factory=ResourceBounds.default)


@dataclass
class ControlRoundRecord:
    """Audit record of one control-loop round."""

    time_s: float
    slo_violated: bool
    candidates: List[str]
    actions_applied: int
    mean_reward: float


@register_controller("firm", aliases=("firm_single",))
class FIRMController(ResourceController):
    """The full FIRM resource-management loop over a simulated cluster."""

    stage_subscriptions = ("slo_verdict", "critical_path", "detection")

    def __init__(
        self,
        cluster: Cluster,
        coordinator: TracingCoordinator,
        orchestrator: Orchestrator,
        engine: SimulationEngine,
        config: Optional[FIRMConfig] = None,
        shared_agent: Optional[DDPGAgent] = None,
        svm: Optional[IncrementalSVM] = None,
    ) -> None:
        self.config = config or FIRMConfig()
        super().__init__(
            cluster,
            coordinator,
            orchestrator,
            engine,
            control_interval_s=self.config.control_interval_s,
        )
        self.svm = svm if svm is not None else IncrementalSVM(input_dim=2)
        self.extractor = Extractor(
            coordinator, svm=self.svm, window_s=self.config.window_s
        )
        self.deployment = DeploymentModule(
            orchestrator, demand_headroom=self.config.demand_headroom
        )
        self.shared_agent = shared_agent if shared_agent is not None else DDPGAgent(self.config.ddpg)
        self._per_service_agents: Dict[str, DDPGAgent] = {}
        self._environments: Dict[str, MicroserviceEnvironment] = {}
        #: (state, action, env, agent, instance) awaiting their reward.
        self._pending: List[tuple] = []
        #: Last right-sizing time per container id (rate-limits reclaim).
        self._last_reclaim: Dict[str, float] = {}
        self.rounds: List[ControlRoundRecord] = []
        #: Mean critic TD-error (MSE) of the most recent training pass;
        #: None until any agent has run an update.  Composed policies gate
        #: on this as the critic-uncertainty signal.
        self.last_critic_loss: Optional[float] = None

    def bind_stages(self, runtime) -> None:
        """Donate the online-trained Extractor so the shared detection
        stage runs the same SVM this controller trains."""
        super().bind_stages(runtime)
        runtime.provide(
            (
                "extractor",
                float(self.extractor.window_s),
                float(self.extractor.detection_percentile),
            ),
            self.extractor,
        )

    # ----------------------------------------------------------------- agents
    def agent_for(self, service_name: str) -> DDPGAgent:
        """The agent responsible for ``service_name`` under the configured mode."""
        if not self.config.per_service_agents:
            return self.shared_agent
        if service_name not in self._per_service_agents:
            if self.config.use_transfer_learning:
                self._per_service_agents[service_name] = transfer_agent(
                    self.shared_agent, config=self.config.ddpg
                )
            else:
                self._per_service_agents[service_name] = DDPGAgent(self.config.ddpg)
        return self._per_service_agents[service_name]

    def environment_for(self, instance: MicroserviceInstance) -> MicroserviceEnvironment:
        """The (cached) RL environment wrapper for one instance."""
        if instance.name not in self._environments:
            slo = self._slo_for_instance(instance)
            self._environments[instance.name] = MicroserviceEnvironment(
                instance,
                self.coordinator,
                slo_latency_ms=slo,
                bounds=self.config.bounds,
                observation_window_s=self.config.window_s,
                reward_config=self.config.reward,
            )
        return self._environments[instance.name]

    def _slo_for_instance(self, instance: MicroserviceInstance) -> float:
        """SLO applied to an instance: the tightest SLO among the request
        types actually routed through the instance's service, falling back
        to the global minimum when none match (e.g. SLOs registered
        without service lists)."""
        slos = self.coordinator.slo_latency_ms
        if not slos:
            return 500.0
        service = instance.profile.name
        matched = [
            slo
            for request_type, slo in slos.items()
            if service in self.coordinator.services_for_request_type(request_type)
        ]
        if matched:
            return min(matched)
        return min(slos.values())

    # ------------------------------------------------------------------ loop
    def control_round(self) -> ControlRoundRecord:
        """Run one detect -> localize -> estimate -> actuate round."""
        if self._stopped:
            # Loop was stopped; record a no-op round so rounds_executed
            # and len(self.rounds) stay consistent.
            record = ControlRoundRecord(self.engine.now, False, [], 0, 0.0)
            self.rounds.append(record)
            return record

        self._settle_pending_rewards()

        extraction = self.stages.pull(
            "detection",
            window_s=self.extractor.window_s,
            percentile=self.extractor.detection_percentile,
        )
        actions_applied = 0
        rewards: List[float] = []

        acted: set = set()
        if extraction.slo_violated:
            targets = self._mitigation_targets(extraction)
            for instance in targets:
                env = self.environment_for(instance)
                agent = self.agent_for(instance.profile.name)
                state = env.observe(is_culprit=True).as_vector()
                action = agent.act(state, explore=self.config.exploration)
                limits = self._verify_action_limits(instance, env.action_to_limits(action))
                self.deployment.apply_limits(instance, limits)
                actions_applied += 1
                acted.add(instance.name)
                self._pending.append((state, action, env, agent, instance))
        elif self.config.scale_down_when_idle and not extraction.slo_violated:
            rewards.append(self._reclaim_idle_resources())

        # Safety valve: a partition the controller itself tightened must
        # never stay saturated for more than one control interval, whether
        # or not the end-to-end SLO is currently violated (a starved
        # partition will violate it shortly).  Relief raises the limit to
        # twice the current demand through the normal validated path.
        actions_applied += self._relieve_saturated_partitions(acted)

        if self.config.train_online:
            self._train_agents()

        record = ControlRoundRecord(
            time_s=self.engine.now,
            slo_violated=extraction.slo_violated,
            candidates=extraction.candidate_instances,
            actions_applied=actions_applied,
            mean_reward=float(np.mean(rewards)) if rewards else 0.0,
        )
        self.rounds.append(record)
        if self.obs is not None:
            self.obs.journal.record(
                record.time_s,
                "control_round",
                self.obs_source,
                slo_violated=record.slo_violated,
                candidates=list(record.candidates),
                actions_applied=record.actions_applied,
                mean_reward=record.mean_reward,
            )
            self.obs.registry.counter(
                "control_rounds_total",
                controller=type(self).__name__,
                verdict="violated" if record.slo_violated else "ok",
            ).inc()
        return record

    # -------------------------------------------------------------- internals
    def _mitigation_targets(self, extraction) -> List[MicroserviceInstance]:
        """Instances to act on this round.

        The SVM's critical-component candidates come first; on top of those,
        any instance whose partition is saturated (utilization above the
        saturation threshold on a resource it is sensitive to) is included,
        because a starved partition is an unambiguous mitigation target even
        when its latency distribution fools the congestion-intensity
        feature (uniformly slow requests have a low p99/p50 ratio).
        """
        targets: List[MicroserviceInstance] = []
        seen: set = set()
        for feature in extraction.candidates:
            try:
                instance = self.cluster.instance_by_name(feature.instance)
            except KeyError:
                continue
            if instance.name not in seen:
                targets.append(instance)
                seen.add(instance.name)
        threshold = self.config.saturation_threshold
        for container in self.cluster.all_containers():
            instance = container.instance
            if instance is None or instance.name in seen:
                continue
            utilization = instance.utilization()
            weights = instance.profile.resource_weights
            saturated = any(
                utilization[resource] >= threshold and weights.get(resource, 0.0) > 0.2
                for resource in utilization
            )
            if saturated:
                targets.append(instance)
                seen.add(instance.name)
        return targets

    def _verify_action_limits(self, instance: MicroserviceInstance, limits):
        """Action verification: never partition below recent peak usage.

        The RL action space spans the whole feasible range; while the agent
        is still learning (or exploring), an action can request a partition
        below what the instance has recently needed, which would trade one
        violation for another.  The verified action is the element-wise
        maximum of the proposed limits and 1.2x the windowed peak usage
        (when telemetry history is available).
        """
        peak = self._windowed_peak_usage(instance.container, self.coordinator.telemetry)
        if peak is None:
            return limits
        raised = {
            resource: max(limits[resource], 1.2 * peak[resource])
            for resource in limits
        }
        return type(limits)(raised)

    def _relieve_saturated_partitions(self, already_acted: set) -> int:
        """Raise the limits of enforced partitions that are saturated.

        Returns the number of relief actions applied.  Only containers whose
        partitions were explicitly enforced are considered (best-effort
        containers are governed by node contention, not their caps).
        """
        threshold = self.config.saturation_threshold
        relieved = 0
        for container in self.cluster.all_containers():
            instance = container.instance
            if (
                instance is None
                or instance.name in already_acted
                or not container.partition_enforced
            ):
                continue
            utilization = instance.utilization()
            weights = instance.profile.resource_weights
            saturated = any(
                utilization[resource] >= threshold and weights.get(resource, 0.0) > 0.2
                for resource in utilization
            )
            if not saturated:
                continue
            relief = instance.resource_demand() * 2.0
            current = container.limits
            raised = {
                resource: max(relief[resource], current[resource])
                for resource in current
            }
            self.deployment.apply_limits(instance, type(current)(raised))
            relieved += 1
        return relieved

    def _settle_pending_rewards(self) -> None:
        """Compute rewards for actions taken last round and store transitions."""
        for state, action, env, agent, instance in self._pending:
            next_state = env.observe(is_culprit=True).as_vector()
            reward = env.reward(is_culprit=True)
            if self.config.train_online:
                agent.remember(state, action, reward, next_state, done=False)
        self._pending.clear()

    def _train_agents(self) -> None:
        """Run one DDPG update on every agent with enough replay data."""
        agents = [self.shared_agent] + list(self._per_service_agents.values())
        losses: List[float] = []
        for agent in agents:
            metrics = agent.train_step()
            if metrics is not None:
                losses.append(metrics["critic_loss"])
        if losses:
            self.last_critic_loss = float(np.mean(losses))

    def _reclaim_idle_resources(self) -> float:
        """Right-size over-provisioned containers when SLOs are met.

        This is how FIRM drives down the requested CPU (Fig. 10(b)) without
        hurting latency.  For each container the windowed *peak* usage from
        telemetry is consulted; only when the current limit exceeds
        ``reclaim_trigger_ratio`` times that peak is the limit shrunk, and
        then only to ``reclaim_headroom`` times the peak (never below the
        RL action lower bound).  Each container is right-sized at most once
        per ``reclaim_interval_s`` so transient idleness cannot race limits
        to the floor.
        """
        telemetry = self.coordinator.telemetry
        cfg = self.config
        now = self.engine.now
        reclaimed = 0.0
        for container in self.cluster.all_containers():
            instance = container.instance
            if instance is None:
                continue
            last = self._last_reclaim.get(container.id, -float("inf"))
            if now - last < cfg.reclaim_interval_s:
                continue
            peak = self._windowed_peak_usage(container, telemetry)
            if peak is None:
                continue
            lower = cfg.bounds.lower
            new_limits: Dict = {}
            shrink_needed = False
            for resource in container.limits:
                current = container.limits[resource]
                target = max(peak[resource] * cfg.reclaim_headroom, lower[resource])
                if current > cfg.reclaim_trigger_ratio * max(peak[resource], 1e-9) and current > target:
                    new_limits[resource] = target
                    shrink_needed = True
                else:
                    new_limits[resource] = current
            if shrink_needed:
                self.deployment.apply_limits(
                    instance, type(container.limits)(new_limits)
                )
                self._last_reclaim[container.id] = now
                reclaimed += 1.0
        return reclaimed

    def _windowed_peak_usage(self, container, telemetry):
        """Peak per-resource usage over the reclaim window (None if no data).

        Delegates to the collector, which answers from retained samples in
        raw mode (the historical fold, unchanged) or from the ring-buffer
        per-bucket maxima in sketch mode.
        """
        if telemetry is None:
            return None
        return telemetry.windowed_peak_usage(
            container.id,
            self.config.reclaim_window_s,
            self.config.reclaim_min_samples,
        )

    # --------------------------------------------------------------- training
    def train_svm_from_ground_truth(self, culprit_services: List[str]) -> float:
        """Expose the Extractor's online SVM training (used during campaigns)."""
        return self.extractor.train_svm(culprit_services)


@register_controller("firm_multi")
def _firm_one_for_each(
    cluster, coordinator, orchestrator, engine, config: Optional[FIRMConfig] = None, **kwargs
) -> FIRMController:
    """FIRM with per-microservice ("one-for-each") agents."""
    config = dataclasses.replace(config or FIRMConfig(), per_service_agents=True)
    return FIRMController(cluster, coordinator, orchestrator, engine, config=config, **kwargs)


_firm_one_for_each.stage_subscriptions = FIRMController.stage_subscriptions
