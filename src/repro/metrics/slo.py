"""SLO violation accounting and mitigation-time measurement.

Two trackers support the paper's headline metrics:

* :class:`SLOTracker` counts completed/violating/dropped requests over an
  experiment, giving the SLO-violation counts in Fig. 10.
* :class:`MitigationTracker` measures the time from SLO-violation onset to
  recovery (tail latency back under the SLO), giving the mitigation times
  in Fig. 11(b).

Multi-tenant runs keep one :class:`SLOTracker` per tenant (each tenant has
its own SLO targets); :func:`merge_slo_trackers` folds them into the
cluster-level view reported by the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.tracing.trace import Trace


@dataclass
class SLOTracker:
    """Counts SLO outcomes per request type.

    Attributes
    ----------
    slo_latency_ms:
        SLO threshold per request type.
    """

    slo_latency_ms: Dict[str, float]
    completed: int = 0
    violations: int = 0
    dropped: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    def observe(self, trace: Trace) -> None:
        """Account one finished trace."""
        if trace.dropped:
            self.dropped += 1
            return
        if not trace.is_complete:
            return
        self.completed += 1
        latency = trace.end_to_end_latency_ms
        self.latencies_ms.append(latency)
        slo = self.slo_latency_ms.get(trace.request_type)
        if slo is not None and latency > slo:
            self.violations += 1

    def reclassify_as_dropped(self, trace: Trace) -> None:
        """Convert a trace observed as completed into a dropped one.

        Streaming observers can see a request complete and only later see
        it dropped (a background call's rejection arrives after the entry
        span finished); dropped is the final word, so the completion's
        contribution is retracted.  ``is_complete`` is already False for a
        dropped trace, so the recorded completion time is checked instead.
        """
        if trace.completion_time is not None:
            self.completed -= 1
            latency = trace.end_to_end_latency_ms
            if latency in self.latencies_ms:
                self.latencies_ms.remove(latency)
            slo = self.slo_latency_ms.get(trace.request_type)
            if slo is not None and latency > slo:
                self.violations -= 1
        self.dropped += 1

    @property
    def violation_rate(self) -> float:
        """Fraction of completed requests that violated their SLO."""
        if self.completed == 0:
            return 0.0
        return self.violations / self.completed

    @property
    def violations_including_drops(self) -> int:
        """Violations plus dropped requests.

        A dropped request is a worse outcome than a slow one, so comparisons
        between controllers should count it as (at least) a violation;
        otherwise a controller that sheds load looks better than one that
        answers slowly.
        """
        return self.violations + self.dropped

    @property
    def total_requests(self) -> int:
        """Completed plus dropped requests."""
        return self.completed + self.dropped

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports."""
        return {
            "completed": float(self.completed),
            "violations": float(self.violations),
            "dropped": float(self.dropped),
            "violation_rate": self.violation_rate,
        }


def merge_slo_trackers(trackers: Sequence[SLOTracker]) -> SLOTracker:
    """Fold per-tenant trackers into one cluster-level tracker.

    Counts are summed and latency samples concatenated in tracker order.
    The merged ``slo_latency_ms`` keeps each request type's *tightest*
    target across tenants — purely informational, since every observation
    has already been classified against its own tenant's targets.
    """
    merged_slos: Dict[str, float] = {}
    for tracker in trackers:
        for request_type, slo in tracker.slo_latency_ms.items():
            current = merged_slos.get(request_type)
            merged_slos[request_type] = slo if current is None else min(current, slo)
    merged = SLOTracker(merged_slos)
    for tracker in trackers:
        merged.completed += tracker.completed
        merged.violations += tracker.violations
        merged.dropped += tracker.dropped
        merged.latencies_ms.extend(tracker.latencies_ms)
    return merged


@dataclass
class _ViolationEpisode:
    start_s: float
    end_s: Optional[float] = None

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s


class MitigationTracker:
    """Measures how long SLO-violation episodes last.

    Call :meth:`update` periodically with the current "is the SLO being
    violated" boolean; the tracker records episodes and exposes their
    durations (the mitigation times of Fig. 11(b)).
    """

    def __init__(self) -> None:
        self._episodes: List[_ViolationEpisode] = []
        self._open: Optional[_ViolationEpisode] = None

    def update(self, time_s: float, violating: bool) -> None:
        """Advance the tracker to ``time_s`` with the current violation state."""
        if violating and self._open is None:
            self._open = _ViolationEpisode(start_s=time_s)
        elif not violating and self._open is not None:
            self._open.end_s = time_s
            self._episodes.append(self._open)
            self._open = None

    def close(self, time_s: float) -> None:
        """Close any open episode at the end of the experiment."""
        if self._open is not None:
            self._open.end_s = time_s
            self._episodes.append(self._open)
            self._open = None

    @property
    def episodes(self) -> List[_ViolationEpisode]:
        return list(self._episodes)

    def mitigation_times_s(self) -> List[float]:
        """Durations of all closed violation episodes (seconds)."""
        return [episode.duration_s for episode in self._episodes if episode.duration_s is not None]

    def as_dict(self) -> dict:
        """Deterministic JSON form (episode count + durations).

        Without this, generic dataclass serialization fell back to
        ``str(tracker)`` — a repr containing the object's memory address,
        which broke byte-identical re-runs of otherwise fully seeded
        experiments.
        """
        return {
            "episodes": len(self._episodes),
            "mean_mitigation_time_s": self.mean_mitigation_time_s(),
            "mitigation_times_s": self.mitigation_times_s(),
        }

    def mean_mitigation_time_s(self) -> float:
        """Mean episode duration (0 when no episodes closed)."""
        times = self.mitigation_times_s()
        if not times:
            return 0.0
        return float(sum(times) / len(times))
