"""Metrics: latency statistics, CDFs, and SLO accounting."""

from repro.metrics.latency import LatencyStats, cdf_points, percentile
from repro.metrics.slo import MitigationTracker, SLOTracker

__all__ = ["LatencyStats", "cdf_points", "percentile", "SLOTracker", "MitigationTracker"]
