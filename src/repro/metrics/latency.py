"""Latency statistics helpers used across experiments and reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """Percentile of ``samples`` (0 when empty), matching numpy semantics."""
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def cdf_points(samples: Sequence[float], points: int = 100) -> List[Tuple[float, float]]:
    """Empirical CDF as ``(value, cumulative_probability)`` pairs.

    Returns ``points`` evenly spaced probability levels, which is what the
    paper's CDF figures (Fig. 3, Fig. 10) plot.
    """
    if len(samples) == 0:
        return []
    data = np.sort(np.asarray(samples, dtype=float))
    probabilities = np.linspace(0.0, 1.0, points)
    values = np.quantile(data, probabilities)
    return [(float(v), float(p)) for v, p in zip(values, probabilities)]


@dataclass
class LatencyStats:
    """Summary statistics of a latency sample set (milliseconds)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float
    std: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute stats from raw samples; empty input yields all zeros."""
        if len(samples) == 0:
            return cls(count=0, mean=0.0, median=0.0, p95=0.0, p99=0.0, maximum=0.0, std=0.0)
        data = np.asarray(samples, dtype=float)
        return cls(
            count=int(data.size),
            mean=float(data.mean()),
            median=float(np.percentile(data, 50)),
            p95=float(np.percentile(data, 95)),
            p99=float(np.percentile(data, 99)),
            maximum=float(data.max()),
            std=float(data.std()),
        )

    @property
    def congestion_intensity(self) -> float:
        """p99 / median (the paper's per-instance congestion-intensity feature)."""
        if self.median <= 0:
            return 0.0
        return self.p99 / self.median

    def as_dict(self) -> dict:
        """Plain-dict form for reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
            "std": self.std,
        }
